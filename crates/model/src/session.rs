//! Per-sequence inference state, decoupled from any serving arrangement.
//!
//! A [`Session`] owns everything that belongs to *one* sequence being decoded
//! against a shared [`TransformerModel`]: the KV cache, the eviction policy
//! instance, the derived budget, the token history, optional attention statistics
//! and the peak-byte watermark. The model itself is borrowed immutably, so any
//! number of sessions can decode against the same weights concurrently — which is
//! exactly what the continuous-batching scheduler in `keyformer-serve` does.
//!
//! Two drive styles are supported:
//!
//! * **One-shot** — [`Session::process_prompt`] / [`Session::score_continuation`],
//!   used by the single-sequence [`crate::engine::InferenceEngine`] facade.
//! * **Stepwise** — [`Session::begin`] runs the prefill phase and arms an
//!   autoregressive decode; each [`Session::step`] then produces exactly one
//!   token. A scheduler can interleave `step` calls across many sessions and
//!   harvest each finished session with [`Session::take_output`]. The stepwise
//!   path and [`crate::engine::InferenceEngine::generate`] share this single
//!   implementation, so serving a request produces token-identical output to
//!   running it alone.
//!
//! With [`Session::set_prefill_chunk`], the prefill phase itself becomes
//! stepwise: [`Session::begin`] only validates and arms the prompt, and each
//! [`Session::advance_prefill`] forwards at most one chunk of prompt tokens —
//! resumable mid-prompt, so a scheduler can interleave long prefills with other
//! sessions' decodes (and pause them when a strict block pool runs dry).
//! Chunking never changes what is generated: the forward sequence is identical
//! to one-shot prefill, and the end-of-prompt eviction still happens exactly
//! once, after the final prompt token.
//!
//! Two sharing mechanisms sit on top ([`keyformer_core::prefix`]):
//!
//! * **Prefix attachment** — with [`Session::set_prefix_registry`], prompt
//!   forwarding registers every completed full KV block (plus a policy-state
//!   snapshot) into a shared [`SharedPrefixRegistry`], and
//!   [`Session::begin_with_prefix`] attaches a new prompt to the longest cached
//!   prefix copy-on-write, skipping those prefill forwards entirely while
//!   producing tokens identical to a cold start.
//! * **Forking** — [`Session::fork`] duplicates a whole in-flight session,
//!   sharing every KV block copy-on-write; both sides continue independently
//!   and a write (append or eviction) forks only the touched block.

use crate::config::ModelConfig;
use crate::generation::{GenerationConfig, GenerationOutput, SamplingStrategy};
use crate::model::{ForwardContext, TransformerModel};
use crate::stats::AttentionStats;
use crate::workspace::{forward_chunk_ws, forward_token_ws, ForwardPath, ForwardWorkspace};
use keyformer_core::block::{OvercommitPolicy, SharedBlockPool};
use keyformer_core::budget::{CacheBudget, CacheBudgetSpec};
use keyformer_core::cache::{KvCache, KvDtype};
use keyformer_core::observation::Phase;
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::prefix::SharedPrefixRegistry;
use keyformer_core::CoreError;
use keyformer_tensor::ops::{log_softmax, softmax_with_temperature};
use keyformer_tensor::top_k_indices;
use keyformer_tensor::vector::argmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sampling-loop state of an in-flight autoregressive decode.
///
/// Created by [`Session::begin`], advanced by [`Session::step`], consumed by
/// [`Session::take_output`]. `Clone` because [`Session::fork`] duplicates an
/// in-flight decode — RNG stream position and all.
#[derive(Debug, Clone)]
struct DecodeState {
    config: GenerationConfig,
    rng: StdRng,
    /// Logits over the next token (from the prefill or the last decode forward).
    logits: Vec<f32>,
    generated: Vec<u32>,
    /// Distinct tokens the repetition penalty applies to: the final prompt token
    /// (the task cue) plus every token generated so far. Kept deduplicated so each
    /// distinct token is penalised exactly once per step, however often it occurs.
    penalised: Vec<u32>,
    prompt_len: usize,
    step: usize,
    finished: bool,
}

/// An in-flight chunked prefill armed by [`Session::begin`] and advanced by
/// [`Session::advance_prefill`].
#[derive(Debug, Clone)]
struct PrefillState {
    prompt: Vec<u32>,
    config: GenerationConfig,
    /// Prompt tokens already forwarded.
    processed: usize,
}

/// Progress report of one [`Session::advance_prefill`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillProgress {
    /// Prompt tokens forwarded by this call.
    pub processed: usize,
    /// Prompt tokens still to forward.
    pub remaining: usize,
    /// `true` once the prefill completed and the decode is armed.
    pub ready: bool,
    /// `true` when the call stopped early because the block pool had no room
    /// (strict pools only); call again once blocks have been freed.
    pub stalled: bool,
}

/// The result of one decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStep {
    /// The token produced by this step.
    pub token: u32,
    /// 0-based index of this token among the generated tokens of the current
    /// request. A scheduler that replays a sequence deterministically (e.g.
    /// after a preemption recompute) can compare this index against what it
    /// already surfaced to a client and suppress duplicate deliveries.
    pub index: usize,
    /// `true` when this was the final step (EOS or the generation length was
    /// reached); further [`Session::step`] calls will fail until a new
    /// [`Session::begin`].
    pub finished: bool,
}

/// All per-sequence state needed to decode one sequence against a shared model.
pub struct Session<'m> {
    model: &'m TransformerModel,
    policy: Box<dyn KvCachePolicy>,
    budget_spec: Option<CacheBudgetSpec>,
    budget: Option<CacheBudget>,
    cache: KvCache,
    sequence: Vec<u32>,
    stats: Option<AttentionStats>,
    peak_cache_bytes: usize,
    prefill_chunk: Option<usize>,
    /// Blocks the scheduler reserved for this session in the shared pool (0
    /// outside a serving context). Lets the strict-pool prefill pre-flight
    /// distinguish growth within the session's own reservation from transient
    /// growth that must not consume blocks other sessions are owed.
    block_reservation: usize,
    prefill: Option<PrefillState>,
    decode: Option<DecodeState>,
    /// Prefix registry this session registers prompt blocks into and attaches
    /// cached prefixes from (serving-layer sharing; `None` for standalone
    /// sessions).
    prefix_registry: Option<SharedPrefixRegistry>,
    /// Chain-context seed for registry keys (sessions only share prefixes
    /// registered under the same context — in serving, a policy-spec digest).
    prefix_context: u64,
    /// Prompt tokens of the current request served from attached shared blocks.
    prefix_tokens_reused: usize,
    /// Which forward implementation [`Session::step`] and friends run.
    path: ForwardPath,
    /// Reusable buffers and cached key rotations of the workspace path.
    ws: ForwardWorkspace,
}

impl<'m> Session<'m> {
    /// Creates a session. With `budget_spec = None` the cache is never reduced
    /// regardless of the policy (useful for the full-attention baseline).
    pub fn new(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
    ) -> Self {
        Self::with_cache(model.empty_cache(), model, policy, budget_spec)
    }

    /// Creates a standalone session whose KV cache stores sealed blocks at
    /// `dtype` (a private unbounded pool, like [`Session::new`]).
    pub fn with_dtype(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
        dtype: KvDtype,
    ) -> Self {
        Self::with_cache(model.empty_cache_dtype(dtype), model, policy, budget_spec)
    }

    /// Creates a session whose KV cache allocates from `pool`, so its blocks
    /// contend with — and are reclaimed by — every other session sharing the
    /// pool. This is the constructor the serving scheduler uses.
    pub fn with_pool(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
        pool: SharedBlockPool,
    ) -> Self {
        Self::with_cache(model.empty_cache_in(pool), model, policy, budget_spec)
    }

    /// [`Session::with_pool`] with an explicit storage dtype for sealed KV
    /// blocks — the serving scheduler's per-request KV-dtype knob bottoms out
    /// here.
    pub fn with_pool_dtype(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
        pool: SharedBlockPool,
        dtype: KvDtype,
    ) -> Self {
        Self::with_cache(
            model.empty_cache_in_dtype(pool, dtype),
            model,
            policy,
            budget_spec,
        )
    }

    fn with_cache(
        cache: KvCache,
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
    ) -> Self {
        let ws = ForwardWorkspace::new(model.config(), cache.block_size());
        Session {
            cache,
            model,
            policy,
            budget_spec,
            budget: None,
            sequence: Vec::new(),
            stats: None,
            peak_cache_bytes: 0,
            prefill_chunk: None,
            block_reservation: 0,
            prefill: None,
            decode: None,
            prefix_registry: None,
            prefix_context: 0,
            prefix_tokens_reused: 0,
            path: ForwardPath::default(),
            ws,
        }
    }

    /// Selects which forward implementation this session runs. The default is
    /// [`ForwardPath::Workspace`]; [`ForwardPath::Legacy`] keeps the original
    /// allocating path callable for in-process baseline comparisons. The two
    /// paths are byte-identical, so switching never changes tokens.
    pub fn set_forward_path(&mut self, path: ForwardPath) {
        self.path = path;
    }

    /// Builder form of [`Session::set_forward_path`].
    pub fn with_forward_path(mut self, path: ForwardPath) -> Self {
        self.set_forward_path(path);
        self
    }

    /// The forward implementation this session runs.
    pub fn forward_path(&self) -> ForwardPath {
        self.path
    }

    /// Sets the chunked-prefill granularity: `Some(n)` makes [`Session::begin`]
    /// arm the prompt without forwarding it, with each
    /// [`Session::advance_prefill`] processing at most `n` prompt tokens;
    /// `None` (the default) restores one-shot prefill inside `begin`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == Some(0)`.
    pub fn set_prefill_chunk(&mut self, chunk: Option<usize>) {
        assert!(chunk != Some(0), "prefill chunk must be at least 1 token");
        self.prefill_chunk = chunk;
    }

    /// Builder form of [`Session::set_prefill_chunk`].
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn with_prefill_chunk(mut self, chunk: usize) -> Self {
        self.set_prefill_chunk(Some(chunk));
        self
    }

    /// The configured chunked-prefill granularity, if any.
    pub fn prefill_chunk(&self) -> Option<usize> {
        self.prefill_chunk
    }

    /// Records how many pool blocks the scheduler reserved for this session,
    /// so the strict-pool prefill pre-flight can leave other sessions'
    /// reserved-but-unallocated blocks untouched. Defaults to 0 (standalone
    /// sessions, or every session on an `AllowTransient` pool, where the value
    /// is unused).
    pub fn set_block_reservation(&mut self, blocks: usize) {
        self.block_reservation = blocks;
    }

    /// Connects this session to a prefix registry under the given chain
    /// context. From then on, prompt forwarding registers every completed full
    /// block (prefix + policy snapshot) into the registry, and
    /// [`Session::begin_with_prefix`] attaches to the longest cached prefix of
    /// a new prompt. The registry must be built over the same block pool as
    /// this session's cache.
    pub fn set_prefix_registry(&mut self, registry: SharedPrefixRegistry, context: u64) {
        self.prefix_registry = Some(registry);
        self.prefix_context = context;
    }

    /// Builder form of [`Session::set_prefix_registry`].
    pub fn with_prefix_registry(mut self, registry: SharedPrefixRegistry, context: u64) -> Self {
        self.set_prefix_registry(registry, context);
        self
    }

    /// Prompt tokens of the current request that were served from attached
    /// shared blocks instead of being forwarded (0 for cold starts).
    pub fn prefix_tokens_reused(&self) -> usize {
        self.prefix_tokens_reused
    }

    /// Enables attention-statistics collection (sparsity, CDFs, heat maps).
    pub fn enable_stats(&mut self) {
        let c = self.model.config();
        self.stats = Some(AttentionStats::new(c.num_layers, c.num_heads));
    }

    /// Collected statistics, if enabled.
    pub fn stats(&self) -> Option<&AttentionStats> {
        self.stats.as_ref()
    }

    /// The model this session decodes against.
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// The absolute budget derived from the last processed prompt, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        self.budget
    }

    /// The budget specification this session derives per-prompt budgets from.
    pub fn budget_spec(&self) -> Option<CacheBudgetSpec> {
        self.budget_spec
    }

    /// The live KV cache (read-only), exposing per-layer retained slots and their
    /// original positions for diagnostics and experiments.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Live KV-cache slot count per layer.
    pub fn cache_slots(&self) -> Vec<usize> {
        self.cache.iter().map(|l| l.len()).collect()
    }

    /// Current KV-cache byte footprint.
    pub fn cache_bytes(&self) -> usize {
        self.cache.byte_size()
    }

    /// Peak KV-cache byte footprint observed so far.
    pub fn peak_cache_bytes(&self) -> usize {
        self.peak_cache_bytes
    }

    /// Full token history (prompt + generated) of the current sequence.
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Clears all per-sequence state (including an unfinished chunked prefill,
    /// whose blocks go straight back to the pool), making the session reusable
    /// for a new request.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.policy.reset();
        self.sequence.clear();
        self.budget = None;
        self.peak_cache_bytes = 0;
        self.prefill = None;
        self.decode = None;
        self.prefix_tokens_reused = 0;
        self.ws.clear();
        if let Some(stats) = &mut self.stats {
            stats.clear();
        }
    }

    /// Reserves every per-request buffer whose length tracks the sequence
    /// (token history, per-slot attention scratch) up front, so the decode
    /// loop's growth never reallocates mid-request.
    fn reserve_for_request(&mut self, prompt_len: usize, max_new_tokens: usize) {
        let slots = prompt_len.saturating_add(max_new_tokens);
        self.sequence.reserve(slots);
        self.ws.reserve_slots(slots);
    }

    /// Registers the prompt prefix ending at `processed` tokens into the
    /// configured registry when it lands on a block boundary. Called after
    /// each prompt-token forward; a no-op without a registry.
    fn maybe_register_prefix(&self, processed: usize) -> Result<(), CoreError> {
        let Some(registry) = &self.prefix_registry else {
            return Ok(());
        };
        if processed == 0 || processed % self.cache.block_size() != 0 {
            return Ok(());
        }
        registry
            .register(
                self.prefix_context,
                &self.sequence[..processed],
                &self.cache,
                self.policy.as_ref(),
            )
            .map(|_| ())
    }

    /// Runs one forward pass along the configured [`ForwardPath`], writing the
    /// next-token logits into `out` (reused across steps by the decode loop,
    /// so the workspace path allocates nothing in steady state).
    fn forward_into(
        &mut self,
        token: u32,
        position: usize,
        phase: Phase,
        step: usize,
        total_steps: usize,
        out: &mut Vec<f32>,
    ) -> Result<(), CoreError> {
        self.sequence.push(token);
        let mut ctx = ForwardContext {
            cache: &mut self.cache,
            policy: self.policy.as_mut(),
            stats: self.stats.as_mut(),
            sequence: &self.sequence,
            phase,
            step,
            total_steps,
        };
        match self.path {
            ForwardPath::Legacy => {
                *out = self.model.forward_token(token, position, &mut ctx)?;
            }
            ForwardPath::Workspace => {
                forward_token_ws(self.model, token, position, &mut ctx, &mut self.ws, out)?;
            }
        }
        self.peak_cache_bytes = self.peak_cache_bytes.max(self.cache.byte_size());
        Ok(())
    }

    fn evict_to_budget(&mut self) -> Result<(), CoreError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        for layer in 0..self.cache.num_layers() {
            let live = self.cache.layer(layer).len();
            if !budget.needs_eviction(live) {
                continue;
            }
            let retained = self.policy.select_retained(layer, live, &budget);
            keyformer_core::cache::validate_selection(&retained, live)?;
            self.cache.layer_mut(layer).retain_slots(&retained)?;
            self.policy.compact(layer, &retained);
        }
        Ok(())
    }

    /// Processes a prompt: fills the KV cache, derives the absolute budget from the
    /// prompt length, reduces the cache to that budget and returns the logits of the
    /// final prompt token (the distribution over the first generated token).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or a shape error
    /// occurs, and propagates policy-contract violations.
    pub fn process_prompt(
        &mut self,
        prompt: &[u32],
        total_generation_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        if prompt.is_empty() {
            return Err(CoreError::InvalidConfig("prompt must be non-empty".into()));
        }
        self.reset();
        self.budget = self
            .budget_spec
            .map(|spec| spec.for_prompt_len(prompt.len()));
        self.reserve_for_request(prompt.len(), total_generation_steps);
        let mut logits = Vec::new();
        match self.path {
            ForwardPath::Legacy => {
                for (pos, &tok) in prompt.iter().enumerate() {
                    self.forward_into(
                        tok,
                        pos,
                        Phase::Prompt,
                        pos,
                        total_generation_steps,
                        &mut logits,
                    )?;
                    self.maybe_register_prefix(pos + 1)?;
                }
            }
            // One-shot prefill is a single maximal chunk through the batched
            // GEMM path (byte-identical to the per-token loop).
            ForwardPath::Workspace => {
                self.forward_prompt_chunk(
                    prompt,
                    0,
                    prompt.len(),
                    total_generation_steps,
                    &mut logits,
                )?;
            }
        }
        // The paper reduces the cache once at the end of the prompt phase.
        self.evict_to_budget()?;
        Ok(logits)
    }

    /// Forwards `n` prompt tokens starting at `start` through the
    /// chunk-batched workspace path ([`forward_chunk_ws`]), then replays the
    /// buffered per-token attention observations token-major — so policy RNG
    /// streams, statistics records and block-boundary prefix registrations
    /// happen exactly where the token-at-a-time loop put them. Next-token
    /// logits are produced only when the chunk reaches the end of the prompt.
    fn forward_prompt_chunk(
        &mut self,
        prompt: &[u32],
        start: usize,
        n: usize,
        total_steps: usize,
        logits: &mut Vec<f32>,
    ) -> Result<(), CoreError> {
        let tokens = &prompt[start..start + n];
        self.sequence.extend_from_slice(tokens);
        let compute_logits = start + n == prompt.len();
        let chunk_peak = forward_chunk_ws(
            self.model,
            tokens,
            start,
            &mut self.cache,
            &self.sequence,
            &mut self.ws,
            compute_logits,
            logits,
        )?;
        self.peak_cache_bytes = self.peak_cache_bytes.max(chunk_peak);
        for i in 0..n {
            self.ws.replay_chunk_token(
                i,
                start + i,
                total_steps,
                &self.cache,
                self.policy.as_mut(),
                self.stats.as_mut(),
            );
            self.maybe_register_prefix(start + i + 1)?;
        }
        Ok(())
    }

    /// Arms a stepwise decode of up to `config.max_new_tokens` tokens for
    /// `prompt`, running the prefill phase according to the configured
    /// granularity: with the default one-shot prefill the whole prompt is
    /// forwarded here; with [`Session::set_prefill_chunk`] the prompt is only
    /// validated and armed, and [`Session::advance_prefill`] does the forwards.
    /// Any previous per-sequence state (including an unfinished prefill or
    /// decode) is discarded — even when `begin` returns an error, so a stale
    /// [`Session::take_output`] can never be misattributed to the new request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or contains
    /// out-of-vocabulary tokens, and propagates policy-contract violations.
    pub fn begin(&mut self, prompt: &[u32], config: &GenerationConfig) -> Result<(), CoreError> {
        self.reset();
        self.validate_prompt(prompt)?;
        if self.prefill_chunk.is_some() {
            self.budget = self
                .budget_spec
                .map(|spec| spec.for_prompt_len(prompt.len()));
            self.reserve_for_request(prompt.len(), config.max_new_tokens);
            self.prefill = Some(PrefillState {
                prompt: prompt.to_vec(),
                config: *config,
                processed: 0,
            });
            return Ok(());
        }
        let logits = self.process_prompt(prompt, config.max_new_tokens)?;
        self.arm_decode(prompt.len(), prompt.last().copied(), config, logits);
        Ok(())
    }

    fn validate_prompt(&self, prompt: &[u32]) -> Result<(), CoreError> {
        if prompt.is_empty() {
            return Err(CoreError::InvalidConfig("prompt must be non-empty".into()));
        }
        for &tok in prompt {
            if tok as usize >= self.model.config().vocab_size {
                return Err(CoreError::InvalidConfig(format!(
                    "prompt token {tok} outside vocabulary of {}",
                    self.model.config().vocab_size
                )));
            }
        }
        Ok(())
    }

    /// Like [`Session::begin`], but first attaches the longest prefix of
    /// `prompt` cached in the configured registry (if any): the matched blocks
    /// are mapped into this session's cache copy-on-write, the policy resumes
    /// from the registry's snapshot at that boundary, and the prefill skips the
    /// already-computed tokens. Returns how many prompt tokens were reused
    /// (0 on a registry miss or without a registry — then this is exactly
    /// `begin`, except that one-shot prefill runs through the resumable-prefill
    /// machinery).
    ///
    /// Attachment is invisible in the output: the generated tokens are
    /// identical to a cold [`Session::begin`] of the same prompt, for every
    /// policy in the zoo (the registry's policy snapshot carries the
    /// accumulated scores and RNG stream position a cold start would have).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an empty or out-of-vocabulary
    /// prompt (and on registry/cache pool mismatches), and propagates forward,
    /// eviction and pool errors.
    pub fn begin_with_prefix(
        &mut self,
        prompt: &[u32],
        config: &GenerationConfig,
    ) -> Result<usize, CoreError> {
        self.reset();
        self.validate_prompt(prompt)?;
        self.budget = self
            .budget_spec
            .map(|spec| spec.for_prompt_len(prompt.len()));
        self.reserve_for_request(prompt.len(), config.max_new_tokens);
        let mut attached = 0;
        if let Some(registry) = self.prefix_registry.clone() {
            // At least the final prompt token must be forwarded (its logits
            // seed the decode), so at most the preceding full blocks attach.
            let bs = self.cache.block_size();
            let cap = (prompt.len() - 1) / bs * bs;
            if cap > 0 {
                match registry.attach(self.prefix_context, &prompt[..cap], &mut self.cache) {
                    Ok(Some(prefix)) => {
                        self.policy = prefix.policy;
                        self.sequence.extend_from_slice(&prompt[..prefix.tokens]);
                        self.peak_cache_bytes = self.cache.byte_size();
                        attached = prefix.tokens;
                    }
                    Ok(None) => {}
                    Err(e) => {
                        self.reset();
                        return Err(e);
                    }
                }
            }
        }
        self.prefix_tokens_reused = attached;
        self.prefill = Some(PrefillState {
            prompt: prompt.to_vec(),
            config: *config,
            processed: attached,
        });
        if self.prefill_chunk.is_none() {
            self.finish_prefill_inline()?;
        }
        Ok(attached)
    }

    /// Drives an armed prefill to completion in one call, surfacing an
    /// unresolvable stall as [`CoreError::PoolExhausted`].
    fn finish_prefill_inline(&mut self) -> Result<(), CoreError> {
        while self.is_prefilling() {
            let progress = self.advance_prefill()?;
            if progress.stalled && progress.processed == 0 {
                // Nothing is going to free blocks inside this call: surface
                // the exhaustion instead of spinning.
                let stats = self.cache.pool().stats();
                self.reset();
                return Err(CoreError::PoolExhausted {
                    in_use: stats.in_use,
                    capacity: stats.capacity_blocks.unwrap_or(usize::MAX),
                });
            }
        }
        Ok(())
    }

    /// Forks this session into an independent one that shares every current KV
    /// block copy-on-write: both sessions read the same physical blocks (one
    /// pool refcount each) until either side writes — an append into a shared
    /// partial block or an eviction — which forks a private copy for the
    /// writer. Policy state, token history, budget and any in-flight prefill
    /// or decode (including the sampling RNG's stream position) are cloned, so
    /// an undisturbed fork continues exactly like the original would have.
    ///
    /// The fork draws from the same pool but carries no scheduler block
    /// reservation; a serving layer that forks sessions must account for it
    /// separately.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidBlock`] if the pool's accounting disagrees
    /// with the cache's block tables (a bookkeeping bug).
    pub fn fork(&self) -> Result<Session<'m>, CoreError> {
        Ok(Session {
            model: self.model,
            policy: self.policy.clone_box(),
            budget_spec: self.budget_spec,
            budget: self.budget,
            cache: self.cache.fork()?,
            sequence: self.sequence.clone(),
            stats: self.stats.clone(),
            peak_cache_bytes: self.peak_cache_bytes,
            prefill_chunk: self.prefill_chunk,
            block_reservation: 0,
            prefill: self.prefill.clone(),
            decode: self.decode.clone(),
            prefix_registry: self.prefix_registry.clone(),
            prefix_context: self.prefix_context,
            prefix_tokens_reused: self.prefix_tokens_reused,
            path: self.path,
            // The fork shares every block (same ids, same generations), so the
            // cloned rotated-key caches stay valid until either side writes.
            ws: self.ws.clone(),
        })
    }

    fn arm_decode(
        &mut self,
        prompt_len: usize,
        last_prompt_token: Option<u32>,
        config: &GenerationConfig,
        logits: Vec<f32>,
    ) {
        // +1: the final prompt token joins the penalised set alongside up to
        // `max_new_tokens` generated tokens. Reserving exactly keeps the
        // decode loop's pushes allocation-free.
        let mut penalised = Vec::with_capacity(config.max_new_tokens + 1);
        penalised.extend(last_prompt_token);
        self.decode = Some(DecodeState {
            config: *config,
            rng: StdRng::seed_from_u64(config.seed),
            logits,
            generated: Vec::with_capacity(config.max_new_tokens),
            penalised,
            prompt_len,
            step: 0,
            finished: config.max_new_tokens == 0,
        });
    }

    /// Forwards the next chunk of an armed prompt (at most
    /// [`Session::prefill_chunk`] tokens). When the final prompt token has been
    /// forwarded, the end-of-prompt eviction runs — freeing its blocks back to
    /// the pool at that instant — and the decode is armed, exactly as one-shot
    /// [`Session::begin`] would have done; the generated tokens are therefore
    /// identical whatever the chunking.
    ///
    /// Against a bounded *strict* block pool the call stops early (with
    /// [`PrefillProgress::stalled`]) instead of failing when the pool cannot
    /// cover the next token; the prefill stays resumable and should be retried
    /// once another sequence frees blocks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if no prefill is in progress, and
    /// propagates forward and eviction errors — after which the session holds
    /// neither a prefill nor a decode, so a scheduler can retire it safely.
    pub fn advance_prefill(&mut self) -> Result<PrefillProgress, CoreError> {
        match self.path {
            ForwardPath::Legacy => self.advance_prefill_sequential(),
            ForwardPath::Workspace => self.advance_prefill_batched(),
        }
    }

    /// The token-at-a-time prefill loop of the [`ForwardPath::Legacy`] path:
    /// per-token pool pre-flight, forward, prefix registration. The batched
    /// path reproduces its admission decisions, stall points and every emitted
    /// bit.
    fn advance_prefill_sequential(&mut self) -> Result<PrefillProgress, CoreError> {
        let Some(mut p) = self.prefill.take() else {
            return Err(CoreError::InvalidConfig(
                "no prefill in progress; call begin() with a prefill chunk first".into(),
            ));
        };
        let chunk = self.prefill_chunk.unwrap_or(usize::MAX).max(1);
        let mut processed_now = 0;
        let mut logits = Vec::new();
        let mut stalled = false;
        while p.processed < p.prompt.len() && processed_now < chunk {
            // Pre-flight the worst-case block need of one token so a strict
            // pool pauses the prefill cleanly instead of failing it mid-layer.
            // The reservation-aware check also refuses to grow the prefill
            // transient into blocks other sessions have reserved but not yet
            // allocated (a decoder's capacity+1 step would otherwise fail).
            let needed = self.cache.blocks_needed_for_next_token();
            if needed > 0
                && !self.cache.pool().can_allocate_transient(
                    needed,
                    self.cache.total_blocks(),
                    self.block_reservation,
                )
            {
                stalled = true;
                break;
            }
            let pos = p.processed;
            self.forward_into(
                p.prompt[pos],
                pos,
                Phase::Prompt,
                pos,
                p.config.max_new_tokens,
                &mut logits,
            )?;
            p.processed += 1;
            processed_now += 1;
            self.maybe_register_prefix(p.processed)?;
        }
        self.finish_or_report_prefill(p, logits, processed_now, stalled)
    }

    /// Chunk-batched prefill: admits the largest prompt prefix of this call's
    /// chunk that the block pool can cover — decided by *one* exact
    /// [`KvCache::blocks_needed_for_next_n_tokens`] query against the pool's
    /// transient headroom instead of a per-token pool round-trip — and
    /// forwards it through [`forward_chunk_ws`] in one pass per decoder layer.
    ///
    /// The cumulative block need of `n` appends is monotone in `n` and the
    /// pool state is constant between registrations, so the largest admissible
    /// prefix stalls on exactly the token the sequential per-token pre-flight
    /// would have refused. The one event that changes pool state *inside* a
    /// chunk is a successful prefix registration on a bounded strict pool
    /// (it reserves pins); registrations only fire at block boundaries, so in
    /// that configuration the chunk is split at block boundaries and the
    /// headroom re-read per segment, which reproduces the sequential admission
    /// exactly.
    fn advance_prefill_batched(&mut self) -> Result<PrefillProgress, CoreError> {
        let Some(mut p) = self.prefill.take() else {
            return Err(CoreError::InvalidConfig(
                "no prefill in progress; call begin() with a prefill chunk first".into(),
            ));
        };
        let chunk = self.prefill_chunk.unwrap_or(usize::MAX).max(1);
        let mut processed_now = 0;
        let mut logits = Vec::new();
        let mut stalled = false;
        let bs = self.cache.block_size().max(1);
        let segment_at_blocks = self.prefix_registry.is_some()
            && self.cache.pool().overcommit() == OvercommitPolicy::Strict
            && self.cache.pool().capacity_blocks().is_some();
        while p.processed < p.prompt.len() && processed_now < chunk && !stalled {
            let mut want = (p.prompt.len() - p.processed).min(chunk - processed_now);
            if segment_at_blocks {
                want = want.min(bs - p.processed % bs);
            }
            let headroom = self
                .cache
                .pool()
                .max_transient_blocks(self.cache.total_blocks(), self.block_reservation);
            let n = if self.cache.blocks_needed_for_next_n_tokens(want) <= headroom {
                want
            } else {
                // Largest prefix whose cumulative block need still fits; the
                // need is monotone and needed(0) == 0, so the search is total.
                stalled = true;
                let (mut lo, mut hi) = (0usize, want - 1);
                while lo < hi {
                    let mid = (lo + hi).div_ceil(2);
                    if self.cache.blocks_needed_for_next_n_tokens(mid) <= headroom {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                lo
            };
            if n == 0 {
                break;
            }
            let start = p.processed;
            self.forward_prompt_chunk(&p.prompt, start, n, p.config.max_new_tokens, &mut logits)?;
            p.processed += n;
            processed_now += n;
        }
        self.finish_or_report_prefill(p, logits, processed_now, stalled)
    }

    /// Shared tail of both prefill drivers: arms the decode once the final
    /// prompt token has been forwarded (after the CoW-fork pre-flight and the
    /// paper's single end-of-prompt eviction), or re-arms the prefill state
    /// and reports progress.
    fn finish_or_report_prefill(
        &mut self,
        p: PrefillState,
        logits: Vec<f32>,
        processed_now: usize,
        stalled: bool,
    ) -> Result<PrefillProgress, CoreError> {
        if p.processed == p.prompt.len() {
            // The end-of-prompt eviction may have to CoW-fork blocks this
            // session shares (an attached prefix compacted in place), and each
            // fork allocates while the shared original stays pinned. Pre-flight
            // the worst case so a dry strict pool pauses here — resumable, like
            // any other stall — instead of failing the request mid-eviction.
            let may_fork = self.cache.shared_block_count();
            if may_fork > 0
                && self.budget.is_some()
                && !self.cache.pool().can_allocate_transient(
                    may_fork,
                    self.cache.total_blocks(),
                    self.block_reservation,
                )
            {
                self.prefill = Some(p);
                return Ok(PrefillProgress {
                    processed: processed_now,
                    remaining: 0,
                    ready: false,
                    stalled: true,
                });
            }
            // The paper reduces the cache once, at the end of the prompt phase.
            self.evict_to_budget()?;
            self.arm_decode(p.prompt.len(), p.prompt.last().copied(), &p.config, logits);
            return Ok(PrefillProgress {
                processed: processed_now,
                remaining: 0,
                ready: true,
                stalled: false,
            });
        }
        let remaining = p.prompt.len() - p.processed;
        self.prefill = Some(p);
        Ok(PrefillProgress {
            processed: processed_now,
            remaining,
            ready: false,
            stalled,
        })
    }

    /// `true` while an armed chunked prefill still has prompt tokens to forward.
    pub fn is_prefilling(&self) -> bool {
        self.prefill.is_some()
    }

    /// Prompt tokens an in-flight chunked prefill still has to forward.
    pub fn prefill_remaining(&self) -> usize {
        self.prefill
            .as_ref()
            .map_or(0, |p| p.prompt.len() - p.processed)
    }

    /// `true` while a decode armed by [`Session::begin`] still has steps to run.
    pub fn is_decoding(&self) -> bool {
        self.decode.as_ref().is_some_and(|d| !d.finished)
    }

    /// `true` once an armed decode has produced its final token (and its output has
    /// not yet been taken).
    pub fn is_finished(&self) -> bool {
        self.decode.as_ref().is_some_and(|d| d.finished)
    }

    /// Tokens generated so far by the current decode.
    pub fn generated(&self) -> &[u32] {
        self.decode.as_ref().map_or(&[], |d| d.generated.as_slice())
    }

    #[cfg(test)]
    pub(crate) fn penalised_tokens(&self) -> &[u32] {
        self.decode.as_ref().map_or(&[], |d| d.penalised.as_slice())
    }

    /// Runs exactly one decode step: applies the repetition penalty, samples the
    /// next token, and (unless the decode just finished) runs the forward pass and
    /// eviction that prepare the following step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if no decode is active (no
    /// [`Session::begin`], or the decode already finished), and propagates forward
    /// or eviction errors — after which the decode is left finished, so a scheduler
    /// can retire the session without risking a panic.
    pub fn step(&mut self) -> Result<SessionStep, CoreError> {
        let Some(mut d) = self.decode.take() else {
            return Err(CoreError::InvalidConfig(
                "no active decode; call begin() first".into(),
            ));
        };
        if d.finished {
            self.decode = Some(d);
            return Err(CoreError::InvalidConfig(
                "decode already finished; take_output() and begin() again".into(),
            ));
        }
        if d.config.repetition_penalty > 0.0 {
            for &tok in &d.penalised {
                if let Some(l) = d.logits.get_mut(tok as usize) {
                    *l -= d.config.repetition_penalty;
                }
            }
        }
        let next = pick_token(&d.logits, &d.config, &mut d.rng);
        d.generated.push(next);
        if !d.penalised.contains(&next) {
            d.penalised.push(next);
        }
        let step = d.step;
        d.step += 1;
        if Some(next) == d.config.eos_token || d.step == d.config.max_new_tokens {
            d.finished = true;
            self.decode = Some(d);
            return Ok(SessionStep {
                token: next,
                index: step,
                finished: true,
            });
        }
        let position = d.prompt_len + step;
        let forwarded = self
            .forward_into(
                next,
                position,
                Phase::Generation,
                step,
                d.config.max_new_tokens,
                &mut d.logits,
            )
            .and_then(|()| self.evict_to_budget());
        match forwarded {
            Ok(()) => {
                self.decode = Some(d);
                Ok(SessionStep {
                    token: next,
                    index: step,
                    finished: false,
                })
            }
            Err(e) => {
                d.finished = true;
                self.decode = Some(d);
                Err(e)
            }
        }
    }

    /// Consumes the current decode (finished or not) into a [`GenerationOutput`].
    /// Returns `None` if no decode was armed.
    pub fn take_output(&mut self) -> Option<GenerationOutput> {
        let d = self.decode.take()?;
        Some(GenerationOutput {
            generated: d.generated,
            prompt_len: d.prompt_len,
            final_cache_slots: self.cache_slots(),
            final_cache_bytes: self.cache_bytes(),
            peak_cache_bytes: self.peak_cache_bytes,
        })
    }

    /// Runs the full two-phase inference — prefill plus autoregressive decode — by
    /// driving the stepwise API to completion.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an empty or out-of-vocabulary
    /// prompt, and propagates forward or eviction errors.
    pub fn generate(
        &mut self,
        prompt: &[u32],
        config: &GenerationConfig,
    ) -> Result<GenerationOutput, CoreError> {
        self.begin(prompt, config)?;
        // Nothing else shares this pool in a standalone generate, so a stall
        // can never resolve: finish_prefill_inline surfaces it as an error
        // instead of spinning.
        self.finish_prefill_inline()?;
        while self.is_decoding() {
            self.step()?;
        }
        Ok(self
            .take_output()
            .expect("begin() armed a decode, so an output exists"))
    }

    /// Scores a continuation under the model: returns the total and per-token mean
    /// log-likelihood of `continuation` given `prompt`, processing the prompt with
    /// the session's cache policy. Used by the few-shot evaluation (Table 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if prompt or continuation is empty.
    pub fn score_continuation(
        &mut self,
        prompt: &[u32],
        continuation: &[u32],
    ) -> Result<ContinuationScore, CoreError> {
        if continuation.is_empty() {
            return Err(CoreError::InvalidConfig(
                "continuation must be non-empty".into(),
            ));
        }
        let mut logits = self.process_prompt(prompt, continuation.len())?;
        let mut total_log_prob = 0.0f64;
        for (step, &tok) in continuation.iter().enumerate() {
            let log_probs = log_softmax(&logits);
            total_log_prob += f64::from(log_probs[tok as usize]);
            if step + 1 == continuation.len() {
                break;
            }
            let position = prompt.len() + step;
            self.forward_into(
                tok,
                position,
                Phase::Generation,
                step,
                continuation.len(),
                &mut logits,
            )?;
            self.evict_to_budget()?;
        }
        Ok(ContinuationScore {
            total_log_prob,
            tokens: continuation.len(),
        })
    }
}

fn pick_token(logits: &[f32], config: &GenerationConfig, rng: &mut StdRng) -> u32 {
    match config.sampling {
        SamplingStrategy::Greedy => argmax(logits).unwrap_or(0) as u32,
        SamplingStrategy::TopK { k, temperature } => {
            let candidates = top_k_indices(logits, k.max(1));
            let candidate_logits: Vec<f32> = candidates.iter().map(|&i| logits[i]).collect();
            let probs = softmax_with_temperature(&candidate_logits, temperature.max(1e-3));
            let draw: f32 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if draw <= acc {
                    return candidates[i] as u32;
                }
            }
            *candidates.last().unwrap_or(&0) as u32
        }
    }
}

/// Log-likelihood of a continuation, as returned by
/// [`Session::score_continuation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuationScore {
    /// Sum of per-token log-probabilities (natural log).
    pub total_log_prob: f64,
    /// Number of continuation tokens scored.
    pub tokens: usize,
}

impl ContinuationScore {
    /// Length-normalised log-likelihood (mean per token).
    pub fn per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.total_log_prob / self.tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::ModelFamily;
    use keyformer_core::spec::PolicySpec;

    fn prompt(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 13 + 5) % 120) as u32).collect()
    }

    #[test]
    fn stepwise_decode_matches_one_shot_generate() {
        let model = ModelFamily::Tiny.build(6);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let config = GenerationConfig::new(7);
        let one_shot = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        )
        .generate(&prompt(28), &config)
        .unwrap();
        let mut stepwise = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        stepwise.begin(&prompt(28), &config).unwrap();
        let mut tokens = Vec::new();
        while stepwise.is_decoding() {
            let produced = stepwise.step().unwrap();
            assert_eq!(produced.index, tokens.len(), "step indices count up from 0");
            tokens.push(produced.token);
        }
        let out = stepwise.take_output().unwrap();
        assert_eq!(out.generated, tokens);
        assert_eq!(out, one_shot);
    }

    #[test]
    fn step_without_begin_is_an_error() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(session.step().is_err());
        assert!(session.take_output().is_none());
    }

    #[test]
    fn step_after_finish_is_an_error_but_output_survives() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(10), &GenerationConfig::new(2))
            .unwrap();
        session.step().unwrap();
        let last = session.step().unwrap();
        assert!(last.finished);
        assert!(session.is_finished());
        assert!(session.step().is_err());
        assert_eq!(session.take_output().unwrap().generated.len(), 2);
    }

    #[test]
    fn zero_token_decode_finishes_immediately() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(6), &GenerationConfig::new(0))
            .unwrap();
        assert!(!session.is_decoding());
        assert!(session.is_finished());
        assert!(session.take_output().unwrap().generated.is_empty());
    }

    #[test]
    fn out_of_vocabulary_prompt_is_rejected_not_panicked() {
        let model = ModelFamily::Tiny.build(1);
        let vocab = model.config().vocab_size as u32;
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(session
            .begin(&[3, vocab + 7], &GenerationConfig::new(2))
            .is_err());
        assert!(session
            .generate(&[vocab], &GenerationConfig::new(1))
            .is_err());
    }

    #[test]
    fn penalised_tokens_stay_deduplicated() {
        let model = ModelFamily::Tiny.build(2);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        // With the penalty disabled the untrained substrate's tied readout happily
        // repeats tokens, so the bookkeeping sees duplicates.
        session
            .begin(
                &prompt(12),
                &GenerationConfig::new(12).with_repetition_penalty(0.0),
            )
            .unwrap();
        while session.is_decoding() {
            session.step().unwrap();
        }
        let mut seen = session.penalised_tokens().to_vec();
        let generated = session.generated().to_vec();
        let distinct = |mut v: Vec<u32>| {
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(
            distinct(generated.clone()) < generated.len(),
            "expected repeats under zero penalty, got {generated:?}"
        );
        let len = seen.len();
        assert_eq!(distinct(std::mem::take(&mut seen)), len);
    }

    #[test]
    fn failed_begin_discards_the_previous_request() {
        let model = ModelFamily::Tiny.build(4);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(8), &GenerationConfig::new(2))
            .unwrap();
        while session.is_decoding() {
            session.step().unwrap();
        }
        // A rejected follow-up request must not leave the finished decode
        // harvestable as if it belonged to the new request.
        assert!(session.begin(&[], &GenerationConfig::new(2)).is_err());
        assert!(!session.is_finished());
        assert!(session.take_output().is_none());
        let vocab = model.config().vocab_size as u32;
        session
            .begin(&prompt(8), &GenerationConfig::new(1))
            .unwrap();
        assert!(session
            .begin(&[vocab + 1], &GenerationConfig::new(2))
            .is_err());
        assert!(session.take_output().is_none());
        assert!(session.sequence().is_empty());
    }

    #[test]
    fn chunked_prefill_is_token_identical_to_one_shot() {
        let model = ModelFamily::Tiny.build(8);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let config = GenerationConfig::new(6);
        let one_shot = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        )
        .generate(&prompt(25), &config)
        .unwrap();
        for chunk in [1usize, 4, 7, 25, 100] {
            let mut chunked = Session::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(spec),
            )
            .with_prefill_chunk(chunk);
            chunked.begin(&prompt(25), &config).unwrap();
            assert!(chunked.is_prefilling());
            assert!(!chunked.is_decoding());
            let mut calls = 0;
            while chunked.is_prefilling() {
                let progress = chunked.advance_prefill().unwrap();
                assert!(progress.processed > 0);
                assert!(progress.processed <= chunk);
                calls += 1;
            }
            assert_eq!(calls, 25usize.div_ceil(chunk));
            while chunked.is_decoding() {
                chunked.step().unwrap();
            }
            assert_eq!(
                chunked.take_output().unwrap(),
                one_shot,
                "chunk size {chunk} diverged from one-shot prefill"
            );
        }
    }

    #[test]
    fn advance_prefill_without_begin_is_an_error() {
        let model = ModelFamily::Tiny.build(1);
        let mut session =
            Session::new(&model, PolicySpec::Full.build().unwrap(), None).with_prefill_chunk(4);
        assert!(session.advance_prefill().is_err());
        // Stepping before the prefill finished is also an error.
        session
            .begin(&prompt(9), &GenerationConfig::new(2))
            .unwrap();
        assert!(session.step().is_err());
        assert_eq!(session.prefill_remaining(), 9);
    }

    #[test]
    fn aborting_mid_prefill_returns_every_block_to_the_pool() {
        use keyformer_core::block::SharedBlockPool;
        let model = ModelFamily::Tiny.build(2);
        let pool = SharedBlockPool::unbounded(4);
        let mut session = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            pool.clone(),
        )
        .with_prefill_chunk(5);
        session
            .begin(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        session.advance_prefill().unwrap();
        assert!(pool.blocks_in_use() > 0);
        session.reset();
        assert_eq!(pool.blocks_in_use(), 0, "aborted prefill leaked blocks");
        assert!(!session.is_prefilling());
        // The session remains fully usable against the same pool.
        let out = session
            .generate(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        assert_eq!(out.generated.len(), 4);
    }

    #[test]
    fn strict_pool_stalls_prefill_and_resumes_when_blocks_free_up() {
        use keyformer_core::block::{OvercommitPolicy, SharedBlockPool};
        let model = ModelFamily::Tiny.build(3);
        // 2 layers x 4-slot blocks, 8 blocks total. A neighbour sequence holds
        // 4 of them, so a 14-token prompt (needing all 8) must pause halfway.
        let pool = SharedBlockPool::bounded(4, 8, OvercommitPolicy::Strict).unwrap();
        let mut blocker = Session::with_pool(
            &model,
            PolicySpec::Full.build().unwrap(),
            None,
            pool.clone(),
        );
        blocker
            .generate(&prompt(6), &GenerationConfig::new(1))
            .unwrap();
        assert_eq!(pool.blocks_in_use(), 4);

        let mut session = Session::with_pool(
            &model,
            PolicySpec::Full.build().unwrap(),
            None,
            pool.clone(),
        )
        .with_prefill_chunk(14);
        session
            .begin(&prompt(14), &GenerationConfig::new(2))
            .unwrap();
        let progress = session.advance_prefill().unwrap();
        assert!(progress.stalled);
        assert_eq!(progress.processed, 8, "filled the 2 free blocks per layer");
        assert!(session.is_prefilling());
        // Retrying without help makes no progress but stays resumable.
        let retry = session.advance_prefill().unwrap();
        assert!(retry.stalled);
        assert_eq!(retry.processed, 0);
        assert_eq!(retry.remaining, 6);
        // The neighbour retires, returning its blocks; the prefill resumes,
        // completes and decodes normally.
        drop(blocker);
        assert_eq!(pool.blocks_in_use(), 4);
        let resumed = session.advance_prefill().unwrap();
        assert!(resumed.ready);
        assert_eq!(resumed.processed, 6);
        while session.is_decoding() {
            session.step().unwrap();
        }
        assert_eq!(session.take_output().unwrap().generated.len(), 2);
    }

    #[test]
    fn begin_with_prefix_attaches_and_matches_cold_start() {
        use keyformer_core::block::SharedBlockPool;
        use keyformer_core::prefix::SharedPrefixRegistry;
        let model = ModelFamily::Tiny.build(5);
        let pool = SharedBlockPool::unbounded(4);
        let registry = SharedPrefixRegistry::new(&pool);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let config = GenerationConfig::new(5);
        let shared: Vec<u32> = prompt(16);
        let mut tail = prompt(24);
        let suffix: Vec<u32> = tail.split_off(16);
        let full: Vec<u32> = shared.iter().chain(&suffix).copied().collect();

        // Donor runs cold, registering its prompt blocks as it goes.
        let mut donor = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .with_prefix_registry(registry.clone(), 1);
        let donor_out = donor.generate(&full, &config).unwrap();
        assert!(registry.len() >= 4, "donor registered its full blocks");

        // Cold reference without any registry.
        let cold = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .generate(&full, &config)
        .unwrap();
        assert_eq!(donor_out, cold, "registration must not perturb the donor");

        // Attacher reuses the cached prefix and still matches bit-for-bit.
        let mut attacher = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .with_prefix_registry(registry.clone(), 1);
        let reused = attacher.begin_with_prefix(&full, &config).unwrap();
        assert_eq!(reused, 20, "floor((24-1)/4)*4 = 20 tokens attach");
        assert_eq!(attacher.prefix_tokens_reused(), 20);
        while attacher.is_decoding() {
            attacher.step().unwrap();
        }
        assert_eq!(attacher.take_output().unwrap(), cold);
        // A different context never matches.
        let mut stranger = Session::with_pool(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
            pool.clone(),
        )
        .with_prefix_registry(registry, 2);
        assert_eq!(stranger.begin_with_prefix(&full, &config).unwrap(), 0);
    }

    #[test]
    fn forked_session_continues_identically_and_independently() {
        let model = ModelFamily::Tiny.build(6);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let config = GenerationConfig::new(8);
        let mut original = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        original.begin(&prompt(20), &config).unwrap();
        for _ in 0..3 {
            original.step().unwrap();
        }
        let mut fork = original.fork().unwrap();
        assert_eq!(fork.sequence(), original.sequence());
        assert_eq!(fork.generated(), original.generated());
        // Both sides finish independently and produce the same continuation
        // (same RNG stream position, same CoW-shared cache contents).
        while original.is_decoding() {
            original.step().unwrap();
        }
        while fork.is_decoding() {
            fork.step().unwrap();
        }
        let a = original.take_output().unwrap();
        let b = fork.take_output().unwrap();
        assert_eq!(a, b);
        // And the whole thing matches an unforked run.
        let solo = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        )
        .generate(&prompt(20), &config)
        .unwrap();
        assert_eq!(a, solo);
    }

    #[test]
    fn fork_mid_prefill_resumes_on_both_sides() {
        use keyformer_core::block::SharedBlockPool;
        let model = ModelFamily::Tiny.build(7);
        let pool = SharedBlockPool::unbounded(4);
        let config = GenerationConfig::new(4);
        let mut original = Session::with_pool(
            &model,
            PolicySpec::h2o_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            pool.clone(),
        )
        .with_prefill_chunk(6);
        original.begin(&prompt(20), &config).unwrap();
        original.advance_prefill().unwrap();
        let mut fork = original.fork().unwrap();
        assert!(fork.is_prefilling());
        assert_eq!(fork.prefill_remaining(), original.prefill_remaining());
        let finish = |s: &mut Session<'_>| {
            while s.is_prefilling() {
                s.advance_prefill().unwrap();
            }
            while s.is_decoding() {
                s.step().unwrap();
            }
            s.take_output().unwrap()
        };
        let a = finish(&mut original);
        let b = finish(&mut fork);
        assert_eq!(a, b);
        drop(original);
        drop(fork);
        assert_eq!(pool.blocks_in_use(), 0, "forked blocks all returned");
    }

    #[test]
    fn session_reuse_after_take_output() {
        let model = ModelFamily::Tiny.build(3);
        let mut session = Session::new(
            &model,
            PolicySpec::h2o_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let a = session
            .generate(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        let b = session
            .generate(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        assert_eq!(a.generated, b.generated);
    }

    /// Compile-time thread-safety audit for the parallel serving layer: a
    /// `Session` must be safely movable to a worker thread for the duration
    /// of one decode step (`&mut Session: Send` requires `Session: Send`),
    /// which in turn requires the shared model reference to be `Sync` —
    /// forward passes are pure reads of the weights.
    #[test]
    fn sessions_move_across_decode_workers() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Session<'static>>();
        assert_sync::<TransformerModel>();
    }
}

//! Per-sequence inference state, decoupled from any serving arrangement.
//!
//! A [`Session`] owns everything that belongs to *one* sequence being decoded
//! against a shared [`TransformerModel`]: the KV cache, the eviction policy
//! instance, the derived budget, the token history, optional attention statistics
//! and the peak-byte watermark. The model itself is borrowed immutably, so any
//! number of sessions can decode against the same weights concurrently — which is
//! exactly what the continuous-batching scheduler in `keyformer-serve` does.
//!
//! Two drive styles are supported:
//!
//! * **One-shot** — [`Session::process_prompt`] / [`Session::score_continuation`],
//!   used by the single-sequence [`crate::engine::InferenceEngine`] facade.
//! * **Stepwise** — [`Session::begin`] runs the prefill phase and arms an
//!   autoregressive decode; each [`Session::step`] then produces exactly one
//!   token. A scheduler can interleave `step` calls across many sessions and
//!   harvest each finished session with [`Session::take_output`]. The stepwise
//!   path and [`crate::engine::InferenceEngine::generate`] share this single
//!   implementation, so serving a request produces token-identical output to
//!   running it alone.

use crate::config::ModelConfig;
use crate::generation::{GenerationConfig, GenerationOutput, SamplingStrategy};
use crate::model::{ForwardContext, TransformerModel};
use crate::stats::AttentionStats;
use keyformer_core::budget::{CacheBudget, CacheBudgetSpec};
use keyformer_core::cache::KvCache;
use keyformer_core::observation::Phase;
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::CoreError;
use keyformer_tensor::ops::{log_softmax, softmax_with_temperature};
use keyformer_tensor::top_k_indices;
use keyformer_tensor::vector::argmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sampling-loop state of an in-flight autoregressive decode.
///
/// Created by [`Session::begin`], advanced by [`Session::step`], consumed by
/// [`Session::take_output`].
#[derive(Debug)]
struct DecodeState {
    config: GenerationConfig,
    rng: StdRng,
    /// Logits over the next token (from the prefill or the last decode forward).
    logits: Vec<f32>,
    generated: Vec<u32>,
    /// Distinct tokens the repetition penalty applies to: the final prompt token
    /// (the task cue) plus every token generated so far. Kept deduplicated so each
    /// distinct token is penalised exactly once per step, however often it occurs.
    penalised: Vec<u32>,
    prompt_len: usize,
    step: usize,
    finished: bool,
}

/// The result of one decode step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStep {
    /// The token produced by this step.
    pub token: u32,
    /// `true` when this was the final step (EOS or the generation length was
    /// reached); further [`Session::step`] calls will fail until a new
    /// [`Session::begin`].
    pub finished: bool,
}

/// All per-sequence state needed to decode one sequence against a shared model.
pub struct Session<'m> {
    model: &'m TransformerModel,
    policy: Box<dyn KvCachePolicy>,
    budget_spec: Option<CacheBudgetSpec>,
    budget: Option<CacheBudget>,
    cache: KvCache,
    sequence: Vec<u32>,
    stats: Option<AttentionStats>,
    peak_cache_bytes: usize,
    decode: Option<DecodeState>,
}

impl<'m> Session<'m> {
    /// Creates a session. With `budget_spec = None` the cache is never reduced
    /// regardless of the policy (useful for the full-attention baseline).
    pub fn new(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
    ) -> Self {
        Session {
            cache: model.empty_cache(),
            model,
            policy,
            budget_spec,
            budget: None,
            sequence: Vec::new(),
            stats: None,
            peak_cache_bytes: 0,
            decode: None,
        }
    }

    /// Enables attention-statistics collection (sparsity, CDFs, heat maps).
    pub fn enable_stats(&mut self) {
        let c = self.model.config();
        self.stats = Some(AttentionStats::new(c.num_layers, c.num_heads));
    }

    /// Collected statistics, if enabled.
    pub fn stats(&self) -> Option<&AttentionStats> {
        self.stats.as_ref()
    }

    /// The model this session decodes against.
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// The absolute budget derived from the last processed prompt, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        self.budget
    }

    /// The budget specification this session derives per-prompt budgets from.
    pub fn budget_spec(&self) -> Option<CacheBudgetSpec> {
        self.budget_spec
    }

    /// The live KV cache (read-only), exposing per-layer retained slots and their
    /// original positions for diagnostics and experiments.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Live KV-cache slot count per layer.
    pub fn cache_slots(&self) -> Vec<usize> {
        self.cache.iter().map(|l| l.len()).collect()
    }

    /// Current KV-cache byte footprint.
    pub fn cache_bytes(&self) -> usize {
        self.cache.byte_size()
    }

    /// Peak KV-cache byte footprint observed so far.
    pub fn peak_cache_bytes(&self) -> usize {
        self.peak_cache_bytes
    }

    /// Full token history (prompt + generated) of the current sequence.
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Clears all per-sequence state, making the session reusable for a new request.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.policy.reset();
        self.sequence.clear();
        self.budget = None;
        self.peak_cache_bytes = 0;
        self.decode = None;
        if let Some(stats) = &mut self.stats {
            stats.clear();
        }
    }

    fn forward(
        &mut self,
        token: u32,
        position: usize,
        phase: Phase,
        step: usize,
        total_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.sequence.push(token);
        let mut ctx = ForwardContext {
            cache: &mut self.cache,
            policy: self.policy.as_mut(),
            stats: self.stats.as_mut(),
            sequence: &self.sequence,
            phase,
            step,
            total_steps,
        };
        let logits = self.model.forward_token(token, position, &mut ctx)?;
        self.peak_cache_bytes = self.peak_cache_bytes.max(self.cache.byte_size());
        Ok(logits)
    }

    fn evict_to_budget(&mut self) -> Result<(), CoreError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        for layer in 0..self.cache.num_layers() {
            let live = self.cache.layer(layer).len();
            if !budget.needs_eviction(live) {
                continue;
            }
            let retained = self.policy.select_retained(layer, live, &budget);
            keyformer_core::cache::validate_selection(&retained, live)?;
            self.cache.layer_mut(layer).retain_slots(&retained)?;
            self.policy.compact(layer, &retained);
        }
        Ok(())
    }

    /// Processes a prompt: fills the KV cache, derives the absolute budget from the
    /// prompt length, reduces the cache to that budget and returns the logits of the
    /// final prompt token (the distribution over the first generated token).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or a shape error
    /// occurs, and propagates policy-contract violations.
    pub fn process_prompt(
        &mut self,
        prompt: &[u32],
        total_generation_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        if prompt.is_empty() {
            return Err(CoreError::InvalidConfig("prompt must be non-empty".into()));
        }
        self.reset();
        self.budget = self
            .budget_spec
            .map(|spec| spec.for_prompt_len(prompt.len()));
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            logits = self.forward(tok, pos, Phase::Prompt, pos, total_generation_steps)?;
        }
        // The paper reduces the cache once at the end of the prompt phase.
        self.evict_to_budget()?;
        Ok(logits)
    }

    /// Runs the prefill phase for `prompt` and arms a stepwise decode of up to
    /// `config.max_new_tokens` tokens. Any previous per-sequence state (including an
    /// unfinished decode) is discarded — even when `begin` returns an error, so a
    /// stale [`Session::take_output`] can never be misattributed to the new request.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or contains
    /// out-of-vocabulary tokens, and propagates policy-contract violations.
    pub fn begin(&mut self, prompt: &[u32], config: &GenerationConfig) -> Result<(), CoreError> {
        self.reset();
        for &tok in prompt {
            if tok as usize >= self.model.config().vocab_size {
                return Err(CoreError::InvalidConfig(format!(
                    "prompt token {tok} outside vocabulary of {}",
                    self.model.config().vocab_size
                )));
            }
        }
        let logits = self.process_prompt(prompt, config.max_new_tokens)?;
        self.decode = Some(DecodeState {
            config: *config,
            rng: StdRng::seed_from_u64(config.seed),
            logits,
            generated: Vec::with_capacity(config.max_new_tokens),
            penalised: prompt.last().copied().into_iter().collect(),
            prompt_len: prompt.len(),
            step: 0,
            finished: config.max_new_tokens == 0,
        });
        Ok(())
    }

    /// `true` while a decode armed by [`Session::begin`] still has steps to run.
    pub fn is_decoding(&self) -> bool {
        self.decode.as_ref().is_some_and(|d| !d.finished)
    }

    /// `true` once an armed decode has produced its final token (and its output has
    /// not yet been taken).
    pub fn is_finished(&self) -> bool {
        self.decode.as_ref().is_some_and(|d| d.finished)
    }

    /// Tokens generated so far by the current decode.
    pub fn generated(&self) -> &[u32] {
        self.decode.as_ref().map_or(&[], |d| d.generated.as_slice())
    }

    #[cfg(test)]
    pub(crate) fn penalised_tokens(&self) -> &[u32] {
        self.decode.as_ref().map_or(&[], |d| d.penalised.as_slice())
    }

    /// Runs exactly one decode step: applies the repetition penalty, samples the
    /// next token, and (unless the decode just finished) runs the forward pass and
    /// eviction that prepare the following step.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if no decode is active (no
    /// [`Session::begin`], or the decode already finished), and propagates forward
    /// or eviction errors — after which the decode is left finished, so a scheduler
    /// can retire the session without risking a panic.
    pub fn step(&mut self) -> Result<SessionStep, CoreError> {
        let Some(mut d) = self.decode.take() else {
            return Err(CoreError::InvalidConfig(
                "no active decode; call begin() first".into(),
            ));
        };
        if d.finished {
            self.decode = Some(d);
            return Err(CoreError::InvalidConfig(
                "decode already finished; take_output() and begin() again".into(),
            ));
        }
        if d.config.repetition_penalty > 0.0 {
            for &tok in &d.penalised {
                if let Some(l) = d.logits.get_mut(tok as usize) {
                    *l -= d.config.repetition_penalty;
                }
            }
        }
        let next = pick_token(&d.logits, &d.config, &mut d.rng);
        d.generated.push(next);
        if !d.penalised.contains(&next) {
            d.penalised.push(next);
        }
        let step = d.step;
        d.step += 1;
        if Some(next) == d.config.eos_token || d.step == d.config.max_new_tokens {
            d.finished = true;
            self.decode = Some(d);
            return Ok(SessionStep {
                token: next,
                finished: true,
            });
        }
        let position = d.prompt_len + step;
        let forwarded = self
            .forward(
                next,
                position,
                Phase::Generation,
                step,
                d.config.max_new_tokens,
            )
            .and_then(|logits| {
                self.evict_to_budget()?;
                Ok(logits)
            });
        match forwarded {
            Ok(logits) => {
                d.logits = logits;
                self.decode = Some(d);
                Ok(SessionStep {
                    token: next,
                    finished: false,
                })
            }
            Err(e) => {
                d.finished = true;
                self.decode = Some(d);
                Err(e)
            }
        }
    }

    /// Consumes the current decode (finished or not) into a [`GenerationOutput`].
    /// Returns `None` if no decode was armed.
    pub fn take_output(&mut self) -> Option<GenerationOutput> {
        let d = self.decode.take()?;
        Some(GenerationOutput {
            generated: d.generated,
            prompt_len: d.prompt_len,
            final_cache_slots: self.cache_slots(),
            final_cache_bytes: self.cache_bytes(),
            peak_cache_bytes: self.peak_cache_bytes,
        })
    }

    /// Runs the full two-phase inference — prefill plus autoregressive decode — by
    /// driving the stepwise API to completion.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an empty or out-of-vocabulary
    /// prompt, and propagates forward or eviction errors.
    pub fn generate(
        &mut self,
        prompt: &[u32],
        config: &GenerationConfig,
    ) -> Result<GenerationOutput, CoreError> {
        self.begin(prompt, config)?;
        while self.is_decoding() {
            self.step()?;
        }
        Ok(self
            .take_output()
            .expect("begin() armed a decode, so an output exists"))
    }

    /// Scores a continuation under the model: returns the total and per-token mean
    /// log-likelihood of `continuation` given `prompt`, processing the prompt with
    /// the session's cache policy. Used by the few-shot evaluation (Table 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if prompt or continuation is empty.
    pub fn score_continuation(
        &mut self,
        prompt: &[u32],
        continuation: &[u32],
    ) -> Result<ContinuationScore, CoreError> {
        if continuation.is_empty() {
            return Err(CoreError::InvalidConfig(
                "continuation must be non-empty".into(),
            ));
        }
        let mut logits = self.process_prompt(prompt, continuation.len())?;
        let mut total_log_prob = 0.0f64;
        for (step, &tok) in continuation.iter().enumerate() {
            let log_probs = log_softmax(&logits);
            total_log_prob += f64::from(log_probs[tok as usize]);
            if step + 1 == continuation.len() {
                break;
            }
            let position = prompt.len() + step;
            logits = self.forward(tok, position, Phase::Generation, step, continuation.len())?;
            self.evict_to_budget()?;
        }
        Ok(ContinuationScore {
            total_log_prob,
            tokens: continuation.len(),
        })
    }
}

fn pick_token(logits: &[f32], config: &GenerationConfig, rng: &mut StdRng) -> u32 {
    match config.sampling {
        SamplingStrategy::Greedy => argmax(logits).unwrap_or(0) as u32,
        SamplingStrategy::TopK { k, temperature } => {
            let candidates = top_k_indices(logits, k.max(1));
            let candidate_logits: Vec<f32> = candidates.iter().map(|&i| logits[i]).collect();
            let probs = softmax_with_temperature(&candidate_logits, temperature.max(1e-3));
            let draw: f32 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            for (i, &p) in probs.iter().enumerate() {
                acc += p;
                if draw <= acc {
                    return candidates[i] as u32;
                }
            }
            *candidates.last().unwrap_or(&0) as u32
        }
    }
}

/// Log-likelihood of a continuation, as returned by
/// [`Session::score_continuation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuationScore {
    /// Sum of per-token log-probabilities (natural log).
    pub total_log_prob: f64,
    /// Number of continuation tokens scored.
    pub tokens: usize,
}

impl ContinuationScore {
    /// Length-normalised log-likelihood (mean per token).
    pub fn per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.total_log_prob / self.tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::ModelFamily;
    use keyformer_core::spec::PolicySpec;

    fn prompt(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 13 + 5) % 120) as u32).collect()
    }

    #[test]
    fn stepwise_decode_matches_one_shot_generate() {
        let model = ModelFamily::Tiny.build(6);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let config = GenerationConfig::new(7);
        let one_shot = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        )
        .generate(&prompt(28), &config)
        .unwrap();
        let mut stepwise = Session::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        stepwise.begin(&prompt(28), &config).unwrap();
        let mut tokens = Vec::new();
        while stepwise.is_decoding() {
            tokens.push(stepwise.step().unwrap().token);
        }
        let out = stepwise.take_output().unwrap();
        assert_eq!(out.generated, tokens);
        assert_eq!(out, one_shot);
    }

    #[test]
    fn step_without_begin_is_an_error() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(session.step().is_err());
        assert!(session.take_output().is_none());
    }

    #[test]
    fn step_after_finish_is_an_error_but_output_survives() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(10), &GenerationConfig::new(2))
            .unwrap();
        session.step().unwrap();
        let last = session.step().unwrap();
        assert!(last.finished);
        assert!(session.is_finished());
        assert!(session.step().is_err());
        assert_eq!(session.take_output().unwrap().generated.len(), 2);
    }

    #[test]
    fn zero_token_decode_finishes_immediately() {
        let model = ModelFamily::Tiny.build(1);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(6), &GenerationConfig::new(0))
            .unwrap();
        assert!(!session.is_decoding());
        assert!(session.is_finished());
        assert!(session.take_output().unwrap().generated.is_empty());
    }

    #[test]
    fn out_of_vocabulary_prompt_is_rejected_not_panicked() {
        let model = ModelFamily::Tiny.build(1);
        let vocab = model.config().vocab_size as u32;
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(session
            .begin(&[3, vocab + 7], &GenerationConfig::new(2))
            .is_err());
        assert!(session
            .generate(&[vocab], &GenerationConfig::new(1))
            .is_err());
    }

    #[test]
    fn penalised_tokens_stay_deduplicated() {
        let model = ModelFamily::Tiny.build(2);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        // With the penalty disabled the untrained substrate's tied readout happily
        // repeats tokens, so the bookkeeping sees duplicates.
        session
            .begin(
                &prompt(12),
                &GenerationConfig::new(12).with_repetition_penalty(0.0),
            )
            .unwrap();
        while session.is_decoding() {
            session.step().unwrap();
        }
        let mut seen = session.penalised_tokens().to_vec();
        let generated = session.generated().to_vec();
        let distinct = |mut v: Vec<u32>| {
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(
            distinct(generated.clone()) < generated.len(),
            "expected repeats under zero penalty, got {generated:?}"
        );
        let len = seen.len();
        assert_eq!(distinct(std::mem::take(&mut seen)), len);
    }

    #[test]
    fn failed_begin_discards_the_previous_request() {
        let model = ModelFamily::Tiny.build(4);
        let mut session = Session::new(&model, PolicySpec::Full.build().unwrap(), None);
        session
            .begin(&prompt(8), &GenerationConfig::new(2))
            .unwrap();
        while session.is_decoding() {
            session.step().unwrap();
        }
        // A rejected follow-up request must not leave the finished decode
        // harvestable as if it belonged to the new request.
        assert!(session.begin(&[], &GenerationConfig::new(2)).is_err());
        assert!(!session.is_finished());
        assert!(session.take_output().is_none());
        let vocab = model.config().vocab_size as u32;
        session
            .begin(&prompt(8), &GenerationConfig::new(1))
            .unwrap();
        assert!(session
            .begin(&[vocab + 1], &GenerationConfig::new(2))
            .is_err());
        assert!(session.take_output().is_none());
        assert!(session.sequence().is_empty());
    }

    #[test]
    fn session_reuse_after_take_output() {
        let model = ModelFamily::Tiny.build(3);
        let mut session = Session::new(
            &model,
            PolicySpec::h2o_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let a = session
            .generate(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        let b = session
            .generate(&prompt(20), &GenerationConfig::new(4))
            .unwrap();
        assert_eq!(a.generated, b.generated);
    }
}

//! A single decoder layer: pre-norm attention + feed-forward, both residual.

use crate::attention::{attend_single_query, AttentionContext, AttentionOutput};
use crate::config::ModelConfig;
use crate::weights::LayerWeights;
use keyformer_core::cache::LayerKvCache;
use keyformer_core::CoreError;
use keyformer_tensor::ops::{gelu_in_place, layer_norm};

const LN_EPS: f32 = 1e-5;

/// Output of one decoder layer for a single token.
#[derive(Debug, Clone)]
pub struct LayerOutput {
    /// Updated residual stream (`d_model`).
    pub hidden: Vec<f32>,
    /// Attention probabilities averaged over heads (per live cache slot), surfaced
    /// for the copy head when this is the final layer.
    pub mean_probs: Vec<f32>,
}

/// Runs one decoder layer for a single token.
///
/// The layer projects the (pre-norm) hidden state to q/k/v, appends k/v to the
/// layer's KV cache, attends over the cache (reporting logits to the policy), applies
/// the output projection and the feed-forward block, and returns the updated residual
/// stream.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if the hidden state width does not match the
/// model configuration.
pub fn decoder_layer_forward(
    config: &ModelConfig,
    weights: &LayerWeights,
    layer: usize,
    hidden: &[f32],
    position: usize,
    cache: &mut LayerKvCache,
    ctx: &mut AttentionContext<'_>,
) -> Result<LayerOutput, CoreError> {
    if hidden.len() != config.d_model {
        return Err(CoreError::InvalidConfig(format!(
            "hidden state width {} does not match d_model {}",
            hidden.len(),
            config.d_model
        )));
    }
    let head_dim = config.head_dim();

    // Pre-norm attention block.
    let normed = layer_norm(hidden, &weights.ln1_gain, &weights.ln1_bias, LN_EPS);
    let q = weights.wq.matvec(&normed).expect("wq shape");
    let k = weights.wk.matvec(&normed).expect("wk shape");
    let v = weights.wv.matvec(&normed).expect("wv shape");

    let keys_per_head: Vec<Vec<f32>> = (0..config.num_heads)
        .map(|h| k[h * head_dim..(h + 1) * head_dim].to_vec())
        .collect();
    let values_per_head: Vec<Vec<f32>> = (0..config.num_heads)
        .map(|h| v[h * head_dim..(h + 1) * head_dim].to_vec())
        .collect();
    cache.append(position, &keys_per_head, &values_per_head)?;

    let AttentionOutput {
        context,
        mean_probs,
    } = attend_single_query(config, layer, &q, position, cache, ctx);
    let attn_out = weights.wo.matvec(&context).expect("wo shape");
    let mut hidden_after_attn: Vec<f32> =
        hidden.iter().zip(&attn_out).map(|(a, b)| a + b).collect();

    // Pre-norm feed-forward block.
    let normed2 = layer_norm(
        &hidden_after_attn,
        &weights.ln2_gain,
        &weights.ln2_bias,
        LN_EPS,
    );
    let mut inner = weights.ffn_in.matvec(&normed2).expect("ffn_in shape");
    gelu_in_place(&mut inner);
    let ffn_out = weights.ffn_out.matvec(&inner).expect("ffn_out shape");
    for (h, f) in hidden_after_attn.iter_mut().zip(&ffn_out) {
        *h += f;
    }

    Ok(LayerOutput {
        hidden: hidden_after_attn,
        mean_probs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::ModelWeights;
    use keyformer_core::observation::Phase;
    use keyformer_core::policies::full::FullAttention;

    fn setup() -> (ModelConfig, ModelWeights) {
        let config = ModelConfig::tiny();
        let weights = ModelWeights::build(&config);
        (config, weights)
    }

    #[test]
    fn forward_appends_to_cache_and_updates_hidden() {
        let (config, weights) = setup();
        let mut cache = LayerKvCache::new(config.num_heads, config.head_dim());
        let mut policy = FullAttention::new();
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: None,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 4,
        };
        let hidden = vec![0.1; config.d_model];
        let out = decoder_layer_forward(
            &config,
            &weights.layers[0],
            0,
            &hidden,
            0,
            &mut cache,
            &mut ctx,
        )
        .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(out.hidden.len(), config.d_model);
        assert_eq!(out.mean_probs.len(), 1);
        assert!((out.mean_probs[0] - 1.0).abs() < 1e-5);
        assert!(out.hidden.iter().any(|&x| (x - 0.1).abs() > 1e-6));
    }

    #[test]
    fn repeated_tokens_accumulate_slots() {
        let (config, weights) = setup();
        let mut cache = LayerKvCache::new(config.num_heads, config.head_dim());
        let mut policy = FullAttention::new();
        for pos in 0..5 {
            let mut ctx = AttentionContext {
                policy: &mut policy,
                stats: None,
                phase: Phase::Prompt,
                step: pos,
                total_steps: 8,
            };
            let hidden = vec![0.05 * (pos as f32 + 1.0); config.d_model];
            decoder_layer_forward(
                &config,
                &weights.layers[0],
                0,
                &hidden,
                pos,
                &mut cache,
                &mut ctx,
            )
            .unwrap();
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.positions(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn rejects_wrong_hidden_width() {
        let (config, weights) = setup();
        let mut cache = LayerKvCache::new(config.num_heads, config.head_dim());
        let mut policy = FullAttention::new();
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: None,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 1,
        };
        let result = decoder_layer_forward(
            &config,
            &weights.layers[0],
            0,
            &[0.0; 3],
            0,
            &mut cache,
            &mut ctx,
        );
        assert!(result.is_err());
    }

    #[test]
    fn output_is_deterministic() {
        let (config, weights) = setup();
        let run = || {
            let mut cache = LayerKvCache::new(config.num_heads, config.head_dim());
            let mut policy = FullAttention::new();
            let mut ctx = AttentionContext {
                policy: &mut policy,
                stats: None,
                phase: Phase::Prompt,
                step: 0,
                total_steps: 1,
            };
            decoder_layer_forward(
                &config,
                &weights.layers[1],
                1,
                &vec![0.2; config.d_model],
                0,
                &mut cache,
                &mut ctx,
            )
            .unwrap()
            .hidden
        };
        assert_eq!(run(), run());
    }
}

//! The decoder-only transformer model.

use crate::attention::AttentionContext;
use crate::config::ModelConfig;
use crate::decoder::decoder_layer_forward;
use crate::positional::PositionalEncoding;
use crate::stats::AttentionStats;
use crate::weights::ModelWeights;
use keyformer_core::block::{SharedBlockPool, DEFAULT_BLOCK_SIZE};
use keyformer_core::cache::{KvCache, KvDtype};
use keyformer_core::observation::Phase;
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::CoreError;
use keyformer_tensor::ops::layer_norm;

const LN_EPS: f32 = 1e-5;

/// Mutable state threaded through a single-token forward pass.
pub struct ForwardContext<'a> {
    /// KV cache being filled/read.
    pub cache: &'a mut KvCache,
    /// Eviction policy observing attention.
    pub policy: &'a mut dyn KvCachePolicy,
    /// Optional statistics collector.
    pub stats: Option<&'a mut AttentionStats>,
    /// Full token history of the sequence so far, *including* the token currently
    /// being processed (used by the copy head to resolve successor tokens).
    pub sequence: &'a [u32],
    /// Phase of this step.
    pub phase: Phase,
    /// Decode step within the phase.
    pub step: usize,
    /// Planned generation length `T`.
    pub total_steps: usize,
}

/// A decoder-only transformer with constructed weights (see [`crate::weights`]).
#[derive(Debug, Clone)]
pub struct TransformerModel {
    config: ModelConfig,
    weights: ModelWeights,
}

impl TransformerModel {
    /// Builds a model from a configuration; weights are a deterministic function of
    /// `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: ModelConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let weights = ModelWeights::build(&config);
        Ok(TransformerModel { config, weights })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The model weights (read-only).
    pub fn weights(&self) -> &ModelWeights {
        &self.weights
    }

    /// Creates an empty KV cache with this model's shape, backed by a private
    /// unbounded block pool.
    pub fn empty_cache(&self) -> KvCache {
        KvCache::new(
            self.config.num_layers,
            self.config.num_heads,
            self.config.head_dim(),
        )
    }

    /// Creates an empty KV cache with this model's shape storing sealed blocks
    /// at `dtype`, backed by a private unbounded block pool.
    pub fn empty_cache_dtype(&self, dtype: KvDtype) -> KvCache {
        self.empty_cache_in_dtype(SharedBlockPool::unbounded(DEFAULT_BLOCK_SIZE), dtype)
    }

    /// Creates an empty KV cache with this model's shape whose layers allocate
    /// from `pool` — how the serving layer makes every session contend for one
    /// shared, bounded block pool.
    pub fn empty_cache_in(&self, pool: SharedBlockPool) -> KvCache {
        self.empty_cache_in_dtype(pool, KvDtype::F32)
    }

    /// Creates an empty KV cache allocating from `pool` with sealed blocks
    /// stored at `dtype` — the constructor behind the serving layer's
    /// per-request KV-dtype knob.
    pub fn empty_cache_in_dtype(&self, pool: SharedBlockPool, dtype: KvDtype) -> KvCache {
        KvCache::with_pool_dtype(
            self.config.num_layers,
            self.config.num_heads,
            self.config.head_dim(),
            pool,
            dtype,
        )
    }

    /// Embeds a token at a sequence position (adding the learned position embedding
    /// when the model uses [`PositionalEncoding::Learned`]).
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn embed(&self, token: u32, position: usize) -> Vec<f32> {
        let token = token as usize;
        assert!(
            token < self.config.vocab_size,
            "token {token} outside vocabulary of {}",
            self.config.vocab_size
        );
        let mut x = self.weights.embedding.row(token).to_vec();
        if self.config.positional == PositionalEncoding::Learned {
            let pos = position.min(self.weights.position_embedding.rows().saturating_sub(1));
            for (xi, pi) in x.iter_mut().zip(self.weights.position_embedding.row(pos)) {
                *xi += pi;
            }
        }
        x
    }

    /// [`TransformerModel::embed`] into a reused buffer — the same arithmetic
    /// without the per-token allocation.
    ///
    /// # Panics
    ///
    /// Panics if `token` is outside the vocabulary.
    pub fn embed_into(&self, token: u32, position: usize, out: &mut Vec<f32>) {
        let token = token as usize;
        assert!(
            token < self.config.vocab_size,
            "token {token} outside vocabulary of {}",
            self.config.vocab_size
        );
        out.clear();
        out.extend_from_slice(self.weights.embedding.row(token));
        if self.config.positional == PositionalEncoding::Learned {
            let pos = position.min(self.weights.position_embedding.rows().saturating_sub(1));
            for (xi, pi) in out.iter_mut().zip(self.weights.position_embedding.row(pos)) {
                *xi += pi;
            }
        }
    }

    /// Runs one token through the full decoder stack, appending its keys/values to
    /// the cache and returning next-token logits over the vocabulary.
    ///
    /// The returned logits combine the usual tied-embedding readout with the
    /// induction-style copy head: attention mass on a cached slot whose original
    /// position was `p` contributes evidence for the token that followed position `p`
    /// in the full sequence history (`ctx.sequence[p + 1]`). See DESIGN.md for why
    /// this substitution preserves the paper's accuracy-vs-cache-budget behaviour.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on shape mismatches.
    pub fn forward_token(
        &self,
        token: u32,
        position: usize,
        ctx: &mut ForwardContext<'_>,
    ) -> Result<Vec<f32>, CoreError> {
        let mut hidden = self.embed(token, position);
        let num_layers = self.config.num_layers;
        // The copy head is an explicit induction head: attention mass on a
        // *historical* slot (the current token's own slot is excluded) votes for the
        // token that followed that slot in the original sequence. Votes are gathered
        // from every layer using that layer's own retained slots, so layers that
        // evicted different tokens contribute different evidence.
        let mut copy_votes = vec![0.0f32; self.config.vocab_size];
        let mut copy_total = 0.0f32;
        for layer in 0..num_layers {
            let mut attn_ctx = AttentionContext {
                policy: &mut *ctx.policy,
                stats: ctx.stats.as_deref_mut(),
                phase: ctx.phase,
                step: ctx.step,
                total_steps: ctx.total_steps,
            };
            let out = decoder_layer_forward(
                &self.config,
                &self.weights.layers[layer],
                layer,
                &hidden,
                position,
                ctx.cache.layer_mut(layer),
                &mut attn_ctx,
            )?;
            hidden = out.hidden;
            if self.config.copy_strength > 0.0 {
                let positions = ctx.cache.layer(layer).positions();
                for (&slot_pos, &prob) in positions.iter().zip(&out.mean_probs) {
                    if slot_pos == position {
                        continue;
                    }
                    if let Some(&successor) = ctx.sequence.get(slot_pos + 1) {
                        if successor < self.config.copy_ignore_below {
                            continue;
                        }
                        let idx = successor as usize;
                        if idx < copy_votes.len() {
                            copy_votes[idx] += prob;
                            copy_total += prob;
                        }
                    }
                }
            }
        }

        let final_hidden = layer_norm(
            &hidden,
            &self.weights.final_ln_gain,
            &self.weights.final_ln_bias,
            LN_EPS,
        );
        let mut logits = self
            .weights
            .embedding
            .matvec(&final_hidden)
            .expect("embedding readout shape");

        if self.config.copy_strength > 0.0 && copy_total > 1e-6 {
            for (logit, vote) in logits.iter_mut().zip(&copy_votes) {
                if *vote > 0.0 {
                    *logit += self.config.copy_strength * vote / copy_total;
                }
            }
        }
        Ok(logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_core::policies::full::FullAttention;

    fn forward_sequence(model: &TransformerModel, tokens: &[u32]) -> Vec<f32> {
        let mut cache = model.empty_cache();
        let mut policy = FullAttention::new();
        let mut logits = Vec::new();
        for (pos, &tok) in tokens.iter().enumerate() {
            let mut ctx = ForwardContext {
                cache: &mut cache,
                policy: &mut policy,
                stats: None,
                sequence: &tokens[..=pos],
                phase: Phase::Prompt,
                step: pos,
                total_steps: 8,
            };
            logits = model.forward_token(tok, pos, &mut ctx).unwrap();
        }
        logits
    }

    #[test]
    fn construction_validates_config() {
        assert!(TransformerModel::new(ModelConfig::tiny()).is_ok());
        let mut bad = ModelConfig::tiny();
        bad.d_model = 31;
        assert!(TransformerModel::new(bad).is_err());
    }

    #[test]
    fn forward_produces_vocab_sized_logits_and_fills_cache() {
        let model = TransformerModel::new(ModelConfig::tiny()).unwrap();
        let tokens = [3u32, 17, 42, 9];
        let logits = forward_sequence(&model, &tokens);
        assert_eq!(logits.len(), model.config().vocab_size);
        assert!(logits.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn copy_head_promotes_successor_of_repeated_token() {
        // Classic induction pattern: ... A B ... A -> the model should prefer B.
        let model = TransformerModel::new(ModelConfig::tiny()).unwrap();
        let a = 11u32;
        let b = 87u32;
        let tokens = [5u32, a, b, 23, 61, 40, 19, a];
        let logits = forward_sequence(&model, &tokens);
        let b_rank = logits.iter().filter(|&&x| x > logits[b as usize]).count();
        assert!(
            b_rank < 10,
            "successor token should rank near the top, rank {b_rank}"
        );
    }

    #[test]
    fn copy_head_can_be_disabled() {
        let mut config = ModelConfig::tiny();
        config.copy_strength = 0.0;
        let with_copy = TransformerModel::new(ModelConfig::tiny()).unwrap();
        let without_copy = TransformerModel::new(config).unwrap();
        let tokens = [5u32, 11, 87, 23, 11];
        let l1 = forward_sequence(&with_copy, &tokens);
        let l2 = forward_sequence(&without_copy, &tokens);
        assert_ne!(l1, l2);
    }

    #[test]
    fn embed_respects_positional_family() {
        let rope = TransformerModel::new(ModelConfig::tiny()).unwrap();
        let learned =
            TransformerModel::new(ModelConfig::tiny().with_positional(PositionalEncoding::Learned))
                .unwrap();
        // RoPE models embed tokens position-independently.
        assert_eq!(rope.embed(3, 0), rope.embed(3, 10));
        // Learned-position models do not.
        assert_ne!(learned.embed(3, 0), learned.embed(3, 10));
    }

    #[test]
    fn embed_into_matches_embed() {
        for config in [
            ModelConfig::tiny(),
            ModelConfig::tiny().with_positional(PositionalEncoding::Learned),
        ] {
            let model = TransformerModel::new(config).unwrap();
            let mut buf = Vec::new();
            for (token, position) in [(3u32, 0usize), (17, 5), (90, 600)] {
                model.embed_into(token, position, &mut buf);
                assert_eq!(buf, model.embed(token, position));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside vocabulary")]
    fn embedding_out_of_vocab_panics() {
        let model = TransformerModel::new(ModelConfig::tiny()).unwrap();
        model.embed(10_000, 0);
    }

    #[test]
    fn empty_cache_matches_model_shape() {
        let model = TransformerModel::new(ModelConfig::tiny()).unwrap();
        let cache = model.empty_cache();
        assert_eq!(cache.num_layers(), model.config().num_layers);
        assert_eq!(cache.layer(0).num_heads(), model.config().num_heads);
        assert_eq!(cache.layer(0).head_dim(), model.config().head_dim());
    }
}

//! Allocation-free forward path: a reusable per-session workspace.
//!
//! The legacy forward path ([`crate::model::TransformerModel::forward_token`])
//! allocates on every token: a fresh hidden vector, per-head query/key copies,
//! per-slot logit and probability vectors, a vocabulary-sized copy-vote table
//! and the output logits themselves. None of those sizes change between steps,
//! so a [`ForwardWorkspace`] owns them all and the `*_ws` functions in this
//! module re-run the exact same arithmetic into the reused buffers. In steady
//! state (decoding inside an already-allocated KV block) the workspace path
//! performs **zero heap allocations per token** — see `tests/zero_alloc_decode.rs`.
//!
//! The workspace also caches work the legacy path recomputes every step:
//!
//! * a per-layer [`RotatedKeyCache`] memoizes the RoPE rotation of every cached
//!   key, keyed on KV-block `(id, generation)` so appends top up incrementally
//!   while compaction, CoW forks and quantize-on-seal rebuild exactly the
//!   affected blocks;
//! * per-head ALiBi slopes are precomputed once per model configuration.
//!
//! Every buffer reuse preserves the exact f32 operation order of the legacy
//! path, so the two paths are *byte-identical*: the same token streams, the
//! same logit bits (`tests/hotpath_identity.rs` proves this across the policy
//! zoo, both KV dtypes and prefix sharing).

use crate::attention::AttentionContext;
use crate::config::{ModelConfig, PositionMode};
use crate::model::{ForwardContext, TransformerModel};
use crate::positional::{
    alibi_bias, alibi_slope, apply_rope_scaled, PositionalEncoding, ROPE_BASE,
};
use crate::stats::{AttentionRecord, AttentionStats};
use crate::weights::LayerWeights;
use keyformer_core::cache::{KvCache, KvDtype, LayerKvCache};
use keyformer_core::observation::{AttentionObservation, Phase};
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::{CoreError, RotatedKeyCache};
use keyformer_tensor::ops::{gelu_in_place, layer_norm_into, layer_norm_slice, softmax_into};
use keyformer_tensor::vector::dot;

const LN_EPS: f32 = 1e-5;

/// Which forward implementation a [`crate::session::Session`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForwardPath {
    /// The original allocating path ([`TransformerModel::forward_token`]).
    /// Kept callable so the `hotpath` experiment can measure both paths in
    /// one process and identity tests can compare them bit-for-bit.
    Legacy,
    /// The workspace path: reused buffers, cached key rotations, fused
    /// block-row iteration. Byte-identical output to `Legacy`.
    #[default]
    Workspace,
}

/// Scratch owned by one decoder-layer forward (all widths fixed by the model
/// configuration).
#[derive(Debug, Clone)]
pub(crate) struct LayerScratch {
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    attn_out: Vec<f32>,
    normed2: Vec<f32>,
    inner: Vec<f32>,
    ffn_out: Vec<f32>,
}

/// Scratch owned by one attention call. The per-slot buffers (`logits`,
/// `probs`, `mean_probs`) grow with the live cache; their capacity is reserved
/// up front per request so steady-state growth never reallocates.
#[derive(Debug, Clone)]
pub(crate) struct AttnScratch {
    q_head: Vec<f32>,
    /// Head-width scratch for dequantizing `u8` rows and for the fused
    /// `vecmat_into` accumulator.
    dequant: Vec<f32>,
    context: Vec<f32>,
    logits: Vec<f32>,
    probs: Vec<f32>,
    mean_probs: Vec<f32>,
}

/// Scratch owned by the chunk-batched prefill forward
/// ([`forward_chunk_ws`]): flat `[token][feature]` row blocks sized to the
/// chunk being forwarded, plus the buffered attention logits the session
/// replays token-major afterwards. All buffers keep their capacity across
/// chunks.
#[derive(Debug, Clone)]
pub(crate) struct ChunkScratch {
    /// Residual stream rows, `chunk x d_model`.
    hidden: Vec<f32>,
    /// LayerNorm output rows (reused for both pre-norms), `chunk x d_model`.
    normed: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    /// Per-token attention context rows, `chunk x d_model`.
    context: Vec<f32>,
    /// Projection output rows (`wo` and `ffn_out`), `chunk x d_model`.
    proj: Vec<f32>,
    /// FFN inner activations, `chunk x d_ff`.
    inner: Vec<f32>,
    /// Weight-panel packing scratch of the batched GEMM.
    pack: Vec<f32>,
    /// Every attention-logit row of the chunk, concatenated in compute
    /// (layer-major) order.
    obs_data: Vec<f32>,
    /// `(offset, len)` into `obs_data`, indexed `(token * L + layer) * H +
    /// head`, so the replay can walk the rows in sequential (token-major)
    /// order.
    obs_index: Vec<(usize, usize)>,
}

impl ChunkScratch {
    fn new() -> Self {
        ChunkScratch {
            hidden: Vec::new(),
            normed: Vec::new(),
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            context: Vec::new(),
            proj: Vec::new(),
            inner: Vec::new(),
            pack: Vec::new(),
            obs_data: Vec::new(),
            obs_index: Vec::new(),
        }
    }
}

/// All reusable state of the allocation-free forward path, owned by a
/// [`crate::session::Session`].
#[derive(Debug, Clone)]
pub struct ForwardWorkspace {
    hidden: Vec<f32>,
    final_hidden: Vec<f32>,
    copy_votes: Vec<f32>,
    /// `alibi_slope(head, num_heads)` for every head, computed once.
    alibi_slopes: Vec<f32>,
    pub(crate) layer: LayerScratch,
    pub(crate) attn: AttnScratch,
    /// One rotated-key cache per decoder layer.
    rot: Vec<RotatedKeyCache>,
    /// Chunk-batched prefill scratch.
    pub(crate) chunk: ChunkScratch,
}

impl ForwardWorkspace {
    /// Builds a workspace for `config` over KV blocks of `block_size` slots.
    pub fn new(config: &ModelConfig, block_size: usize) -> Self {
        let d_model = config.d_model;
        let head_dim = config.head_dim();
        ForwardWorkspace {
            hidden: Vec::with_capacity(d_model),
            final_hidden: Vec::with_capacity(d_model),
            copy_votes: vec![0.0; config.vocab_size],
            alibi_slopes: (0..config.num_heads)
                .map(|h| alibi_slope(h, config.num_heads))
                .collect(),
            layer: LayerScratch {
                normed: Vec::with_capacity(d_model),
                q: Vec::with_capacity(d_model),
                k: Vec::with_capacity(d_model),
                v: Vec::with_capacity(d_model),
                attn_out: Vec::with_capacity(d_model),
                normed2: Vec::with_capacity(d_model),
                inner: Vec::with_capacity(config.d_ff),
                ffn_out: Vec::with_capacity(d_model),
            },
            attn: AttnScratch {
                q_head: vec![0.0; head_dim],
                dequant: vec![0.0; head_dim],
                context: vec![0.0; d_model],
                logits: Vec::new(),
                probs: Vec::new(),
                mean_probs: Vec::new(),
            },
            rot: (0..config.num_layers)
                .map(|_| RotatedKeyCache::new(config.num_heads, head_dim, block_size))
                .collect(),
            chunk: ChunkScratch::new(),
        }
    }

    /// Reserves the per-slot attention buffers for a request of up to `slots`
    /// live cache slots, so decode-time growth never reallocates.
    pub fn reserve_slots(&mut self, slots: usize) {
        self.attn.logits.reserve(slots);
        self.attn.probs.reserve(slots);
        self.attn.mean_probs.reserve(slots);
    }

    /// Drops every cached key rotation (the scratch buffers keep their
    /// capacity). Call when the session rebinds to a new sequence.
    pub fn clear(&mut self) {
        for rot in &mut self.rot {
            rot.clear();
        }
    }

    /// Replays the attention observations [`forward_chunk_ws`] buffered for
    /// one chunk token against the policy (and, when enabled, the statistics
    /// collector), in exactly the per-(layer, head) order the sequential
    /// forward would have produced them. The buffered logit rows are the
    /// sequential path's bits, so Gumbel-sampling policies draw the identical
    /// RNG stream and the recomputed softmax rows match the sequential
    /// statistics records bit-for-bit.
    pub(crate) fn replay_chunk_token(
        &mut self,
        chunk_index: usize,
        step: usize,
        total_steps: usize,
        cache: &KvCache,
        policy: &mut dyn KvCachePolicy,
        mut stats: Option<&mut AttentionStats>,
    ) {
        let num_layers = self.rot.len();
        let num_heads = self.alibi_slopes.len();
        for layer in 0..num_layers {
            for head in 0..num_heads {
                let (offset, len) =
                    self.chunk.obs_index[(chunk_index * num_layers + layer) * num_heads + head];
                let logits = &self.chunk.obs_data[offset..offset + len];
                policy.observe(&AttentionObservation {
                    layer,
                    head,
                    phase: Phase::Prompt,
                    step,
                    total_steps,
                    logits,
                });
                if let Some(stats) = stats.as_deref_mut() {
                    // At this token's turn the layer held exactly `len` slots;
                    // the prompt phase only appends, so the prefix of today's
                    // position table is that moment's table.
                    softmax_into(logits, &mut self.attn.probs);
                    stats.record(AttentionRecord {
                        layer,
                        head,
                        step,
                        phase: Phase::Prompt,
                        probs: self.attn.probs.clone(),
                        positions: cache.layer(layer).positions()[..len].to_vec(),
                    });
                }
            }
        }
    }
}

/// Workspace twin of [`TransformerModel::forward_token`]: identical arithmetic
/// into reused buffers, with next-token logits written into `out_logits`.
pub(crate) fn forward_token_ws(
    model: &TransformerModel,
    token: u32,
    position: usize,
    ctx: &mut ForwardContext<'_>,
    ws: &mut ForwardWorkspace,
    out_logits: &mut Vec<f32>,
) -> Result<(), CoreError> {
    let config = model.config();
    let weights = model.weights();
    let ForwardWorkspace {
        hidden,
        final_hidden,
        copy_votes,
        alibi_slopes,
        layer: layer_scratch,
        attn,
        rot,
        ..
    } = ws;
    model.embed_into(token, position, hidden);
    copy_votes.fill(0.0);
    let mut copy_total = 0.0f32;
    for (layer, layer_rot) in rot.iter_mut().enumerate() {
        let mut attn_ctx = AttentionContext {
            policy: &mut *ctx.policy,
            stats: ctx.stats.as_deref_mut(),
            phase: ctx.phase,
            step: ctx.step,
            total_steps: ctx.total_steps,
        };
        decoder_layer_forward_ws(
            config,
            &weights.layers[layer],
            layer,
            position,
            ctx.cache.layer_mut(layer),
            &mut attn_ctx,
            layer_rot,
            layer_scratch,
            attn,
            hidden,
            alibi_slopes,
        )?;
        if config.copy_strength > 0.0 {
            let positions = ctx.cache.layer(layer).positions();
            for (&slot_pos, &prob) in positions.iter().zip(&attn.mean_probs) {
                if slot_pos == position {
                    continue;
                }
                if let Some(&successor) = ctx.sequence.get(slot_pos + 1) {
                    if successor < config.copy_ignore_below {
                        continue;
                    }
                    let idx = successor as usize;
                    if idx < copy_votes.len() {
                        copy_votes[idx] += prob;
                        copy_total += prob;
                    }
                }
            }
        }
    }

    layer_norm_into(
        hidden,
        &weights.final_ln_gain,
        &weights.final_ln_bias,
        LN_EPS,
        final_hidden,
    );
    weights
        .embedding
        .matvec_into(final_hidden, out_logits)
        .expect("embedding readout shape");

    if config.copy_strength > 0.0 && copy_total > 1e-6 {
        for (logit, vote) in out_logits.iter_mut().zip(copy_votes.iter()) {
            if *vote > 0.0 {
                *logit += config.copy_strength * vote / copy_total;
            }
        }
    }
    Ok(())
}

/// Chunk-batched prompt forward: runs `tokens` through each decoder layer
/// *once*, with the three QKV projections, the output projection and both FFN
/// matmuls batched into per-chunk GEMMs ([`keyformer_tensor::Matrix::matvec_batch_into`]),
/// and appends each layer's fresh keys/values in bulk
/// ([`LayerKvCache::append_batch_from_slices`]).
///
/// Byte-identity with the token-at-a-time path rests on four invariants:
///
/// * **GEMM bits** — every batched output element is the same single
///   ascending-`k` accumulation chain the per-token `matvec_into` runs, so the
///   projections produce identical bits (the micro-kernel only reorders
///   *independent* chains across registers).
/// * **Causality** — each chunk query `t` attends through
///   [`keyformer_core::cache::KvSlice::truncated`] views of exactly the
///   `pre + t + 1` slots the sequential path had live at that token, and the
///   layer-major schedule only ever feeds a layer residual rows produced by
///   the previous layer — the classic prefill factorization.
/// * **Seal-delimited runs** — on `u8` layers an append that fills a block
///   requantizes it, changing what later reads dequantize to. Appends are
///   therefore batched in runs that break exactly at sealing appends (the
///   sealing append *starts* its run), so every query reads each block in the
///   same sealed/unsealed state the sequential interleaving exposed. `f32`
///   layers are seal-invariant: one run covers the chunk.
/// * **Deferred observation replay** — the per-(token, layer, head) attention
///   logit rows are buffered, and the caller replays them token-major via
///   [`ForwardWorkspace::replay_chunk_token`], preserving the sequential
///   policy-RNG draw order and statistics stream.
///
/// Next-token logits (final LN, readout matmul and copy-vote bonus) are only
/// computed — for the last chunk token — when `compute_logits` is set, i.e.
/// when the chunk reaches the end of the prompt; mid-prompt logits are
/// unobservable and the sequential path discards them.
///
/// Returns the chunk's peak cache byte size as the sequential per-token
/// watermark would have seen it: within a run each layer's byte size grows
/// monotonically and a sealing append only shrinks it, so sampling each layer
/// at its run ends captures every per-token high-water candidate — including
/// the `f32`-staged tail rows a quantize-on-seal collapses, which a simple
/// end-of-chunk snapshot would miss.
#[allow(clippy::too_many_arguments)]
pub(crate) fn forward_chunk_ws(
    model: &TransformerModel,
    tokens: &[u32],
    start_position: usize,
    cache: &mut KvCache,
    sequence: &[u32],
    ws: &mut ForwardWorkspace,
    compute_logits: bool,
    out_logits: &mut Vec<f32>,
) -> Result<usize, CoreError> {
    let n = tokens.len();
    if n == 0 {
        return Ok(0);
    }
    let config = model.config();
    let weights = model.weights();
    let d_model = config.d_model;
    let num_layers = config.num_layers;
    let num_heads = config.num_heads;

    // Embed every chunk token into its residual-stream row.
    {
        let staging = &mut ws.hidden;
        let rows = &mut ws.chunk.hidden;
        rows.clear();
        rows.reserve(n * d_model);
        for (i, &tok) in tokens.iter().enumerate() {
            model.embed_into(tok, start_position + i, staging);
            rows.extend_from_slice(staging);
        }
    }

    let ForwardWorkspace {
        final_hidden,
        copy_votes,
        alibi_slopes,
        attn,
        rot,
        chunk,
        ..
    } = ws;
    let ChunkScratch {
        hidden,
        normed,
        q,
        k,
        v,
        context,
        proj,
        inner,
        pack,
        obs_data,
        obs_index,
    } = chunk;
    obs_data.clear();
    obs_index.clear();
    obs_index.resize(n * num_layers * num_heads, (0, 0));
    let gather_copy = compute_logits && config.copy_strength > 0.0;
    if gather_copy {
        copy_votes.fill(0.0);
    }
    let mut copy_total = 0.0f32;
    let mut peak_bytes = 0usize;

    for (layer, layer_rot) in rot.iter_mut().enumerate() {
        let lw = &weights.layers[layer];
        let layer_cache = cache.layer_mut(layer);
        let pre = layer_cache.len();

        // Pre-norm attention: LN every row, then one GEMM per projection.
        normed.clear();
        normed.resize(n * d_model, 0.0);
        for (row, out) in hidden
            .chunks_exact(d_model)
            .zip(normed.chunks_exact_mut(d_model))
        {
            layer_norm_slice(row, &lw.ln1_gain, &lw.ln1_bias, LN_EPS, out);
        }
        lw.wq
            .matvec_batch_into(normed, n, q, pack)
            .expect("wq shape");
        lw.wk
            .matvec_batch_into(normed, n, k, pack)
            .expect("wk shape");
        lw.wv
            .matvec_batch_into(normed, n, v, pack)
            .expect("wv shape");

        context.clear();
        context.resize(n * d_model, 0.0);

        let bs = layer_cache.block_size().max(1);
        let seals = layer_cache.dtype() != KvDtype::F32;
        let mut layer_peak = 0usize;
        let mut run_start = 0usize;
        while run_start < n {
            // A run ends where the *next* sealing append begins: queries
            // before that append must read the block's staged rows, queries
            // from it on read the sealed (requantized) rows.
            let mut run_end = n;
            if seals {
                let mut i = run_start + 1;
                while i < n {
                    if (pre + i + 1) % bs == 0 {
                        run_end = i;
                        break;
                    }
                    i += 1;
                }
            }
            layer_cache.append_batch_from_slices(
                start_position + run_start,
                run_end - run_start,
                &k[run_start * d_model..run_end * d_model],
                &v[run_start * d_model..run_end * d_model],
            )?;
            layer_peak = layer_peak.max(layer_cache.byte_size());
            if config.positional == PositionalEncoding::Rope {
                let rope_scale = config.rope_scale;
                let positions = layer_cache.positions();
                match config.position_mode {
                    PositionMode::Original => layer_rot.sync(layer_cache, |row, slot| {
                        apply_rope_scaled(row, positions[slot] as f32 * rope_scale, ROPE_BASE);
                    }),
                    PositionMode::Remapped => layer_rot.sync(layer_cache, |row, slot| {
                        apply_rope_scaled(row, slot as f32 * rope_scale, ROPE_BASE);
                    }),
                }
            }
            for t in run_start..run_end {
                let obs_base = (t * num_layers + layer) * num_heads;
                attend_chunk_query_ws(
                    config,
                    &q[t * d_model..(t + 1) * d_model],
                    start_position + t,
                    layer_cache,
                    pre + t + 1,
                    layer_rot,
                    attn,
                    alibi_slopes,
                    &mut context[t * d_model..(t + 1) * d_model],
                    obs_data,
                    &mut obs_index[obs_base..obs_base + num_heads],
                    gather_copy && t == n - 1,
                );
            }
            run_start = run_end;
        }
        peak_bytes += layer_peak;

        // Attention output projection, then the pre-norm feed-forward block.
        lw.wo
            .matvec_batch_into(context, n, proj, pack)
            .expect("wo shape");
        for (h, a) in hidden.iter_mut().zip(proj.iter()) {
            *h += a;
        }
        for (row, out) in hidden
            .chunks_exact(d_model)
            .zip(normed.chunks_exact_mut(d_model))
        {
            layer_norm_slice(row, &lw.ln2_gain, &lw.ln2_bias, LN_EPS, out);
        }
        lw.ffn_in
            .matvec_batch_into(normed, n, inner, pack)
            .expect("ffn_in shape");
        gelu_in_place(inner);
        lw.ffn_out
            .matvec_batch_into(inner, n, proj, pack)
            .expect("ffn_out shape");
        for (h, f) in hidden.iter_mut().zip(proj.iter()) {
            *h += f;
        }

        if gather_copy {
            let position = start_position + n - 1;
            let positions = layer_cache.positions();
            for (&slot_pos, &prob) in positions.iter().zip(attn.mean_probs.iter()) {
                if slot_pos == position {
                    continue;
                }
                if let Some(&successor) = sequence.get(slot_pos + 1) {
                    if successor < config.copy_ignore_below {
                        continue;
                    }
                    let idx = successor as usize;
                    if idx < copy_votes.len() {
                        copy_votes[idx] += prob;
                        copy_total += prob;
                    }
                }
            }
        }
    }

    if compute_logits {
        layer_norm_into(
            &hidden[(n - 1) * d_model..n * d_model],
            &weights.final_ln_gain,
            &weights.final_ln_bias,
            LN_EPS,
            final_hidden,
        );
        weights
            .embedding
            .matvec_into(final_hidden, out_logits)
            .expect("embedding readout shape");
        if config.copy_strength > 0.0 && copy_total > 1e-6 {
            for (logit, vote) in out_logits.iter_mut().zip(copy_votes.iter()) {
                if *vote > 0.0 {
                    *logit += config.copy_strength * vote / copy_total;
                }
            }
        }
    }
    Ok(peak_bytes)
}

/// One chunk query of [`forward_chunk_ws`]: the same per-head arithmetic as
/// [`attend_single_query_ws`], against a `live`-slot
/// [`keyformer_core::cache::KvSlice::truncated`] causal view of the layer, with
/// the policy observation *buffered* (into `obs_data` / `obs_slots`) instead of
/// delivered — the session replays it token-major afterwards. The rotated-key
/// cache must already cover `live` slots (one [`RotatedKeyCache::sync`] per
/// run).
#[allow(clippy::too_many_arguments)]
fn attend_chunk_query_ws(
    config: &ModelConfig,
    query: &[f32],
    query_position: usize,
    cache: &LayerKvCache,
    live: usize,
    rot: &RotatedKeyCache,
    attn: &mut AttnScratch,
    alibi_slopes: &[f32],
    context_out: &mut [f32],
    obs_data: &mut Vec<f32>,
    obs_slots: &mut [(usize, usize)],
    want_mean_probs: bool,
) {
    let num_heads = config.num_heads;
    let head_dim = config.head_dim();
    debug_assert!(live >= 1 && live <= cache.len(), "causal view out of range");
    let scale = 1.0 / (head_dim as f32).sqrt();
    let positions = cache.positions();
    let effective_query_pos = match config.position_mode {
        PositionMode::Original => query_position,
        // Under remapping the query sits immediately after the compacted cache.
        PositionMode::Remapped => live - 1,
    };

    let AttnScratch {
        q_head,
        dequant,
        logits,
        probs,
        mean_probs,
        ..
    } = attn;
    if want_mean_probs {
        mean_probs.clear();
        mean_probs.resize(live, 0.0);
    }

    for head in 0..num_heads {
        q_head.copy_from_slice(&query[head * head_dim..(head + 1) * head_dim]);
        if config.positional == PositionalEncoding::Rope {
            apply_rope_scaled(
                q_head,
                effective_query_pos as f32 * config.rope_scale,
                ROPE_BASE,
            );
        }
        let slope = alibi_slopes[head];
        logits.clear();
        match config.positional {
            PositionalEncoding::Rope => {
                for slot in 0..live {
                    logits.push(dot(q_head, rot.row(head, slot)) * scale);
                }
            }
            PositionalEncoding::Alibi => {
                let keys = cache.keys(head).truncated(live);
                match config.position_mode {
                    PositionMode::Original => keys.for_each_row(dequant, |slot, row| {
                        logits.push(
                            dot(q_head, row) * scale
                                + alibi_bias(slope, effective_query_pos, positions[slot]),
                        );
                    }),
                    PositionMode::Remapped => keys.for_each_row(dequant, |slot, row| {
                        logits.push(
                            dot(q_head, row) * scale + alibi_bias(slope, effective_query_pos, slot),
                        );
                    }),
                }
            }
            PositionalEncoding::Learned => {
                let keys = cache.keys(head).truncated(live);
                keys.for_each_row(dequant, |_slot, row| {
                    logits.push(dot(q_head, row) * scale);
                });
            }
        }

        // Buffer the observation the sequential path would have delivered
        // here; the session replays it in token-major order.
        obs_slots[head] = (obs_data.len(), logits.len());
        obs_data.extend_from_slice(logits);

        softmax_into(logits, probs);
        let values = cache.values(head).truncated(live);
        values
            .vecmat_into(
                probs,
                &mut context_out[head * head_dim..(head + 1) * head_dim],
                dequant,
            )
            .expect("value matrix shape mismatch");
        if want_mean_probs {
            for (m, &p) in mean_probs.iter_mut().zip(probs.iter()) {
                *m += p / num_heads as f32;
            }
        }
    }
}

/// Workspace twin of [`crate::decoder::decoder_layer_forward`]: updates the
/// residual stream in place (the legacy path's `hidden + attn_out` collect and
/// `+=` loop produce the same bits) and leaves the head-averaged attention
/// probabilities in `attn.mean_probs`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn decoder_layer_forward_ws(
    config: &ModelConfig,
    weights: &LayerWeights,
    layer: usize,
    position: usize,
    cache: &mut LayerKvCache,
    ctx: &mut AttentionContext<'_>,
    rot: &mut RotatedKeyCache,
    scratch: &mut LayerScratch,
    attn: &mut AttnScratch,
    hidden: &mut [f32],
    alibi_slopes: &[f32],
) -> Result<(), CoreError> {
    if hidden.len() != config.d_model {
        return Err(CoreError::InvalidConfig(format!(
            "hidden state width {} does not match d_model {}",
            hidden.len(),
            config.d_model
        )));
    }

    // Pre-norm attention block.
    layer_norm_into(
        hidden,
        &weights.ln1_gain,
        &weights.ln1_bias,
        LN_EPS,
        &mut scratch.normed,
    );
    weights
        .wq
        .matvec_into(&scratch.normed, &mut scratch.q)
        .expect("wq shape");
    weights
        .wk
        .matvec_into(&scratch.normed, &mut scratch.k)
        .expect("wk shape");
    weights
        .wv
        .matvec_into(&scratch.normed, &mut scratch.v)
        .expect("wv shape");

    cache.append_from_slices(position, &scratch.k, &scratch.v)?;

    attend_single_query_ws(
        config,
        layer,
        &scratch.q,
        position,
        cache,
        ctx,
        rot,
        attn,
        alibi_slopes,
    );
    weights
        .wo
        .matvec_into(&attn.context, &mut scratch.attn_out)
        .expect("wo shape");
    for (h, a) in hidden.iter_mut().zip(&scratch.attn_out) {
        *h += a;
    }

    // Pre-norm feed-forward block.
    layer_norm_into(
        hidden,
        &weights.ln2_gain,
        &weights.ln2_bias,
        LN_EPS,
        &mut scratch.normed2,
    );
    weights
        .ffn_in
        .matvec_into(&scratch.normed2, &mut scratch.inner)
        .expect("ffn_in shape");
    gelu_in_place(&mut scratch.inner);
    weights
        .ffn_out
        .matvec_into(&scratch.inner, &mut scratch.ffn_out)
        .expect("ffn_out shape");
    for (h, f) in hidden.iter_mut().zip(&scratch.ffn_out) {
        *h += f;
    }
    Ok(())
}

/// Workspace twin of [`crate::attention::attend_single_query`].
///
/// Differences from the legacy path — none of which change a single bit:
///
/// * RoPE key rotations come from the per-layer [`RotatedKeyCache`] instead of
///   being recomputed per step (the cached rows were produced by the same
///   copy-then-rotate arithmetic).
/// * Non-RoPE models read key rows through the allocation-free
///   [`keyformer_core::cache::KvSlice::for_each_row`] visitor instead of
///   per-row `Cow::to_vec`.
/// * Effective key positions are read straight off the cache's position table
///   (or the slot index under [`PositionMode::Remapped`]) instead of being
///   materialized into a per-step `Vec<usize>`.
/// * The context lands in `attn.context` via the fused
///   [`keyformer_core::cache::KvSlice::vecmat_into`], which dequantizes `u8`
///   blocks with the same per-block factoring as `vecmat`.
///
/// # Panics
///
/// Panics if the cache is empty or its head shape disagrees with `config`,
/// like the legacy path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn attend_single_query_ws(
    config: &ModelConfig,
    layer: usize,
    query: &[f32],
    query_position: usize,
    cache: &LayerKvCache,
    ctx: &mut AttentionContext<'_>,
    rot: &mut RotatedKeyCache,
    attn: &mut AttnScratch,
    alibi_slopes: &[f32],
) {
    let num_heads = config.num_heads;
    let head_dim = config.head_dim();
    assert!(
        !cache.is_empty(),
        "attention requires at least one cached slot"
    );
    assert_eq!(cache.num_heads(), num_heads, "cache head count mismatch");
    assert_eq!(cache.head_dim(), head_dim, "cache head dim mismatch");

    let live = cache.len();
    let scale = 1.0 / (head_dim as f32).sqrt();
    let positions = cache.positions();
    let effective_query_pos = match config.position_mode {
        PositionMode::Original => query_position,
        // Under remapping the query sits immediately after the compacted cache.
        PositionMode::Remapped => live.saturating_sub(1),
    };

    // Keys are rotated once per (block, generation): appends top up, eviction
    // and CoW rewrites rebuild exactly the affected blocks. The rotation only
    // depends on the slot, which is what makes it cacheable across steps.
    if config.positional == PositionalEncoding::Rope {
        let rope_scale = config.rope_scale;
        match config.position_mode {
            PositionMode::Original => rot.sync(cache, |row, slot| {
                apply_rope_scaled(row, positions[slot] as f32 * rope_scale, ROPE_BASE);
            }),
            PositionMode::Remapped => rot.sync(cache, |row, slot| {
                apply_rope_scaled(row, slot as f32 * rope_scale, ROPE_BASE);
            }),
        }
    }

    let AttnScratch {
        q_head,
        dequant,
        context,
        logits,
        probs,
        mean_probs,
    } = attn;
    mean_probs.clear();
    mean_probs.resize(live, 0.0);

    for head in 0..num_heads {
        q_head.copy_from_slice(&query[head * head_dim..(head + 1) * head_dim]);
        if config.positional == PositionalEncoding::Rope {
            apply_rope_scaled(
                q_head,
                effective_query_pos as f32 * config.rope_scale,
                ROPE_BASE,
            );
        }
        let slope = alibi_slopes[head];
        logits.clear();
        match config.positional {
            PositionalEncoding::Rope => {
                for slot in 0..live {
                    logits.push(dot(q_head, rot.row(head, slot)) * scale);
                }
            }
            PositionalEncoding::Alibi => {
                let keys = cache.keys(head);
                match config.position_mode {
                    PositionMode::Original => keys.for_each_row(dequant, |slot, row| {
                        logits.push(
                            dot(q_head, row) * scale
                                + alibi_bias(slope, effective_query_pos, positions[slot]),
                        );
                    }),
                    PositionMode::Remapped => keys.for_each_row(dequant, |slot, row| {
                        logits.push(
                            dot(q_head, row) * scale + alibi_bias(slope, effective_query_pos, slot),
                        );
                    }),
                }
            }
            PositionalEncoding::Learned => {
                let keys = cache.keys(head);
                keys.for_each_row(dequant, |_slot, row| {
                    logits.push(dot(q_head, row) * scale);
                });
            }
        }

        ctx.policy.observe(&AttentionObservation {
            layer,
            head,
            phase: ctx.phase,
            step: ctx.step,
            total_steps: ctx.total_steps,
            logits,
        });

        softmax_into(logits, probs);
        if let Some(stats) = ctx.stats.as_deref_mut() {
            stats.record(AttentionRecord {
                layer,
                head,
                step: ctx.step,
                phase: ctx.phase,
                probs: probs.clone(),
                positions: cache.positions().to_vec(),
            });
        }

        let values = cache.values(head);
        values
            .vecmat_into(
                probs,
                &mut context[head * head_dim..(head + 1) * head_dim],
                dequant,
            )
            .expect("value matrix shape mismatch");
        for (m, &p) in mean_probs.iter_mut().zip(probs.iter()) {
            *m += p / num_heads as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::attend_single_query;
    use crate::config::ModelConfig;
    use keyformer_core::observation::Phase;
    use keyformer_core::policies::full::FullAttention;

    fn filled_cache(config: &ModelConfig, n: usize) -> LayerKvCache {
        let head_dim = config.head_dim();
        let mut cache = LayerKvCache::new(config.num_heads, head_dim);
        for pos in 0..n {
            let per_head: Vec<Vec<f32>> = (0..config.num_heads)
                .map(|h| {
                    (0..head_dim)
                        .map(|d| ((pos * 7 + h * 3 + d) % 11) as f32 * 0.1 - 0.4)
                        .collect()
                })
                .collect();
            cache.append(pos, &per_head, &per_head).unwrap();
        }
        cache
    }

    fn query(config: &ModelConfig) -> Vec<f32> {
        (0..config.d_model)
            .map(|i| ((i * 5 + 1) % 13) as f32 * 0.05 - 0.2)
            .collect()
    }

    /// The workspace attention must be bit-identical to the legacy attention
    /// for every positional family and position mode.
    #[test]
    fn attend_ws_is_bit_identical_to_legacy() {
        for positional in [
            PositionalEncoding::Rope,
            PositionalEncoding::Alibi,
            PositionalEncoding::Learned,
        ] {
            for mode in [PositionMode::Original, PositionMode::Remapped] {
                let config = ModelConfig {
                    positional,
                    position_mode: mode,
                    ..ModelConfig::tiny()
                };
                let mut cache = filled_cache(&config, 9);
                // Introduce holes so the two position modes actually differ.
                cache.retain_slots(&[0, 2, 3, 5, 6, 7, 8]).unwrap();
                let q = query(&config);

                let mut legacy_policy = FullAttention::new();
                let mut legacy_ctx = AttentionContext {
                    policy: &mut legacy_policy,
                    stats: None,
                    phase: Phase::Generation,
                    step: 2,
                    total_steps: 4,
                };
                let legacy = attend_single_query(&config, 0, &q, 9, &cache, &mut legacy_ctx);

                let mut ws = ForwardWorkspace::new(&config, cache.block_size());
                let mut ws_policy = FullAttention::new();
                let mut ws_ctx = AttentionContext {
                    policy: &mut ws_policy,
                    stats: None,
                    phase: Phase::Generation,
                    step: 2,
                    total_steps: 4,
                };
                attend_single_query_ws(
                    &config,
                    0,
                    &q,
                    9,
                    &cache,
                    &mut ws_ctx,
                    &mut ws.rot[0],
                    &mut ws.attn,
                    &ws.alibi_slopes,
                );
                assert_eq!(
                    legacy
                        .context
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    ws.attn
                        .context
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    "{positional} / {mode} context diverged"
                );
                assert_eq!(
                    legacy
                        .mean_probs
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    ws.attn
                        .mean_probs
                        .iter()
                        .map(|x| x.to_bits())
                        .collect::<Vec<_>>(),
                    "{positional} / {mode} mean_probs diverged"
                );
            }
        }
    }

    /// Re-attending with the same workspace must give the same bits (the
    /// rotated-key cache serves instead of recomputing).
    #[test]
    fn cached_rotations_serve_repeat_queries() {
        let config = ModelConfig::tiny();
        let cache = filled_cache(&config, 7);
        let q = query(&config);
        let mut ws = ForwardWorkspace::new(&config, cache.block_size());
        let run = |ws: &mut ForwardWorkspace| {
            let mut policy = FullAttention::new();
            let mut ctx = AttentionContext {
                policy: &mut policy,
                stats: None,
                phase: Phase::Generation,
                step: 0,
                total_steps: 1,
            };
            attend_single_query_ws(
                &config,
                0,
                &q,
                7,
                &cache,
                &mut ctx,
                &mut ws.rot[0],
                &mut ws.attn,
                &ws.alibi_slopes,
            );
            ws.attn.context.clone()
        };
        let first = run(&mut ws);
        let covered = ws.rot[0].covered_slots();
        assert_eq!(covered, 7);
        let second = run(&mut ws);
        assert_eq!(first, second);
    }

    #[test]
    fn workspace_precomputes_alibi_slopes() {
        let config = ModelConfig {
            num_heads: 4,
            ..ModelConfig::tiny()
        };
        let ws = ForwardWorkspace::new(&config, 16);
        for h in 0..4 {
            assert_eq!(ws.alibi_slopes[h].to_bits(), alibi_slope(h, 4).to_bits());
        }
    }
}

//! Laptop-scale stand-ins for the paper's three model families.
//!
//! The paper evaluates GPT-J-6B (RoPE), Cerebras-GPT-6.7B (learned position
//! embeddings) and MPT-7B (ALiBi). The reproduction keeps the property the paper
//! actually varies — the positional-encoding family — while shrinking every other
//! dimension to something that runs on a laptop (see DESIGN.md).

use crate::config::ModelConfig;
use crate::model::TransformerModel;
use crate::positional::PositionalEncoding;
use serde::{Deserialize, Serialize};

/// The model families used across the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Minimal configuration for unit tests.
    Tiny,
    /// GPT-J-like: rotary position embeddings.
    GptJLike,
    /// Cerebras-GPT-like: learned absolute position embeddings.
    CerebrasLike,
    /// MPT-like: ALiBi attention biases.
    MptLike,
    /// MPT-storywriter-like: ALiBi with a much longer supported context, used for the
    /// long-document experiments (Figure 8).
    MptStorywriterLike,
}

impl ModelFamily {
    /// All three paper families (excluding the test-only `Tiny` and the long-context
    /// storywriter variant).
    pub fn paper_families() -> [ModelFamily; 3] {
        [
            ModelFamily::GptJLike,
            ModelFamily::CerebrasLike,
            ModelFamily::MptLike,
        ]
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ModelFamily::Tiny => "tiny",
            ModelFamily::GptJLike => "GPT-J-like (RoPE)",
            ModelFamily::CerebrasLike => "Cerebras-GPT-like (learned)",
            ModelFamily::MptLike => "MPT-like (ALiBi)",
            ModelFamily::MptStorywriterLike => "MPT-storywriter-like (ALiBi, long context)",
        }
    }

    /// The positional-encoding family this model uses.
    pub fn positional(&self) -> PositionalEncoding {
        match self {
            ModelFamily::Tiny | ModelFamily::GptJLike => PositionalEncoding::Rope,
            ModelFamily::CerebrasLike => PositionalEncoding::Learned,
            ModelFamily::MptLike | ModelFamily::MptStorywriterLike => PositionalEncoding::Alibi,
        }
    }

    /// The laptop-scale configuration of this family.
    pub fn config(&self, seed: u64) -> ModelConfig {
        let base = ModelConfig {
            vocab_size: 1024,
            d_model: 128,
            num_layers: 4,
            num_heads: 4,
            d_ff: 256,
            max_seq_len: 4096,
            positional: self.positional(),
            position_mode: crate::config::PositionMode::Original,
            // RoPE position interpolation keeps long-range content matches sharp at
            // the sequence lengths the experiments use.
            rope_scale: 1.0 / 256.0,
            copy_strength: 12.0,
            // The synthetic vocabulary reserves ids 0..16 for structural tokens.
            copy_ignore_below: 16,
            seed,
        };
        match self {
            ModelFamily::Tiny => ModelConfig {
                vocab_size: 128,
                d_model: 32,
                num_layers: 2,
                num_heads: 2,
                d_ff: 64,
                max_seq_len: 512,
                rope_scale: 1.0,
                copy_ignore_below: 0,
                ..base
            },
            ModelFamily::MptStorywriterLike => ModelConfig {
                max_seq_len: 16_384,
                ..base
            },
            _ => base,
        }
    }

    /// Builds the model for this family with the given weight seed.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in configurations; they are all valid.
    pub fn build(&self, seed: u64) -> TransformerModel {
        TransformerModel::new(self.config(seed)).expect("built-in family config is valid")
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_valid_models() {
        for family in [
            ModelFamily::Tiny,
            ModelFamily::GptJLike,
            ModelFamily::CerebrasLike,
            ModelFamily::MptLike,
            ModelFamily::MptStorywriterLike,
        ] {
            let model = family.build(11);
            assert!(model.config().validate().is_ok(), "{family}");
            assert_eq!(model.config().positional, family.positional());
        }
    }

    #[test]
    fn paper_families_cover_all_three_encodings() {
        let encodings: Vec<PositionalEncoding> = ModelFamily::paper_families()
            .iter()
            .map(|f| f.positional())
            .collect();
        assert!(encodings.contains(&PositionalEncoding::Rope));
        assert!(encodings.contains(&PositionalEncoding::Learned));
        assert!(encodings.contains(&PositionalEncoding::Alibi));
    }

    #[test]
    fn storywriter_supports_longer_context() {
        assert!(
            ModelFamily::MptStorywriterLike.config(0).max_seq_len
                > ModelFamily::MptLike.config(0).max_seq_len
        );
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            ModelFamily::Tiny,
            ModelFamily::GptJLike,
            ModelFamily::CerebrasLike,
            ModelFamily::MptLike,
            ModelFamily::MptStorywriterLike,
        ]
        .iter()
        .map(|f| f.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}

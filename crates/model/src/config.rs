//! Model hyper-parameters.

use crate::positional::PositionalEncoding;
use keyformer_core::CoreError;
use serde::{Deserialize, Serialize};

/// How cached keys are assigned positions when positional information is applied at
/// attention time — the paper's Table 3 "Org Pos" vs. "New Pos" ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PositionMode {
    /// Keys keep the original position they had in the full sequence (the paper's
    /// best-performing choice).
    #[default]
    Original,
    /// Keys are re-indexed by their slot in the compacted cache.
    Remapped,
}

impl std::fmt::Display for PositionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PositionMode::Original => write!(f, "original"),
            PositionMode::Remapped => write!(f, "remapped"),
        }
    }
}

/// Hyper-parameters of the substrate transformer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Hidden width of the residual stream.
    pub d_model: usize,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Number of attention heads per layer.
    pub num_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Maximum sequence length supported by the positional encoding.
    pub max_seq_len: usize,
    /// Positional-encoding family.
    pub positional: PositionalEncoding,
    /// How cached keys are positioned after eviction.
    pub position_mode: PositionMode,
    /// RoPE position-interpolation scale: positions are multiplied by this factor
    /// before rotation. `1.0` is vanilla RoPE; smaller values preserve content
    /// matches over longer distances (only used by RoPE models).
    pub rope_scale: f32,
    /// Strength of the explicit induction-style copy head that converts attention
    /// over cached tokens into next-token evidence. `0.0` disables it.
    pub copy_strength: f32,
    /// Token ids below this value are treated as structural (BOS, separators, …) and
    /// never receive copy-head votes.
    pub copy_ignore_below: u32,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// A small default configuration suitable for tests.
    pub fn tiny() -> Self {
        ModelConfig {
            vocab_size: 128,
            d_model: 32,
            num_layers: 2,
            num_heads: 2,
            d_ff: 64,
            max_seq_len: 512,
            positional: PositionalEncoding::Rope,
            position_mode: PositionMode::Original,
            rope_scale: 1.0,
            copy_strength: 12.0,
            copy_ignore_below: 0,
            seed: 7,
        }
    }

    /// Per-head key/query/value width.
    ///
    /// # Panics
    ///
    /// Panics if `d_model` is not divisible by `num_heads`; call
    /// [`ModelConfig::validate`] first for a fallible check.
    pub fn head_dim(&self) -> usize {
        assert!(
            self.num_heads > 0 && self.d_model % self.num_heads == 0,
            "d_model must be divisible by num_heads"
        );
        self.d_model / self.num_heads
    }

    /// Total parameter count of the substrate model (embeddings + per-layer weights),
    /// used for documentation and rough memory accounting.
    pub fn parameter_count(&self) -> usize {
        let embed = self.vocab_size * self.d_model;
        let pos = match self.positional {
            PositionalEncoding::Learned => self.max_seq_len * self.d_model,
            _ => 0,
        };
        let per_layer = 4 * self.d_model * self.d_model // Wq, Wk, Wv, Wo
            + 2 * self.d_model * self.d_ff              // FFN in/out
            + self.d_ff                                  // FFN bias
            + 4 * self.d_model; // two LayerNorms (gain + bias)
        embed + pos + self.num_layers * per_layer
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if any dimension is zero, `d_model` is
    /// not divisible by `num_heads`, or the copy strength is negative.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.vocab_size == 0
            || self.d_model == 0
            || self.num_layers == 0
            || self.num_heads == 0
            || self.d_ff == 0
            || self.max_seq_len == 0
        {
            return Err(CoreError::InvalidConfig(
                "all model dimensions must be non-zero".into(),
            ));
        }
        if self.d_model % self.num_heads != 0 {
            return Err(CoreError::InvalidConfig(format!(
                "d_model {} not divisible by num_heads {}",
                self.d_model, self.num_heads
            )));
        }
        if self.copy_strength < 0.0 {
            return Err(CoreError::InvalidConfig(
                "copy_strength must be non-negative".into(),
            ));
        }
        if !(self.rope_scale > 0.0 && self.rope_scale <= 1.0) {
            return Err(CoreError::InvalidConfig(
                "rope_scale must be in (0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// Replaces the positional-encoding family.
    pub fn with_positional(mut self, positional: PositionalEncoding) -> Self {
        self.positional = positional;
        self
    }

    /// Replaces the position mode (Table 3 ablation).
    pub fn with_position_mode(mut self, mode: PositionMode) -> Self {
        self.position_mode = mode;
        self
    }

    /// Replaces the weight seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_is_valid() {
        let c = ModelConfig::tiny();
        assert!(c.validate().is_ok());
        assert_eq!(c.head_dim(), 16);
        assert!(c.parameter_count() > 0);
    }

    #[test]
    fn validation_catches_bad_dimensions() {
        let mut c = ModelConfig::tiny();
        c.d_model = 31;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny();
        c.num_layers = 0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::tiny();
        c.copy_strength = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn learned_positions_add_parameters() {
        let rope = ModelConfig::tiny();
        let learned = ModelConfig::tiny().with_positional(PositionalEncoding::Learned);
        assert!(learned.parameter_count() > rope.parameter_count());
    }

    #[test]
    fn builders_compose() {
        let c = ModelConfig::tiny()
            .with_positional(PositionalEncoding::Alibi)
            .with_position_mode(PositionMode::Remapped)
            .with_seed(99);
        assert_eq!(c.positional, PositionalEncoding::Alibi);
        assert_eq!(c.position_mode, PositionMode::Remapped);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn position_mode_display_and_default() {
        assert_eq!(PositionMode::default(), PositionMode::Original);
        assert_eq!(PositionMode::Original.to_string(), "original");
        assert_eq!(PositionMode::Remapped.to_string(), "remapped");
    }
}

//! Single-query multi-head attention over a policy-managed KV cache.
//!
//! This is the code path every experiment exercises: the current token's query
//! attends over whatever slots the eviction policy has allowed to survive, the
//! unnormalized logits are reported to the policy (so it can score tokens), and the
//! post-softmax probabilities optionally flow into the statistics collector.

use crate::config::{ModelConfig, PositionMode};
use crate::positional::{
    alibi_bias, alibi_slope, apply_rope_scaled, PositionalEncoding, ROPE_BASE,
};
use crate::stats::{AttentionRecord, AttentionStats};
use keyformer_core::cache::LayerKvCache;
use keyformer_core::observation::{AttentionObservation, Phase};
use keyformer_core::policy::KvCachePolicy;
use keyformer_tensor::ops::softmax;
use keyformer_tensor::vector::dot;

/// Result of one layer's attention over the cache for a single query token.
#[derive(Debug, Clone)]
pub struct AttentionOutput {
    /// Concatenated per-head context vectors (`d_model` long).
    pub context: Vec<f32>,
    /// Attention probabilities averaged over heads, per live cache slot. Used by the
    /// copy head and by diagnostics.
    pub mean_probs: Vec<f32>,
}

/// Execution context threaded through an attention call.
pub struct AttentionContext<'a> {
    /// Eviction policy observing the logits.
    pub policy: &'a mut dyn KvCachePolicy,
    /// Optional statistics collector.
    pub stats: Option<&'a mut AttentionStats>,
    /// Inference phase of the current step.
    pub phase: Phase,
    /// Decode step within the phase.
    pub step: usize,
    /// Planned generation length `T`.
    pub total_steps: usize,
}

/// Computes multi-head attention of a single query over a layer's KV cache.
///
/// `query` is the full `d_model`-wide query vector (already projected by `W_q`);
/// it is split into `num_heads` contiguous chunks. Keys are stored unrotated in the
/// cache; positional information (RoPE rotation or ALiBi bias) is applied here using
/// either the slots' original positions or their compacted indices, depending on
/// `config.position_mode`.
///
/// # Panics
///
/// Panics if the cache is empty or its head shape disagrees with `config`.
pub fn attend_single_query(
    config: &ModelConfig,
    layer: usize,
    query: &[f32],
    query_position: usize,
    cache: &LayerKvCache,
    ctx: &mut AttentionContext<'_>,
) -> AttentionOutput {
    let num_heads = config.num_heads;
    let head_dim = config.head_dim();
    assert!(
        !cache.is_empty(),
        "attention requires at least one cached slot"
    );
    assert_eq!(cache.num_heads(), num_heads, "cache head count mismatch");
    assert_eq!(cache.head_dim(), head_dim, "cache head dim mismatch");

    let live = cache.len();
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut context = vec![0.0f32; config.d_model];
    let mut mean_probs = vec![0.0f32; live];

    // Effective key positions under the configured position mode.
    let key_positions: Vec<usize> = match config.position_mode {
        PositionMode::Original => cache.positions().to_vec(),
        PositionMode::Remapped => (0..live).collect(),
    };
    let effective_query_pos = match config.position_mode {
        PositionMode::Original => query_position,
        // Under remapping the query sits immediately after the compacted cache.
        PositionMode::Remapped => live.saturating_sub(1),
    };

    for head in 0..num_heads {
        let mut q_head: Vec<f32> = query[head * head_dim..(head + 1) * head_dim].to_vec();
        if config.positional == PositionalEncoding::Rope {
            apply_rope_scaled(
                &mut q_head,
                effective_query_pos as f32 * config.rope_scale,
                ROPE_BASE,
            );
        }
        let slope = alibi_slope(head, num_heads);
        let keys = cache.keys(head);
        let mut logits = Vec::with_capacity(live);
        for (slot, &k_pos) in key_positions.iter().enumerate().take(live) {
            let mut k: Vec<f32> = keys.row(slot).to_vec();
            let mut logit = match config.positional {
                PositionalEncoding::Rope => {
                    apply_rope_scaled(&mut k, k_pos as f32 * config.rope_scale, ROPE_BASE);
                    dot(&q_head, &k) * scale
                }
                PositionalEncoding::Alibi | PositionalEncoding::Learned => dot(&q_head, &k) * scale,
            };
            if config.positional == PositionalEncoding::Alibi {
                logit += alibi_bias(slope, effective_query_pos, k_pos);
            }
            logits.push(logit);
        }

        ctx.policy.observe(&AttentionObservation {
            layer,
            head,
            phase: ctx.phase,
            step: ctx.step,
            total_steps: ctx.total_steps,
            logits: &logits,
        });

        let probs = softmax(&logits);
        if let Some(stats) = ctx.stats.as_deref_mut() {
            stats.record(AttentionRecord {
                layer,
                head,
                step: ctx.step,
                phase: ctx.phase,
                probs: probs.clone(),
                positions: cache.positions().to_vec(),
            });
        }

        let values = cache.values(head);
        let head_context = values.vecmat(&probs).expect("value matrix shape mismatch");
        context[head * head_dim..(head + 1) * head_dim].copy_from_slice(&head_context);
        for (m, &p) in mean_probs.iter_mut().zip(&probs) {
            *m += p / num_heads as f32;
        }
    }

    AttentionOutput {
        context,
        mean_probs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_core::policies::full::FullAttention;

    fn filled_cache(config: &ModelConfig, token_embeddings: &[Vec<f32>]) -> LayerKvCache {
        let head_dim = config.head_dim();
        let mut cache = LayerKvCache::new(config.num_heads, head_dim);
        for (pos, emb) in token_embeddings.iter().enumerate() {
            let per_head: Vec<Vec<f32>> = (0..config.num_heads)
                .map(|h| emb[h * head_dim..(h + 1) * head_dim].to_vec())
                .collect();
            cache.append(pos, &per_head, &per_head).unwrap();
        }
        cache
    }

    fn unit(config: &ModelConfig, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; config.d_model];
        v[hot] = 1.0;
        v
    }

    #[test]
    fn attends_to_matching_key() {
        let config = ModelConfig {
            positional: PositionalEncoding::Learned,
            ..ModelConfig::tiny()
        };
        // Three cached tokens; the query matches token 1 exactly.
        let cache = filled_cache(
            &config,
            &[unit(&config, 0), unit(&config, 5), unit(&config, 9)],
        );
        let mut policy = FullAttention::new();
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: None,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 1,
        };
        let query: Vec<f32> = unit(&config, 5).iter().map(|x| x * 8.0).collect();
        let out = attend_single_query(&config, 0, &query, 2, &cache, &mut ctx);
        let best = keyformer_tensor::vector::argmax(&out.mean_probs).unwrap();
        assert_eq!(best, 1, "query should attend to the matching cached token");
        assert_eq!(out.context.len(), config.d_model);
        let total: f32 = out.mean_probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn alibi_biases_towards_recent_tokens() {
        let config = ModelConfig {
            positional: PositionalEncoding::Alibi,
            ..ModelConfig::tiny()
        };
        // All keys identical, so only the ALiBi distance penalty differentiates them.
        let cache = filled_cache(&config, &vec![unit(&config, 3); 6]);
        let mut policy = FullAttention::new();
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: None,
            phase: Phase::Generation,
            step: 0,
            total_steps: 1,
        };
        let out = attend_single_query(&config, 0, &unit(&config, 3), 6, &cache, &mut ctx);
        assert!(
            out.mean_probs[5] > out.mean_probs[0],
            "ALiBi should favour the most recent identical key: {:?}",
            out.mean_probs
        );
    }

    #[test]
    fn rope_respects_position_mode() {
        let config = ModelConfig {
            positional: PositionalEncoding::Rope,
            ..ModelConfig::tiny()
        };
        let remapped = ModelConfig {
            position_mode: PositionMode::Remapped,
            ..config
        };
        let cache = {
            let mut c = filled_cache(
                &config,
                &[
                    unit(&config, 1),
                    unit(&config, 2),
                    unit(&config, 1),
                    unit(&config, 4),
                ],
            );
            // Simulate an eviction that removed slot 1: original positions {0, 2, 3}.
            c.retain_slots(&[0, 2, 3]).unwrap();
            c
        };
        let mut policy = FullAttention::new();
        let query = unit(&config, 1);
        let run = |cfg: &ModelConfig, policy: &mut FullAttention| {
            let mut ctx = AttentionContext {
                policy,
                stats: None,
                phase: Phase::Generation,
                step: 0,
                total_steps: 1,
            };
            attend_single_query(cfg, 0, &query, 4, &cache, &mut ctx).mean_probs
        };
        let original = run(&config, &mut policy);
        let remapped_probs = run(&remapped, &mut policy);
        // The two position modes must produce different attention patterns once the
        // cache has holes in its original positions.
        let diff: f32 = original
            .iter()
            .zip(&remapped_probs)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 1e-4,
            "position mode had no effect: {original:?} vs {remapped_probs:?}"
        );
    }

    #[test]
    fn stats_are_recorded_per_head() {
        let config = ModelConfig::tiny();
        let cache = filled_cache(&config, &[unit(&config, 0), unit(&config, 1)]);
        let mut policy = FullAttention::new();
        let mut stats = AttentionStats::new(config.num_layers, config.num_heads);
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: Some(&mut stats),
            phase: Phase::Prompt,
            step: 3,
            total_steps: 8,
        };
        attend_single_query(&config, 1, &unit(&config, 0), 2, &cache, &mut ctx);
        assert_eq!(stats.len(), config.num_heads);
        assert!(stats.records().iter().all(|r| r.layer == 1 && r.step == 3));
    }

    #[test]
    #[should_panic(expected = "at least one cached slot")]
    fn empty_cache_panics() {
        let config = ModelConfig::tiny();
        let cache = LayerKvCache::new(config.num_heads, config.head_dim());
        let mut policy = FullAttention::new();
        let mut ctx = AttentionContext {
            policy: &mut policy,
            stats: None,
            phase: Phase::Prompt,
            step: 0,
            total_steps: 1,
        };
        attend_single_query(&config, 0, &vec![0.0; config.d_model], 0, &cache, &mut ctx);
    }
}

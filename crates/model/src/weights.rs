//! Deterministic, structured weight construction.
//!
//! The substrate is not trained. Instead its weights are *constructed* so that the
//! attention mechanism behaves associatively out of the box:
//!
//! * token embeddings are unit-norm Gaussian rows, so distinct tokens are nearly
//!   orthogonal while repeated tokens match strongly;
//! * the query/key projections are scaled identities plus small noise, so a query
//!   attends most strongly to cached tokens whose embeddings resemble the current
//!   residual stream — i.e. content-based addressing;
//! * the value/output projections are near-identities so attended content flows into
//!   the residual stream;
//! * the feed-forward block is a small perturbation, keeping the residual stream
//!   dominated by token identity.
//!
//! This gives the sparse, key-token-dominated attention structure the paper's
//! Figures 3 and 14–15 show for real checkpoints, without requiring gigabytes of
//! pretrained weights (see DESIGN.md, substitution table).

use crate::config::ModelConfig;
use crate::positional::PositionalEncoding;
use keyformer_tensor::init::{gaussian_matrix, xavier_matrix};
use keyformer_tensor::vector::l2_norm;
use keyformer_tensor::Matrix;

/// Scale applied to the identity component of the query/key projections. The product
/// of the two scales (divided by `sqrt(head_dim)`) sets how sharply a query attends
/// to a matching cached token.
const QK_IDENTITY_SCALE: f32 = 2.0;
/// Scale of the random perturbation added to each projection.
const PROJECTION_NOISE: f32 = 0.08;
/// Scale of the feed-forward contribution relative to the residual stream.
const FFN_SCALE: f32 = 0.05;

/// Weights of a single decoder layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Query projection, `(d_model, d_model)`.
    pub wq: Matrix,
    /// Key projection, `(d_model, d_model)`.
    pub wk: Matrix,
    /// Value projection, `(d_model, d_model)`.
    pub wv: Matrix,
    /// Output projection, `(d_model, d_model)`.
    pub wo: Matrix,
    /// Feed-forward input projection, `(d_ff, d_model)`.
    pub ffn_in: Matrix,
    /// Feed-forward output projection, `(d_model, d_ff)`.
    pub ffn_out: Matrix,
    /// Pre-attention LayerNorm gain.
    pub ln1_gain: Vec<f32>,
    /// Pre-attention LayerNorm bias.
    pub ln1_bias: Vec<f32>,
    /// Pre-FFN LayerNorm gain.
    pub ln2_gain: Vec<f32>,
    /// Pre-FFN LayerNorm bias.
    pub ln2_bias: Vec<f32>,
}

/// All weights of the substrate model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    /// Token embedding table, `(vocab_size, d_model)`; also used (transposed) as the
    /// output head.
    pub embedding: Matrix,
    /// Learned position embedding table, `(max_seq_len, d_model)`; empty unless the
    /// model uses [`PositionalEncoding::Learned`].
    pub position_embedding: Matrix,
    /// Per-layer weights.
    pub layers: Vec<LayerWeights>,
    /// Final LayerNorm gain.
    pub final_ln_gain: Vec<f32>,
    /// Final LayerNorm bias.
    pub final_ln_bias: Vec<f32>,
}

fn scaled_identity_plus_noise(n: usize, identity_scale: f32, noise: f32, seed: u64) -> Matrix {
    let mut m = gaussian_matrix(n, n, noise, seed);
    for i in 0..n {
        let v = m.get(i, i);
        m.set(i, i, v + identity_scale);
    }
    m
}

fn unit_norm_rows(mut m: Matrix) -> Matrix {
    for r in 0..m.rows() {
        let norm = l2_norm(m.row(r)).max(1e-6);
        for x in m.row_mut(r) {
            *x /= norm;
        }
    }
    m
}

impl ModelWeights {
    /// Builds the full weight set for `config`, deterministically from `config.seed`.
    pub fn build(config: &ModelConfig) -> Self {
        let d = config.d_model;
        let seed = config.seed;
        let embedding = unit_norm_rows(gaussian_matrix(config.vocab_size, d, 1.0, seed));
        let position_embedding = match config.positional {
            PositionalEncoding::Learned => {
                let mut table = Matrix::zeros(config.max_seq_len, d);
                for p in 0..config.max_seq_len {
                    let row = crate::positional::learned_position_embedding(p, d);
                    table.row_mut(p).copy_from_slice(&row);
                }
                table
            }
            _ => Matrix::zeros(0, 0),
        };
        let layers = (0..config.num_layers)
            .map(|l| {
                let ls = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(l as u64 + 1);
                LayerWeights {
                    wq: scaled_identity_plus_noise(
                        d,
                        QK_IDENTITY_SCALE,
                        PROJECTION_NOISE,
                        ls ^ 0x01,
                    ),
                    wk: scaled_identity_plus_noise(
                        d,
                        QK_IDENTITY_SCALE,
                        PROJECTION_NOISE,
                        ls ^ 0x02,
                    ),
                    wv: scaled_identity_plus_noise(d, 1.0, PROJECTION_NOISE, ls ^ 0x03),
                    wo: scaled_identity_plus_noise(d, 1.0, PROJECTION_NOISE, ls ^ 0x04),
                    ffn_in: xavier_matrix(config.d_ff, d, ls ^ 0x05),
                    ffn_out: {
                        let mut m = xavier_matrix(d, config.d_ff, ls ^ 0x06);
                        m.scale_in_place(FFN_SCALE);
                        m
                    },
                    ln1_gain: vec![1.0; d],
                    ln1_bias: vec![0.0; d],
                    ln2_gain: vec![1.0; d],
                    ln2_bias: vec![0.0; d],
                }
            })
            .collect();
        ModelWeights {
            embedding,
            position_embedding,
            layers,
            final_ln_gain: vec![1.0; d],
            final_ln_bias: vec![0.0; d],
        }
    }

    /// Approximate parameter memory footprint in bytes (f32 storage).
    pub fn byte_size(&self) -> usize {
        let mut total = self.embedding.byte_size() + self.position_embedding.byte_size();
        for l in &self.layers {
            total += l.wq.byte_size()
                + l.wk.byte_size()
                + l.wv.byte_size()
                + l.wo.byte_size()
                + l.ffn_in.byte_size()
                + l.ffn_out.byte_size()
                + 4 * l.ln1_gain.len() * std::mem::size_of::<f32>();
        }
        total + 2 * self.final_ln_gain.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_tensor::vector::dot;

    #[test]
    fn build_is_deterministic_in_seed() {
        let config = ModelConfig::tiny();
        let a = ModelWeights::build(&config);
        let b = ModelWeights::build(&config);
        let c = ModelWeights::build(&config.with_seed(8));
        assert_eq!(a, b);
        assert_ne!(a.embedding, c.embedding);
    }

    #[test]
    fn embeddings_are_unit_norm_and_near_orthogonal() {
        let w = ModelWeights::build(&ModelConfig::tiny());
        let e = &w.embedding;
        for r in 0..8 {
            assert!((keyformer_tensor::vector::l2_norm(e.row(r)) - 1.0).abs() < 1e-4);
        }
        // Distinct tokens correlate far less than a token with itself.
        let self_sim = dot(e.row(3), e.row(3));
        let cross_sim = dot(e.row(3), e.row(4)).abs();
        assert!(self_sim > 0.99);
        assert!(cross_sim < 0.7);
    }

    #[test]
    fn qk_projections_are_identity_dominated() {
        let w = ModelWeights::build(&ModelConfig::tiny());
        let wq = &w.layers[0].wq;
        let diag_mean: f32 = (0..wq.rows()).map(|i| wq.get(i, i)).sum::<f32>() / wq.rows() as f32;
        assert!(diag_mean > 1.5, "diag mean {diag_mean}");
    }

    #[test]
    fn learned_positional_table_only_for_learned_models() {
        let rope = ModelWeights::build(&ModelConfig::tiny());
        assert!(rope.position_embedding.is_empty());
        let learned =
            ModelWeights::build(&ModelConfig::tiny().with_positional(PositionalEncoding::Learned));
        assert_eq!(learned.position_embedding.rows(), 512);
    }

    #[test]
    fn layer_count_and_byte_size() {
        let config = ModelConfig::tiny();
        let w = ModelWeights::build(&config);
        assert_eq!(w.layers.len(), config.num_layers);
        assert!(w.byte_size() > config.vocab_size * config.d_model * 4);
    }
}

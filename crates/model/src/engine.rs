//! The inference engine: a single-sequence facade over [`Session`].
//!
//! The engine reproduces the paper's two-phase inference procedure:
//!
//! 1. **Prompt processing** — every prompt token is pushed through the decoder,
//!    filling the KV cache and accumulating the policy's score function. At the end
//!    of the phase the cache is reduced to the budget derived from the prompt length
//!    (`capacity = cache_fraction × prompt_len`).
//! 2. **Token generation** — each generated token attends over the reduced cache,
//!    one new slot is appended per step and one slot is evicted, keeping the cache at
//!    a constant size.
//!
//! All per-sequence state (KV cache, policy instance, budget, token history,
//! statistics, peak bytes) lives in the embedded [`Session`]; the engine simply
//! drives one session at a time through full requests. Multi-sequence callers —
//! the continuous-batching scheduler in `keyformer-serve` — use [`Session`]
//! directly and interleave its stepwise API across many sequences.

use crate::config::ModelConfig;
use crate::generation::{GenerationConfig, GenerationOutput};
use crate::model::TransformerModel;
use crate::session::Session;
use crate::stats::AttentionStats;
use keyformer_core::budget::{CacheBudget, CacheBudgetSpec};
use keyformer_core::cache::{KvCache, KvDtype};
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::CoreError;

pub use crate::session::ContinuationScore;

/// An inference session over one model with one eviction policy.
///
/// The engine owns the per-sequence [`Session`]; the model is borrowed immutably
/// so many engines can share it (e.g. the harness sweeping policies in parallel).
pub struct InferenceEngine<'m> {
    session: Session<'m>,
}

impl<'m> InferenceEngine<'m> {
    /// Creates an engine. With `budget_spec = None` the cache is never reduced
    /// regardless of the policy (useful for the full-attention baseline).
    pub fn new(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
    ) -> Self {
        InferenceEngine {
            session: Session::new(model, policy, budget_spec),
        }
    }

    /// Creates an engine whose KV cache stores sealed blocks at `dtype` — how
    /// the quantization experiment measures accuracy at reduced KV precision
    /// without going through the serving layer.
    pub fn new_dtype(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
        dtype: KvDtype,
    ) -> Self {
        InferenceEngine {
            session: Session::with_dtype(model, policy, budget_spec, dtype),
        }
    }

    /// The underlying per-sequence session.
    pub fn session(&self) -> &Session<'m> {
        &self.session
    }

    /// Enables attention-statistics collection (sparsity, CDFs, heat maps).
    pub fn enable_stats(&mut self) {
        self.session.enable_stats();
    }

    /// Collected statistics, if enabled.
    pub fn stats(&self) -> Option<&AttentionStats> {
        self.session.stats()
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.session.config()
    }

    /// The absolute budget derived from the last processed prompt, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        self.session.budget()
    }

    /// The live KV cache (read-only), exposing per-layer retained slots and their
    /// original positions for diagnostics and experiments.
    pub fn cache(&self) -> &KvCache {
        self.session.cache()
    }

    /// Live KV-cache slot count per layer.
    pub fn cache_slots(&self) -> Vec<usize> {
        self.session.cache_slots()
    }

    /// Current KV-cache byte footprint.
    pub fn cache_bytes(&self) -> usize {
        self.session.cache_bytes()
    }

    /// Peak KV-cache byte footprint observed so far.
    pub fn peak_cache_bytes(&self) -> usize {
        self.session.peak_cache_bytes()
    }

    /// Full token history (prompt + generated) of the current session.
    pub fn sequence(&self) -> &[u32] {
        self.session.sequence()
    }

    /// Clears all per-sequence state, making the engine reusable for a new request.
    pub fn reset(&mut self) {
        self.session.reset();
    }

    /// Processes a prompt: fills the KV cache, derives the absolute budget from the
    /// prompt length, reduces the cache to that budget and returns the logits of the
    /// final prompt token (the distribution over the first generated token).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or a shape error
    /// occurs, and propagates policy-contract violations.
    pub fn process_prompt(
        &mut self,
        prompt: &[u32],
        total_generation_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.session.process_prompt(prompt, total_generation_steps)
    }

    /// Runs the full two-phase inference: prompt processing followed by
    /// autoregressive generation.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or otherwise rejected (programming error in
    /// the caller); use [`InferenceEngine::try_generate`] for fallible handling —
    /// the serving layer does.
    pub fn generate(&mut self, prompt: &[u32], config: &GenerationConfig) -> GenerationOutput {
        self.try_generate(prompt, config)
            .expect("generation failed")
    }

    /// Fallible variant of [`InferenceEngine::generate`]: every prompt, forward and
    /// eviction error surfaces as a [`CoreError`] instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] on an empty or out-of-vocabulary
    /// prompt, and propagates forward or eviction errors.
    pub fn try_generate(
        &mut self,
        prompt: &[u32],
        config: &GenerationConfig,
    ) -> Result<GenerationOutput, CoreError> {
        self.session.generate(prompt, config)
    }

    /// Scores a continuation under the model: returns the total and per-token mean
    /// log-likelihood of `continuation` given `prompt`, processing the prompt with
    /// the engine's cache policy. Used by the few-shot evaluation (Table 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if prompt or continuation is empty.
    pub fn score_continuation(
        &mut self,
        prompt: &[u32],
        continuation: &[u32],
    ) -> Result<ContinuationScore, CoreError> {
        self.session.score_continuation(prompt, continuation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::ModelFamily;
    use keyformer_core::spec::PolicySpec;

    fn prompt(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 13 + 5) % 120) as u32).collect()
    }

    #[test]
    fn full_attention_cache_grows_with_sequence() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        let out = engine.generate(&prompt(20), &GenerationConfig::new(5));
        assert_eq!(out.generated.len(), 5);
        // 20 prompt tokens + 4 generated tokens are cached (the final generated token
        // is never fed back).
        assert!(out.final_cache_slots.iter().all(|&n| n == 24));
    }

    #[test]
    fn budgeted_policy_caps_cache_size() {
        let model = ModelFamily::Tiny.build(1);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        let out = engine.generate(&prompt(40), &GenerationConfig::new(6));
        let budget = engine.budget().unwrap();
        assert_eq!(budget.capacity(), 20);
        assert!(
            out.final_cache_slots
                .iter()
                .all(|&n| n <= budget.capacity()),
            "cache exceeded budget: {:?}",
            out.final_cache_slots
        );
        assert!(out.final_cache_bytes < out.peak_cache_bytes);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = ModelFamily::Tiny.build(2);
        let run = || {
            let mut engine = InferenceEngine::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(CacheBudgetSpec::new(0.6, 0.3).unwrap()),
            );
            engine
                .generate(&prompt(30), &GenerationConfig::new(8))
                .generated
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eos_stops_generation_early() {
        let model = ModelFamily::Tiny.build(3);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        // Force EOS to whatever greedy picks first, so generation stops after 1 token.
        let first = engine
            .generate(&prompt(10), &GenerationConfig::new(1))
            .generated[0];
        engine.reset();
        let out = engine.generate(&prompt(10), &GenerationConfig::new(10).with_eos(first));
        assert_eq!(out.generated.len(), 1);
    }

    #[test]
    fn top_k_sampling_is_seed_deterministic_and_varies_with_seed() {
        let model = ModelFamily::Tiny.build(4);
        let gen = |seed: u64| {
            let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
            engine
                .generate(
                    &prompt(16),
                    &GenerationConfig::new(12).with_top_k(20, 10.0, seed),
                )
                .generated
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn empty_prompt_is_rejected() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(engine.process_prompt(&[], 4).is_err());
        assert!(engine.score_continuation(&prompt(4), &[]).is_err());
    }

    #[test]
    fn try_generate_surfaces_errors_instead_of_panicking() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(engine.try_generate(&[], &GenerationConfig::new(4)).is_err());
        let vocab = engine.config().vocab_size as u32;
        assert!(engine
            .try_generate(&[1, vocab + 3], &GenerationConfig::new(4))
            .is_err());
        // A good request on the same engine still works afterwards.
        let out = engine
            .try_generate(&prompt(8), &GenerationConfig::new(3))
            .unwrap();
        assert_eq!(out.generated.len(), 3);
    }

    #[test]
    fn generate_and_try_generate_agree() {
        let model = ModelFamily::Tiny.build(5);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut a = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        let mut b = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        let config = GenerationConfig::new(6);
        assert_eq!(
            a.generate(&prompt(24), &config),
            b.try_generate(&prompt(24), &config).unwrap()
        );
    }

    #[test]
    fn score_continuation_prefers_induction_consistent_text() {
        let model = ModelFamily::Tiny.build(7);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        // Prompt contains the bigram (40, 41) twice; a continuation that repeats it
        // should outscore one that pairs 40 with an unrelated token.
        let p = vec![7u32, 40, 41, 9, 3, 40, 41, 12, 40];
        let good = engine.score_continuation(&p, &[41, 9]).unwrap();
        engine.reset();
        let bad = engine.score_continuation(&p, &[77, 78]).unwrap();
        assert!(good.per_token() > bad.per_token());
        assert_eq!(good.tokens, 2);
    }

    #[test]
    fn stats_collection_is_opt_in() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        engine.generate(&prompt(8), &GenerationConfig::new(2));
        assert!(engine.stats().is_none());
        engine.enable_stats();
        engine.generate(&prompt(8), &GenerationConfig::new(2));
        assert!(!engine.stats().unwrap().is_empty());
    }

    #[test]
    fn reset_allows_reuse() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::h2o_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let a = engine
            .generate(&prompt(24), &GenerationConfig::new(4))
            .generated;
        let b = engine
            .generate(&prompt(24), &GenerationConfig::new(4))
            .generated;
        assert_eq!(a, b, "engine state must not leak across requests");
    }
}

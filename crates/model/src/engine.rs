//! The inference engine: couples a model, a KV-cache policy and a cache budget.
//!
//! The engine reproduces the paper's two-phase inference procedure:
//!
//! 1. **Prompt processing** — every prompt token is pushed through the decoder,
//!    filling the KV cache and accumulating the policy's score function. At the end
//!    of the phase the cache is reduced to the budget derived from the prompt length
//!    (`capacity = cache_fraction × prompt_len`).
//! 2. **Token generation** — each generated token attends over the reduced cache,
//!    one new slot is appended per step and one slot is evicted, keeping the cache at
//!    a constant size.

use crate::config::ModelConfig;
use crate::generation::{GenerationConfig, GenerationOutput, SamplingStrategy};
use crate::model::{ForwardContext, TransformerModel};
use crate::stats::AttentionStats;
use keyformer_core::budget::{CacheBudget, CacheBudgetSpec};
use keyformer_core::cache::KvCache;
use keyformer_core::observation::Phase;
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::CoreError;
use keyformer_tensor::ops::{log_softmax, softmax_with_temperature};
use keyformer_tensor::top_k_indices;
use keyformer_tensor::vector::argmax;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An inference session over one model with one eviction policy.
///
/// The engine owns the KV cache, the policy and the token history; the model is
/// borrowed immutably so many engines can share it (e.g. the harness sweeping
/// policies in parallel).
pub struct InferenceEngine<'m> {
    model: &'m TransformerModel,
    policy: Box<dyn KvCachePolicy>,
    budget_spec: Option<CacheBudgetSpec>,
    budget: Option<CacheBudget>,
    cache: KvCache,
    sequence: Vec<u32>,
    stats: Option<AttentionStats>,
    peak_cache_bytes: usize,
}

impl<'m> InferenceEngine<'m> {
    /// Creates an engine. With `budget_spec = None` the cache is never reduced
    /// regardless of the policy (useful for the full-attention baseline).
    pub fn new(
        model: &'m TransformerModel,
        policy: Box<dyn KvCachePolicy>,
        budget_spec: Option<CacheBudgetSpec>,
    ) -> Self {
        InferenceEngine {
            cache: model.empty_cache(),
            model,
            policy,
            budget_spec,
            budget: None,
            sequence: Vec::new(),
            stats: None,
            peak_cache_bytes: 0,
        }
    }

    /// Enables attention-statistics collection (sparsity, CDFs, heat maps).
    pub fn enable_stats(&mut self) {
        let c = self.model.config();
        self.stats = Some(AttentionStats::new(c.num_layers, c.num_heads));
    }

    /// Collected statistics, if enabled.
    pub fn stats(&self) -> Option<&AttentionStats> {
        self.stats.as_ref()
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.model.config()
    }

    /// The absolute budget derived from the last processed prompt, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        self.budget
    }

    /// The live KV cache (read-only), exposing per-layer retained slots and their
    /// original positions for diagnostics and experiments.
    pub fn cache(&self) -> &KvCache {
        &self.cache
    }

    /// Live KV-cache slot count per layer.
    pub fn cache_slots(&self) -> Vec<usize> {
        self.cache.iter().map(|l| l.len()).collect()
    }

    /// Current KV-cache byte footprint.
    pub fn cache_bytes(&self) -> usize {
        self.cache.byte_size()
    }

    /// Peak KV-cache byte footprint observed so far.
    pub fn peak_cache_bytes(&self) -> usize {
        self.peak_cache_bytes
    }

    /// Full token history (prompt + generated) of the current session.
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }

    /// Clears all per-sequence state, making the engine reusable for a new request.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.policy.reset();
        self.sequence.clear();
        self.budget = None;
        self.peak_cache_bytes = 0;
        if let Some(stats) = &mut self.stats {
            stats.clear();
        }
    }

    fn forward(
        &mut self,
        token: u32,
        position: usize,
        phase: Phase,
        step: usize,
        total_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        self.sequence.push(token);
        let mut ctx = ForwardContext {
            cache: &mut self.cache,
            policy: self.policy.as_mut(),
            stats: self.stats.as_mut(),
            sequence: &self.sequence,
            phase,
            step,
            total_steps,
        };
        let logits = self.model.forward_token(token, position, &mut ctx)?;
        self.peak_cache_bytes = self.peak_cache_bytes.max(self.cache.byte_size());
        Ok(logits)
    }

    fn evict_to_budget(&mut self) -> Result<(), CoreError> {
        let Some(budget) = self.budget else {
            return Ok(());
        };
        for layer in 0..self.cache.num_layers() {
            let live = self.cache.layer(layer).len();
            if !budget.needs_eviction(live) {
                continue;
            }
            let retained = self.policy.select_retained(layer, live, &budget);
            keyformer_core::cache::validate_selection(&retained, live)?;
            self.cache.layer_mut(layer).retain_slots(&retained)?;
            self.policy.compact(layer, &retained);
        }
        Ok(())
    }

    /// Processes a prompt: fills the KV cache, derives the absolute budget from the
    /// prompt length, reduces the cache to that budget and returns the logits of the
    /// final prompt token (the distribution over the first generated token).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the prompt is empty or a shape error
    /// occurs, and propagates policy-contract violations.
    pub fn process_prompt(
        &mut self,
        prompt: &[u32],
        total_generation_steps: usize,
    ) -> Result<Vec<f32>, CoreError> {
        if prompt.is_empty() {
            return Err(CoreError::InvalidConfig("prompt must be non-empty".into()));
        }
        self.reset();
        self.budget = self
            .budget_spec
            .map(|spec| spec.for_prompt_len(prompt.len()));
        let mut logits = Vec::new();
        for (pos, &tok) in prompt.iter().enumerate() {
            logits = self.forward(tok, pos, Phase::Prompt, pos, total_generation_steps)?;
        }
        // The paper reduces the cache once at the end of the prompt phase.
        self.evict_to_budget()?;
        Ok(logits)
    }

    fn pick_token(logits: &[f32], config: &GenerationConfig, rng: &mut StdRng) -> u32 {
        match config.sampling {
            SamplingStrategy::Greedy => argmax(logits).unwrap_or(0) as u32,
            SamplingStrategy::TopK { k, temperature } => {
                let candidates = top_k_indices(logits, k.max(1));
                let candidate_logits: Vec<f32> = candidates.iter().map(|&i| logits[i]).collect();
                let probs = softmax_with_temperature(&candidate_logits, temperature.max(1e-3));
                let draw: f32 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                for (i, &p) in probs.iter().enumerate() {
                    acc += p;
                    if draw <= acc {
                        return candidates[i] as u32;
                    }
                }
                *candidates.last().unwrap_or(&0) as u32
            }
        }
    }

    /// Runs the full two-phase inference: prompt processing followed by
    /// autoregressive generation.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty (programming error in the caller); use
    /// [`InferenceEngine::process_prompt`] directly for fallible prompt handling.
    pub fn generate(&mut self, prompt: &[u32], config: &GenerationConfig) -> GenerationOutput {
        let mut logits = self
            .process_prompt(prompt, config.max_new_tokens)
            .expect("prompt processing failed");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut generated = Vec::with_capacity(config.max_new_tokens);
        // Tokens the repetition penalty applies to: everything generated in this
        // request plus the final prompt token (the task cue, which a summary should
        // not parrot back).
        let mut penalised: Vec<u32> = prompt.last().copied().into_iter().collect();
        for step in 0..config.max_new_tokens {
            if config.repetition_penalty > 0.0 {
                for &tok in &penalised {
                    if let Some(l) = logits.get_mut(tok as usize) {
                        *l -= config.repetition_penalty;
                    }
                }
            }
            let next = Self::pick_token(&logits, config, &mut rng);
            generated.push(next);
            penalised.push(next);
            if Some(next) == config.eos_token {
                break;
            }
            if step + 1 == config.max_new_tokens {
                break;
            }
            let position = prompt.len() + step;
            logits = self
                .forward(
                    next,
                    position,
                    Phase::Generation,
                    step,
                    config.max_new_tokens,
                )
                .expect("generation forward failed");
            self.evict_to_budget().expect("eviction failed");
        }
        GenerationOutput {
            generated,
            prompt_len: prompt.len(),
            final_cache_slots: self.cache_slots(),
            final_cache_bytes: self.cache_bytes(),
            peak_cache_bytes: self.peak_cache_bytes,
        }
    }

    /// Scores a continuation under the model: returns the total and per-token mean
    /// log-likelihood of `continuation` given `prompt`, processing the prompt with
    /// the engine's cache policy. Used by the few-shot evaluation (Table 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if prompt or continuation is empty.
    pub fn score_continuation(
        &mut self,
        prompt: &[u32],
        continuation: &[u32],
    ) -> Result<ContinuationScore, CoreError> {
        if continuation.is_empty() {
            return Err(CoreError::InvalidConfig(
                "continuation must be non-empty".into(),
            ));
        }
        let mut logits = self.process_prompt(prompt, continuation.len())?;
        let mut total_log_prob = 0.0f64;
        for (step, &tok) in continuation.iter().enumerate() {
            let log_probs = log_softmax(&logits);
            total_log_prob += f64::from(log_probs[tok as usize]);
            if step + 1 == continuation.len() {
                break;
            }
            let position = prompt.len() + step;
            logits = self.forward(tok, position, Phase::Generation, step, continuation.len())?;
            self.evict_to_budget()?;
        }
        Ok(ContinuationScore {
            total_log_prob,
            tokens: continuation.len(),
        })
    }
}

/// Log-likelihood of a continuation, as returned by
/// [`InferenceEngine::score_continuation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuationScore {
    /// Sum of per-token log-probabilities (natural log).
    pub total_log_prob: f64,
    /// Number of continuation tokens scored.
    pub tokens: usize,
}

impl ContinuationScore {
    /// Length-normalised log-likelihood (mean per token).
    pub fn per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.total_log_prob / self.tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::ModelFamily;
    use keyformer_core::spec::PolicySpec;

    fn prompt(len: usize) -> Vec<u32> {
        (0..len).map(|i| ((i * 13 + 5) % 120) as u32).collect()
    }

    #[test]
    fn full_attention_cache_grows_with_sequence() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        let out = engine.generate(&prompt(20), &GenerationConfig::new(5));
        assert_eq!(out.generated.len(), 5);
        // 20 prompt tokens + 4 generated tokens are cached (the final generated token
        // is never fed back).
        assert!(out.final_cache_slots.iter().all(|&n| n == 24));
    }

    #[test]
    fn budgeted_policy_caps_cache_size() {
        let model = ModelFamily::Tiny.build(1);
        let spec = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(spec),
        );
        let out = engine.generate(&prompt(40), &GenerationConfig::new(6));
        let budget = engine.budget().unwrap();
        assert_eq!(budget.capacity(), 20);
        assert!(
            out.final_cache_slots
                .iter()
                .all(|&n| n <= budget.capacity()),
            "cache exceeded budget: {:?}",
            out.final_cache_slots
        );
        assert!(out.final_cache_bytes < out.peak_cache_bytes);
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let model = ModelFamily::Tiny.build(2);
        let run = || {
            let mut engine = InferenceEngine::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(CacheBudgetSpec::new(0.6, 0.3).unwrap()),
            );
            engine
                .generate(&prompt(30), &GenerationConfig::new(8))
                .generated
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn eos_stops_generation_early() {
        let model = ModelFamily::Tiny.build(3);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        // Force EOS to whatever greedy picks first, so generation stops after 1 token.
        let first = engine
            .generate(&prompt(10), &GenerationConfig::new(1))
            .generated[0];
        engine.reset();
        let out = engine.generate(&prompt(10), &GenerationConfig::new(10).with_eos(first));
        assert_eq!(out.generated.len(), 1);
    }

    #[test]
    fn top_k_sampling_is_seed_deterministic_and_varies_with_seed() {
        let model = ModelFamily::Tiny.build(4);
        let gen = |seed: u64| {
            let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
            engine
                .generate(
                    &prompt(16),
                    &GenerationConfig::new(12).with_top_k(20, 10.0, seed),
                )
                .generated
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn empty_prompt_is_rejected() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        assert!(engine.process_prompt(&[], 4).is_err());
        assert!(engine.score_continuation(&prompt(4), &[]).is_err());
    }

    #[test]
    fn score_continuation_prefers_induction_consistent_text() {
        let model = ModelFamily::Tiny.build(7);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        // Prompt contains the bigram (40, 41) twice; a continuation that repeats it
        // should outscore one that pairs 40 with an unrelated token.
        let p = vec![7u32, 40, 41, 9, 3, 40, 41, 12, 40];
        let good = engine.score_continuation(&p, &[41, 9]).unwrap();
        engine.reset();
        let bad = engine.score_continuation(&p, &[77, 78]).unwrap();
        assert!(good.per_token() > bad.per_token());
        assert_eq!(good.tokens, 2);
    }

    #[test]
    fn stats_collection_is_opt_in() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        engine.generate(&prompt(8), &GenerationConfig::new(2));
        assert!(engine.stats().is_none());
        engine.enable_stats();
        engine.generate(&prompt(8), &GenerationConfig::new(2));
        assert!(!engine.stats().unwrap().is_empty());
    }

    #[test]
    fn reset_allows_reuse() {
        let model = ModelFamily::Tiny.build(1);
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::h2o_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let a = engine
            .generate(&prompt(24), &GenerationConfig::new(4))
            .generated;
        let b = engine
            .generate(&prompt(24), &GenerationConfig::new(4))
            .generated;
        assert_eq!(a, b, "engine state must not leak across requests");
    }
}

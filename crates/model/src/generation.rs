//! Generation configuration and outputs.

use serde::{Deserialize, Serialize};

/// How the next token is chosen from the logits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SamplingStrategy {
    /// Always pick the highest-logit token (the default; deterministic).
    #[default]
    Greedy,
    /// Sample from the top-`k` logits at the given temperature, using the engine's
    /// seeded PRNG.
    TopK {
        /// Number of candidate tokens.
        k: usize,
        /// Softmax temperature applied to the candidate logits.
        temperature: f32,
    },
}

/// Configuration of a generation request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Number of tokens to generate.
    pub max_new_tokens: usize,
    /// Optional end-of-sequence token that stops generation early.
    pub eos_token: Option<u32>,
    /// Token-selection strategy.
    pub sampling: SamplingStrategy,
    /// Seed for the sampling PRNG (ignored for greedy decoding).
    pub seed: u64,
    /// Additive penalty subtracted from the logits of tokens already generated in
    /// this request (and of the final prompt token). The untrained substrate's tied
    /// embedding readout otherwise favours repeating the current token — the same
    /// degeneration real deployments counter with a repetition penalty. `0.0`
    /// disables it.
    pub repetition_penalty: f32,
}

impl GenerationConfig {
    /// Default repetition penalty used by [`GenerationConfig::new`].
    pub const DEFAULT_REPETITION_PENALTY: f32 = 8.0;

    /// Greedy generation of `max_new_tokens` tokens with the default repetition
    /// penalty.
    pub fn new(max_new_tokens: usize) -> Self {
        GenerationConfig {
            max_new_tokens,
            eos_token: None,
            sampling: SamplingStrategy::Greedy,
            seed: 0,
            repetition_penalty: Self::DEFAULT_REPETITION_PENALTY,
        }
    }

    /// Sets an end-of-sequence token.
    pub fn with_eos(mut self, eos: u32) -> Self {
        self.eos_token = Some(eos);
        self
    }

    /// Switches to top-k sampling.
    pub fn with_top_k(mut self, k: usize, temperature: f32, seed: u64) -> Self {
        self.sampling = SamplingStrategy::TopK { k, temperature };
        self.seed = seed;
        self
    }

    /// Overrides the repetition penalty.
    pub fn with_repetition_penalty(mut self, penalty: f32) -> Self {
        self.repetition_penalty = penalty;
        self
    }
}

/// Result of a generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationOutput {
    /// Generated token ids (excluding the prompt).
    pub generated: Vec<u32>,
    /// Number of prompt tokens processed.
    pub prompt_len: usize,
    /// Per-layer live KV-cache slot count after generation finished.
    pub final_cache_slots: Vec<usize>,
    /// KV-cache byte footprint after generation finished.
    pub final_cache_bytes: usize,
    /// Peak KV-cache byte footprint observed during the request (reached at the end
    /// of the prompt phase, before the first eviction).
    pub peak_cache_bytes: usize,
}

impl GenerationOutput {
    /// Total sequence length (prompt + generated).
    pub fn total_len(&self) -> usize {
        self.prompt_len + self.generated.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = GenerationConfig::new(16)
            .with_eos(2)
            .with_top_k(5, 0.8, 42)
            .with_repetition_penalty(3.0);
        assert_eq!(c.max_new_tokens, 16);
        assert_eq!(c.eos_token, Some(2));
        assert_eq!(
            c.sampling,
            SamplingStrategy::TopK {
                k: 5,
                temperature: 0.8
            }
        );
        assert_eq!(c.seed, 42);
        assert_eq!(c.repetition_penalty, 3.0);
        assert_eq!(
            GenerationConfig::new(1).repetition_penalty,
            GenerationConfig::DEFAULT_REPETITION_PENALTY
        );
    }

    #[test]
    fn default_is_greedy() {
        assert_eq!(SamplingStrategy::default(), SamplingStrategy::Greedy);
        assert_eq!(GenerationConfig::new(4).sampling, SamplingStrategy::Greedy);
    }

    #[test]
    fn output_total_len() {
        let out = GenerationOutput {
            generated: vec![1, 2, 3],
            prompt_len: 10,
            final_cache_slots: vec![5, 5],
            final_cache_bytes: 100,
            peak_cache_bytes: 200,
        };
        assert_eq!(out.total_len(), 13);
    }
}

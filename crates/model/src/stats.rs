//! Attention-statistics collection: sparsity, attention-mass CDFs and heat maps.
//!
//! These instruments reproduce the paper's analysis figures: per-layer attention
//! sparsity (Figures 3a and 11), the cumulative attention-mass curve (Figure 3b) and
//! the layer × head heat maps (Figures 14–15).

use keyformer_core::diagnostics::{attention_mass_cdf, attention_sparsity, CdfPoint};
use keyformer_core::Phase;
use keyformer_tensor::Matrix;
use serde::{Deserialize, Serialize};

/// One recorded attention event: the post-softmax probabilities of a single head at a
/// single decode step, together with the original positions of the cache slots they
/// refer to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionRecord {
    /// Decoder layer.
    pub layer: usize,
    /// Attention head.
    pub head: usize,
    /// Decode step within its phase.
    pub step: usize,
    /// Phase the step belonged to.
    pub phase: Phase,
    /// Post-softmax attention probabilities over live cache slots.
    pub probs: Vec<f32>,
    /// Original sequence position of each cache slot.
    pub positions: Vec<usize>,
}

/// Collector of [`AttentionRecord`]s with the aggregation queries the experiments
/// need. Collection is opt-in (`InferenceEngine::enable_stats`) because recording
/// every head × step probability vector is memory-heavy for long prompts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AttentionStats {
    records: Vec<AttentionRecord>,
    num_layers: usize,
    num_heads: usize,
}

impl AttentionStats {
    /// Creates an empty collector for a model of the given shape.
    pub fn new(num_layers: usize, num_heads: usize) -> Self {
        AttentionStats {
            records: Vec::new(),
            num_layers,
            num_heads,
        }
    }

    /// Appends one record.
    pub fn record(&mut self, record: AttentionRecord) {
        self.records.push(record);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All raw records.
    pub fn records(&self) -> &[AttentionRecord] {
        &self.records
    }

    /// Mean attention sparsity per layer at the given threshold (fraction of tokens
    /// whose probability is at most `threshold` × the maximum probability) —
    /// Figures 3a / 11.
    pub fn sparsity_per_layer(&self, threshold: f32) -> Vec<f64> {
        let mut sums = vec![0.0f64; self.num_layers];
        let mut counts = vec![0usize; self.num_layers];
        for r in &self.records {
            if r.layer < self.num_layers && r.probs.len() > 1 {
                sums[r.layer] += attention_sparsity(&r.probs, threshold);
                counts[r.layer] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
            .collect()
    }

    /// Mean cumulative attention-mass curve over all records with at least
    /// `min_context` live slots — Figure 3b.
    pub fn mass_cdf(&self, fractions: &[f64], min_context: usize) -> Vec<CdfPoint> {
        let mut sums = vec![0.0f64; fractions.len()];
        let mut count = 0usize;
        for r in &self.records {
            if r.probs.len() < min_context {
                continue;
            }
            for (s, point) in sums.iter_mut().zip(attention_mass_cdf(&r.probs, fractions)) {
                *s += point.attention_mass;
            }
            count += 1;
        }
        fractions
            .iter()
            .zip(&sums)
            .map(|(&f, &s)| CdfPoint {
                token_fraction: f,
                attention_mass: if count == 0 { 0.0 } else { s / count as f64 },
            })
            .collect()
    }

    /// Attention heat map for one layer/head: rows are generation steps, columns are
    /// original sequence positions, values are attention probabilities (Figures
    /// 14–15). Rows cover only [`Phase::Generation`] records, matching the paper's
    /// plots whose y-axis is text generation.
    pub fn heatmap(&self, layer: usize, head: usize, seq_len: usize) -> Matrix {
        let rows: Vec<&AttentionRecord> = self
            .records
            .iter()
            .filter(|r| r.layer == layer && r.head == head && r.phase == Phase::Generation)
            .collect();
        let mut map = Matrix::zeros(rows.len(), seq_len);
        for (row_idx, r) in rows.iter().enumerate() {
            for (&pos, &p) in r.positions.iter().zip(&r.probs) {
                if pos < seq_len {
                    map.set(row_idx, pos, p);
                }
            }
        }
        map
    }

    /// Fraction of heat-map cells (over all layers/heads) with attention below
    /// `threshold` — a scalar summary of how empty the Figures 14–15 plots are.
    pub fn zero_fraction(&self, threshold: f32) -> f64 {
        let mut zero = 0usize;
        let mut total = 0usize;
        for r in &self.records {
            total += r.probs.len();
            zero += r.probs.iter().filter(|&&p| p < threshold).count();
        }
        if total == 0 {
            0.0
        } else {
            zero as f64 / total as f64
        }
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(layer: usize, head: usize, phase: Phase, probs: Vec<f32>) -> AttentionRecord {
        let positions = (0..probs.len()).collect();
        AttentionRecord {
            layer,
            head,
            step: 0,
            phase,
            probs,
            positions,
        }
    }

    #[test]
    fn sparsity_is_aggregated_per_layer() {
        let mut stats = AttentionStats::new(2, 1);
        stats.record(record(0, 0, Phase::Prompt, vec![0.97, 0.01, 0.01, 0.01]));
        stats.record(record(1, 0, Phase::Prompt, vec![0.25, 0.25, 0.25, 0.25]));
        let sparsity = stats.sparsity_per_layer(0.1);
        assert!(
            sparsity[0] > 0.5,
            "peaked layer should be sparse: {sparsity:?}"
        );
        assert!(
            sparsity[1] < 0.1,
            "uniform layer should be dense: {sparsity:?}"
        );
    }

    #[test]
    fn mass_cdf_respects_min_context() {
        let mut stats = AttentionStats::new(1, 1);
        stats.record(record(0, 0, Phase::Prompt, vec![0.5, 0.5]));
        stats.record(record(0, 0, Phase::Prompt, vec![0.7, 0.1, 0.1, 0.05, 0.05]));
        let curve = stats.mass_cdf(&[0.2, 1.0], 4);
        assert!((curve[1].attention_mass - 1.0).abs() < 1e-6);
        assert!(
            curve[0].attention_mass > 0.5,
            "top 20% should capture the peak"
        );
    }

    #[test]
    fn heatmap_places_probs_at_original_positions() {
        let mut stats = AttentionStats::new(1, 1);
        let mut r = record(0, 0, Phase::Generation, vec![0.9, 0.1]);
        r.positions = vec![3, 7];
        stats.record(r);
        let map = stats.heatmap(0, 0, 10);
        assert_eq!(map.shape(), (1, 10));
        assert!((map.get(0, 3) - 0.9).abs() < 1e-6);
        assert!((map.get(0, 7) - 0.1).abs() < 1e-6);
        assert_eq!(map.get(0, 0), 0.0);
    }

    #[test]
    fn heatmap_ignores_prompt_records_and_other_heads() {
        let mut stats = AttentionStats::new(1, 2);
        stats.record(record(0, 0, Phase::Prompt, vec![1.0]));
        stats.record(record(0, 1, Phase::Generation, vec![1.0]));
        assert_eq!(stats.heatmap(0, 0, 4).rows(), 0);
        assert_eq!(stats.heatmap(0, 1, 4).rows(), 1);
    }

    #[test]
    fn zero_fraction_counts_small_probs() {
        let mut stats = AttentionStats::new(1, 1);
        stats.record(record(0, 0, Phase::Generation, vec![0.95, 0.05, 0.0, 0.0]));
        assert!((stats.zero_fraction(0.01) - 0.5).abs() < 1e-9);
        assert_eq!(stats.len(), 1);
        stats.clear();
        assert!(stats.is_empty());
        assert_eq!(stats.zero_fraction(0.01), 0.0);
    }
}

//! # keyformer-model
//!
//! A from-scratch decoder-only transformer substrate that exercises the KV-cache
//! policies in [`keyformer_core`] on a genuine attention code path.
//!
//! The paper evaluates three model families that differ in their positional encoding:
//! GPT-J (RoPE), Cerebras-GPT (learned position embeddings) and MPT (ALiBi). The
//! substrate reproduces those three variants at laptop scale via
//! [`families::ModelFamily`]. Model weights are deterministic functions of a seed and
//! are structured (near-identity attention projections over near-orthogonal token
//! embeddings) so that attention behaves associatively: queries attend to cached
//! tokens with related embeddings. An explicit induction-style copy head
//! ([`config::ModelConfig::copy_strength`]) turns retained attention into next-token
//! evidence, which is what makes generation quality depend on *which tokens survive
//! in the KV cache* — the property every experiment in the paper measures.
//!
//! The main entry point is [`engine::InferenceEngine`], which couples a
//! [`model::TransformerModel`] with any [`keyformer_core::policy::KvCachePolicy`] and
//! a [`keyformer_core::budget::CacheBudgetSpec`], and exposes prompt processing,
//! greedy generation and continuation scoring.
//!
//! ```
//! use keyformer_core::{CacheBudgetSpec, PolicySpec};
//! use keyformer_model::engine::InferenceEngine;
//! use keyformer_model::families::ModelFamily;
//! use keyformer_model::generation::GenerationConfig;
//!
//! let model = ModelFamily::MptLike.build(42);
//! let policy = PolicySpec::keyformer_default().build().unwrap();
//! let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
//! let mut engine = InferenceEngine::new(&model, policy, Some(budget));
//!
//! let prompt: Vec<u32> = (1..40).map(|i| (i % 50) as u32).collect();
//! let out = engine.generate(&prompt, &GenerationConfig::new(8));
//! assert_eq!(out.generated.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod config;
pub mod decoder;
pub mod engine;
pub mod families;
pub mod generation;
pub mod model;
pub mod positional;
pub mod session;
pub mod stats;
pub mod weights;
pub mod workspace;

pub use config::{ModelConfig, PositionMode};
pub use engine::InferenceEngine;
pub use families::ModelFamily;
pub use generation::{GenerationConfig, GenerationOutput};
pub use model::TransformerModel;
pub use positional::PositionalEncoding;
pub use session::{Session, SessionStep};
pub use stats::AttentionStats;
pub use workspace::{ForwardPath, ForwardWorkspace};

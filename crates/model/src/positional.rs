//! Positional-encoding families: RoPE (GPT-J), ALiBi (MPT), learned (Cerebras-GPT).

use serde::{Deserialize, Serialize};

/// The positional-encoding family of a model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PositionalEncoding {
    /// Rotary position embeddings applied to queries and keys at attention time
    /// (used by GPT-J).
    Rope,
    /// Attention with Linear Biases: a per-head distance penalty added to the logits
    /// (used by MPT).
    Alibi,
    /// Learned absolute position embeddings added to the token embeddings
    /// (used by Cerebras-GPT).
    Learned,
}

impl std::fmt::Display for PositionalEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PositionalEncoding::Rope => write!(f, "rope"),
            PositionalEncoding::Alibi => write!(f, "alibi"),
            PositionalEncoding::Learned => write!(f, "learned"),
        }
    }
}

/// Applies rotary position embedding to a query/key vector in place.
///
/// Dimension pairs `(2i, 2i+1)` are rotated by `position * theta_i` with
/// `theta_i = base^(-2i/d)`, the standard RoPE formulation. Odd trailing dimensions
/// are left untouched.
pub fn apply_rope(vector: &mut [f32], position: usize, base: f32) {
    apply_rope_scaled(vector, position as f32, base);
}

/// [`apply_rope`] with a fractional (already-scaled) position.
///
/// The substrate models use RoPE *position interpolation*: positions are multiplied
/// by a scale < 1 before rotation so that content matches over long distances are not
/// washed out by high-frequency rotation. This mirrors the position-interpolation
/// technique used to extend the context of real RoPE models.
pub fn apply_rope_scaled(vector: &mut [f32], position: f32, base: f32) {
    let d = vector.len();
    let pairs = d / 2;
    for i in 0..pairs {
        let theta = position * base.powf(-(2.0 * i as f32) / d as f32);
        let (sin, cos) = theta.sin_cos();
        let a = vector[2 * i];
        let b = vector[2 * i + 1];
        vector[2 * i] = a * cos - b * sin;
        vector[2 * i + 1] = a * sin + b * cos;
    }
}

/// Standard RoPE base used by GPT-J-style models.
pub const ROPE_BASE: f32 = 10_000.0;

/// Returns the ALiBi slope for attention head `head` out of `num_heads`.
///
/// Uses the geometric sequence from the ALiBi paper: for `H` heads the slopes are
/// `2^(-8/H), 2^(-16/H), ...`.
pub fn alibi_slope(head: usize, num_heads: usize) -> f32 {
    let num_heads = num_heads.max(1);
    let exponent = -8.0 * (head as f32 + 1.0) / num_heads as f32;
    2.0_f32.powf(exponent)
}

/// The ALiBi bias added to the attention logit of a key at `key_pos` for a query at
/// `query_pos`: `-slope * (query_pos - key_pos)`, clamped at zero for future keys
/// (which a causal decoder never sees anyway).
pub fn alibi_bias(slope: f32, query_pos: usize, key_pos: usize) -> f32 {
    let distance = query_pos.saturating_sub(key_pos) as f32;
    -slope * distance
}

/// Deterministic sinusoidal table used to emulate *learned* absolute position
/// embeddings without training: position `p`, dimension `i` gets
/// `sin(p / 10000^(2i/d))` / `cos(...)` interleaved. The values are fixed, dense and
/// position-unique, which is all the substrate needs from a "learned" embedding.
pub fn learned_position_embedding(position: usize, d_model: usize) -> Vec<f32> {
    let mut out = vec![0.0; d_model];
    for (i, x) in out.iter_mut().enumerate() {
        let exponent = (2 * (i / 2)) as f32 / d_model as f32;
        let angle = position as f32 / ROPE_BASE.powf(exponent);
        *x = if i % 2 == 0 { angle.sin() } else { angle.cos() };
        // Scale down so position information does not swamp token identity: trained
        // models keep positional signal in a low-energy subspace relative to content.
        *x *= 0.02;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_tensor::vector::{dot, l2_norm};

    #[test]
    fn display_labels() {
        assert_eq!(PositionalEncoding::Rope.to_string(), "rope");
        assert_eq!(PositionalEncoding::Alibi.to_string(), "alibi");
        assert_eq!(PositionalEncoding::Learned.to_string(), "learned");
    }

    #[test]
    fn rope_at_position_zero_is_identity() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        let orig = v.clone();
        apply_rope(&mut v, 0, ROPE_BASE);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rope_preserves_norm() {
        let mut v = vec![0.5, -1.0, 2.0, 0.25, 1.5, -0.75];
        let before = l2_norm(&v);
        apply_rope(&mut v, 17, ROPE_BASE);
        assert!((l2_norm(&v) - before).abs() < 1e-4);
    }

    #[test]
    fn rope_dot_product_depends_on_relative_position() {
        // q at position p and k at position p+delta should give the same dot product
        // for any p (the relative-position property of RoPE).
        let q0 = vec![1.0, 0.5, -0.5, 0.25];
        let k0 = vec![0.3, -0.2, 0.8, 0.1];
        let dot_at = |qp: usize, kp: usize| {
            let mut q = q0.clone();
            let mut k = k0.clone();
            apply_rope(&mut q, qp, ROPE_BASE);
            apply_rope(&mut k, kp, ROPE_BASE);
            dot(&q, &k)
        };
        assert!((dot_at(5, 2) - dot_at(105, 102)).abs() < 1e-3);
        assert!((dot_at(8, 8) - dot_at(40, 40)).abs() < 1e-3);
    }

    #[test]
    fn alibi_slopes_decrease_geometrically() {
        let s: Vec<f32> = (0..8).map(|h| alibi_slope(h, 8)).collect();
        for pair in s.windows(2) {
            assert!(pair[1] < pair[0]);
            assert!((pair[1] / pair[0] - 0.5).abs() < 1e-5);
        }
        assert!((alibi_slope(0, 8) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn alibi_bias_penalises_distance() {
        let slope = alibi_slope(0, 4);
        assert_eq!(alibi_bias(slope, 10, 10), 0.0);
        assert!(alibi_bias(slope, 10, 0) < alibi_bias(slope, 10, 8));
        // Future keys saturate to zero distance rather than rewarding them.
        assert_eq!(alibi_bias(slope, 5, 9), 0.0);
    }

    #[test]
    fn learned_embeddings_are_position_unique_and_bounded() {
        let a = learned_position_embedding(3, 32);
        let b = learned_position_embedding(4, 32);
        assert_eq!(a.len(), 32);
        assert_ne!(a, b);
        assert!(a.iter().all(|x| x.abs() <= 0.1 + 1e-6));
    }
}

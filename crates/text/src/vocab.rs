//! The synthetic vocabulary shared by every task generator.
//!
//! Token ids are partitioned into fixed ranges so that generators and tests can
//! reason about token roles without string lookups:
//!
//! | range | role |
//! |---|---|
//! | `0..16` | special tokens (PAD, BOS, EOS, SEP, TLDR, speakers, …) |
//! | `16..16+N_FILLER` | filler words (the bulk of every document) |
//! | cue range | topic-marker words that key retrieval chains |
//! | fact range | content words that answer the chains |
//!
//! The whole vocabulary fits inside the substrate models' 1024-entry embedding table.

use serde::{Deserialize, Serialize};

/// Padding token.
pub const PAD: u32 = 0;
/// Beginning-of-sequence token.
pub const BOS: u32 = 1;
/// End-of-sequence token.
pub const EOS: u32 = 2;
/// Section separator.
pub const SEP: u32 = 3;
/// Summarization cue ("TL;DR").
pub const TLDR: u32 = 4;
/// Dialogue speaker A marker.
pub const SPEAKER_A: u32 = 5;
/// Dialogue speaker B marker.
pub const SPEAKER_B: u32 = 6;
/// Question marker for few-shot tasks.
pub const QUESTION: u32 = 7;
/// Answer marker for few-shot tasks.
pub const ANSWER: u32 = 8;
/// Separator between aspects in a summarization instruction's topic list.
pub const ASPECT_SEP: u32 = 9;
/// First non-special (content) token id. The substrate models' copy head only votes
/// for content tokens.
pub const FIRST_CONTENT_TOKEN: u32 = 16;

/// Number of filler words.
pub const NUM_FILLER: u32 = 284;
/// Number of cue (topic-marker) words.
pub const NUM_CUES: u32 = 300;
/// Number of fact words.
pub const NUM_FACTS: u32 = 424;

/// First filler id.
pub const FILLER_START: u32 = 16;
/// First cue id.
pub const CUE_START: u32 = FILLER_START + NUM_FILLER;
/// First fact id.
pub const FACT_START: u32 = CUE_START + NUM_CUES;
/// Total vocabulary size (must stay within the model embedding table).
pub const VOCAB_SIZE: u32 = FACT_START + NUM_FACTS;

/// The role a token id plays in the synthetic language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenRole {
    /// One of the reserved special tokens.
    Special,
    /// Filler word.
    Filler,
    /// Cue / topic-marker word.
    Cue,
    /// Fact word.
    Fact,
    /// Outside the vocabulary.
    Unknown,
}

/// The synthetic vocabulary: id ↔ word-string mapping plus role helpers.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary;

impl Vocabulary {
    /// Creates the vocabulary (stateless; all mappings are rule-based).
    pub fn new() -> Self {
        Vocabulary
    }

    /// Total number of token ids.
    pub fn size(&self) -> usize {
        VOCAB_SIZE as usize
    }

    /// The `i`-th filler token id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_FILLER`.
    pub fn filler(&self, i: u32) -> u32 {
        assert!(i < NUM_FILLER, "filler index {i} out of range");
        FILLER_START + i
    }

    /// The `i`-th cue token id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_CUES`.
    pub fn cue(&self, i: u32) -> u32 {
        assert!(i < NUM_CUES, "cue index {i} out of range");
        CUE_START + i
    }

    /// The `i`-th fact token id.
    ///
    /// # Panics
    ///
    /// Panics if `i >= NUM_FACTS`.
    pub fn fact(&self, i: u32) -> u32 {
        assert!(i < NUM_FACTS, "fact index {i} out of range");
        FACT_START + i
    }

    /// The role of a token id.
    pub fn role(&self, id: u32) -> TokenRole {
        match id {
            0..=15 => TokenRole::Special,
            _ if id < CUE_START => TokenRole::Filler,
            _ if id < FACT_START => TokenRole::Cue,
            _ if id < VOCAB_SIZE => TokenRole::Fact,
            _ => TokenRole::Unknown,
        }
    }

    /// Human-readable surface form of a token id.
    pub fn word(&self, id: u32) -> String {
        match id {
            PAD => "<pad>".to_string(),
            BOS => "<bos>".to_string(),
            EOS => "<eos>".to_string(),
            SEP => "<sep>".to_string(),
            TLDR => "<tldr>".to_string(),
            SPEAKER_A => "<speaker-a>".to_string(),
            SPEAKER_B => "<speaker-b>".to_string(),
            QUESTION => "<question>".to_string(),
            ANSWER => "<answer>".to_string(),
            ASPECT_SEP => "<aspect>".to_string(),
            10..=15 => format!("<reserved{id}>"),
            _ => match self.role(id) {
                TokenRole::Filler => format!("the{}", id - FILLER_START),
                TokenRole::Cue => format!("topic{}", id - CUE_START),
                TokenRole::Fact => format!("fact{}", id - FACT_START),
                _ => "<unk>".to_string(),
            },
        }
    }

    /// Parses a surface form back to a token id, returning `None` for unknown words.
    pub fn id(&self, word: &str) -> Option<u32> {
        match word {
            "<pad>" => Some(PAD),
            "<bos>" => Some(BOS),
            "<eos>" => Some(EOS),
            "<sep>" => Some(SEP),
            "<tldr>" => Some(TLDR),
            "<speaker-a>" => Some(SPEAKER_A),
            "<speaker-b>" => Some(SPEAKER_B),
            "<question>" => Some(QUESTION),
            "<answer>" => Some(ANSWER),
            "<aspect>" => Some(ASPECT_SEP),
            _ => {
                let parse = |prefix: &str, start: u32, count: u32| -> Option<u32> {
                    word.strip_prefix(prefix)
                        .and_then(|s| s.parse::<u32>().ok())
                        .filter(|&i| i < count)
                        .map(|i| start + i)
                };
                parse("the", FILLER_START, NUM_FILLER)
                    .or_else(|| parse("topic", CUE_START, NUM_CUES))
                    .or_else(|| parse("fact", FACT_START, NUM_FACTS))
                    .or_else(|| {
                        word.strip_prefix("<reserved")
                            .and_then(|s| s.strip_suffix('>'))
                            .and_then(|s| s.parse::<u32>().ok())
                            .filter(|&i| (10..=15).contains(&i))
                    })
            }
        }
    }

    /// Renders a token sequence as a space-separated string.
    pub fn render(&self, tokens: &[u32]) -> String {
        tokens
            .iter()
            .map(|&t| self.word(t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Token-range layout invariants, checked at compile time.
    const _: () = {
        assert!(FILLER_START >= 16);
        assert!(CUE_START > FILLER_START);
        assert!(FACT_START > CUE_START);
        assert!(VOCAB_SIZE <= 1024);
    };

    #[test]
    fn ranges_do_not_overlap_and_fit_model_vocab() {
        assert_eq!(
            VOCAB_SIZE, 1024,
            "vocabulary should use the full embedding table"
        );
    }

    #[test]
    fn roles_partition_the_id_space() {
        let v = Vocabulary::new();
        assert_eq!(v.role(EOS), TokenRole::Special);
        assert_eq!(v.role(FILLER_START), TokenRole::Filler);
        assert_eq!(v.role(CUE_START), TokenRole::Cue);
        assert_eq!(v.role(FACT_START), TokenRole::Fact);
        assert_eq!(v.role(VOCAB_SIZE), TokenRole::Unknown);
    }

    #[test]
    fn word_and_id_round_trip() {
        let v = Vocabulary::new();
        for id in [
            PAD, BOS, EOS, SEP, TLDR, SPEAKER_A, QUESTION, ANSWER, ASPECT_SEP,
        ] {
            assert_eq!(v.id(&v.word(id)), Some(id));
        }
        for id in [
            v.filler(0),
            v.filler(NUM_FILLER - 1),
            v.cue(0),
            v.cue(NUM_CUES - 1),
            v.fact(0),
            v.fact(NUM_FACTS - 1),
        ] {
            assert_eq!(v.id(&v.word(id)), Some(id), "round trip for {id}");
        }
        assert_eq!(v.id("nonsense"), None);
        assert_eq!(v.id("fact99999"), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cue_panics() {
        Vocabulary::new().cue(NUM_CUES);
    }

    #[test]
    fn render_joins_words() {
        let v = Vocabulary::new();
        let text = v.render(&[BOS, v.filler(1), v.cue(2), v.fact(3), EOS]);
        assert_eq!(text, "<bos> the1 topic2 fact3 <eos>");
    }

    #[test]
    fn size_matches_constant() {
        assert_eq!(Vocabulary::new().size(), VOCAB_SIZE as usize);
    }
}

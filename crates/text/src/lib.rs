//! # keyformer-text
//!
//! Text-side substrate of the Keyformer reproduction: a synthetic vocabulary and
//! tokenizer, a from-scratch ROUGE implementation, generators for the three task
//! families the paper evaluates (summarization, long-document summarization and
//! conversation), synthetic few-shot multiple-choice tasks standing in for the
//! lm-eval-harness suite, and evaluation drivers that wire everything to the
//! [`keyformer_model::InferenceEngine`].
//!
//! ## Why synthetic tasks reproduce the paper's behaviour
//!
//! Every dataset generator plants *retrieval chains* in its documents: trigrams
//! `(cue_i, fact_i, cue_{i+1})` scattered through filler text. The reference summary
//! (or reply) is the chain `cue_1 fact_1 cue_2 fact_2 …`, and the prompt ends with
//! the first cue. A decoder with an induction mechanism recovers the chain *only if
//! the planted trigrams are still in the KV cache when generation reaches them* —
//! which is precisely the property the paper's ROUGE-vs-cache-budget curves measure.
//! See DESIGN.md's substitution table for the full argument.
//!
//! ```
//! use keyformer_text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
//! use keyformer_text::rouge::rouge_scores;
//!
//! let dataset = SummarizationDataset::generate(&SummarizationSpec::small(), 1);
//! let sample = &dataset.samples()[0];
//! let perfect = rouge_scores(&sample.reference, &sample.reference);
//! assert!((perfect.rouge2.f1 - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datasets;
pub mod eval;
pub mod fewshot;
pub mod rouge;
pub mod tokenizer;
pub mod vocab;

pub use rouge::{rouge_scores, RougeScore, RougeScores};
pub use tokenizer::Tokenizer;
pub use vocab::Vocabulary;

//! Evaluation drivers: run a model + cache policy over a dataset and report the
//! paper's metrics (ROUGE for generation tasks, accuracy for few-shot tasks).

use crate::datasets::Sample;
use crate::fewshot::{accuracy, FewShotTask};
use crate::rouge::{rouge_scores, RougeScores};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_model::engine::InferenceEngine;
use keyformer_model::generation::GenerationConfig;
use keyformer_model::model::TransformerModel;
use serde::{Deserialize, Serialize};

/// How a policy is applied during an evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalSetting {
    /// The cache policy under test.
    pub policy: PolicySpec,
    /// KV-cache budget; `None` disables eviction (used for the Full baseline).
    pub budget: Option<CacheBudgetSpec>,
}

impl EvalSetting {
    /// The full-attention baseline: no eviction at all.
    pub fn full_attention() -> Self {
        EvalSetting {
            policy: PolicySpec::Full,
            budget: None,
        }
    }

    /// A budgeted setting with the given policy and KV-cache fraction, using the
    /// paper's default recent ratio.
    ///
    /// # Panics
    ///
    /// Panics if `cache_fraction` is outside `(0, 1]`.
    pub fn budgeted(policy: PolicySpec, cache_fraction: f64) -> Self {
        EvalSetting {
            policy,
            budget: Some(
                CacheBudgetSpec::with_fraction(cache_fraction).expect("invalid cache fraction"),
            ),
        }
    }

    /// Label combining policy and budget for use in result tables.
    pub fn label(&self) -> String {
        match self.budget {
            None => format!("{} (full cache)", self.policy.label()),
            Some(b) => format!(
                "{} ({:.0}% KV cache)",
                self.policy.label(),
                b.cache_fraction() * 100.0
            ),
        }
    }
}

/// Per-sample evaluation record for a generation task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// ROUGE scores of the generated continuation against the reference.
    pub rouge: RougeScores,
    /// Final KV-cache slot count (layer 0) after generation.
    pub final_cache_slots: usize,
    /// Peak KV-cache bytes during the request.
    pub peak_cache_bytes: usize,
    /// Final KV-cache bytes after eviction.
    pub final_cache_bytes: usize,
}

/// Aggregate result of evaluating one setting over a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationEval {
    /// The setting evaluated.
    pub setting: EvalSetting,
    /// Macro-averaged ROUGE scores.
    pub rouge: RougeScores,
    /// Per-sample records.
    pub records: Vec<GenerationRecord>,
}

impl GenerationEval {
    /// Mean final cache occupancy (slots in layer 0) across samples.
    pub fn mean_cache_slots(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.final_cache_slots as f64)
            .sum::<f64>()
            / self.records.len() as f64
    }
}

/// Runs greedy generation on every sample and scores it with ROUGE.
pub fn evaluate_generation(
    model: &TransformerModel,
    setting: &EvalSetting,
    samples: &[Sample],
) -> GenerationEval {
    let mut records = Vec::with_capacity(samples.len());
    let mut scores = Vec::with_capacity(samples.len());
    for sample in samples {
        let policy = setting.policy.build().expect("policy spec must be valid");
        let mut engine = InferenceEngine::new(model, policy, setting.budget);
        let config = GenerationConfig::new(sample.target_generation_len());
        let output = engine.generate(&sample.prompt, &config);
        let rouge = rouge_scores(&output.generated, &sample.reference);
        scores.push(rouge);
        records.push(GenerationRecord {
            rouge,
            final_cache_slots: output.final_cache_slots.first().copied().unwrap_or(0),
            peak_cache_bytes: output.peak_cache_bytes,
            final_cache_bytes: output.final_cache_bytes,
        });
    }
    GenerationEval {
        setting: *setting,
        rouge: RougeScores::mean(&scores),
        records,
    }
}

/// Result of a few-shot evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FewShotEval {
    /// The setting evaluated.
    pub setting: EvalSetting,
    /// Number of shots in each prompt.
    pub shots: usize,
    /// Fraction of items answered correctly.
    pub accuracy: f64,
}

/// Scores every item of a few-shot task by continuation likelihood and reports
/// accuracy.
pub fn evaluate_fewshot(
    model: &TransformerModel,
    setting: &EvalSetting,
    task: &FewShotTask,
    shots: usize,
) -> FewShotEval {
    let exemplars = task.shots(shots);
    let mut outcomes = Vec::with_capacity(task.items().len());
    for item in task.items() {
        let (prompt, continuations) = item.build_prompt(exemplars);
        let mut best: Option<(usize, f64)> = None;
        for (choice_idx, continuation) in continuations.iter().enumerate() {
            let policy = setting.policy.build().expect("policy spec must be valid");
            let mut engine = InferenceEngine::new(model, policy, setting.budget);
            let score = engine
                .score_continuation(&prompt, continuation)
                .expect("scoring failed")
                .per_token();
            match best {
                Some((_, b)) if score <= b => {}
                _ => best = Some((choice_idx, score)),
            }
        }
        outcomes.push(best.map(|(idx, _)| idx) == Some(item.correct));
    }
    FewShotEval {
        setting: *setting,
        shots,
        accuracy: accuracy(&outcomes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::summarization::{SummarizationDataset, SummarizationSpec};
    use crate::fewshot::TaskKind;
    use keyformer_model::families::ModelFamily;

    fn tiny_samples() -> Vec<Sample> {
        let spec = SummarizationSpec {
            article_len: 60,
            num_facts: 3,
            filler_pool: 16,
            plant_span: 0.7,
            seed: 42,
        };
        SummarizationDataset::generate(&spec, 2).samples().to_vec()
    }

    #[test]
    fn setting_labels_mention_policy_and_budget() {
        assert!(EvalSetting::full_attention().label().contains("full cache"));
        let s = EvalSetting::budgeted(PolicySpec::h2o_default(), 0.5);
        assert!(s.label().contains("50%"));
        assert!(s.label().contains("H2O"));
    }

    #[test]
    #[should_panic(expected = "invalid cache fraction")]
    fn budgeted_rejects_bad_fraction() {
        EvalSetting::budgeted(PolicySpec::Full, 0.0);
    }

    #[test]
    fn full_attention_recovers_most_of_the_chain() {
        let model = ModelFamily::GptJLike.build(3);
        let eval = evaluate_generation(&model, &EvalSetting::full_attention(), &tiny_samples());
        assert!(
            eval.rouge.rouge1.f1 > 0.5,
            "full attention should recover most facts, got {:?}",
            eval.rouge.rouge1
        );
        assert_eq!(eval.records.len(), 2);
        assert!(eval.mean_cache_slots() > 60.0);
    }

    #[test]
    fn window_attention_loses_the_chain() {
        let model = ModelFamily::GptJLike.build(3);
        let full = evaluate_generation(&model, &EvalSetting::full_attention(), &tiny_samples());
        let window = evaluate_generation(
            &model,
            &EvalSetting::budgeted(PolicySpec::Window, 0.5),
            &tiny_samples(),
        );
        assert!(
            window.rouge.rouge2.f1 < full.rouge.rouge2.f1,
            "window ({:?}) should trail full attention ({:?})",
            window.rouge.rouge2,
            full.rouge.rouge2
        );
        assert!(window.mean_cache_slots() < full.mean_cache_slots());
    }

    #[test]
    fn fewshot_eval_runs_and_reports_accuracy() {
        let model = ModelFamily::MptLike.build(5);
        let task = FewShotTask::generate(TaskKind::Copa, 4, 11);
        let eval = evaluate_fewshot(&model, &EvalSetting::full_attention(), &task, 0);
        assert!((0.0..=1.0).contains(&eval.accuracy));
        assert_eq!(eval.shots, 0);
    }
}

//! A whitespace tokenizer over the synthetic vocabulary.

use crate::vocab::{Vocabulary, EOS};

/// Tokenizes whitespace-separated surface forms into token ids and back.
///
/// Unknown words map to the end-of-sequence token rather than erroring, mirroring the
/// forgiving behaviour of real tokenizers' UNK handling.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    vocab: Vocabulary,
}

impl Tokenizer {
    /// Creates a tokenizer over the synthetic vocabulary.
    pub fn new() -> Self {
        Tokenizer {
            vocab: Vocabulary::new(),
        }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Encodes a space-separated string into token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        text.split_whitespace()
            .map(|w| self.vocab.id(w).unwrap_or(EOS))
            .collect()
    }

    /// Decodes token ids back into a space-separated string.
    pub fn decode(&self, tokens: &[u32]) -> String {
        self.vocab.render(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::{BOS, EOS, TLDR};

    #[test]
    fn encode_decode_round_trip() {
        let t = Tokenizer::new();
        let text = "<bos> the3 topic7 fact12 <tldr> <eos>";
        let ids = t.encode(text);
        assert_eq!(ids[0], BOS);
        assert_eq!(ids[4], TLDR);
        assert_eq!(t.decode(&ids), text);
    }

    #[test]
    fn unknown_words_become_eos() {
        let t = Tokenizer::new();
        assert_eq!(t.encode("gibberish"), vec![EOS]);
        assert_eq!(t.encode(""), Vec::<u32>::new());
    }

    #[test]
    fn whitespace_is_normalised() {
        let t = Tokenizer::new();
        assert_eq!(t.encode("  the1   the2 "), vec![17, 18]);
    }
}

//! Synthetic few-shot multiple-choice tasks (the lm-eval-harness stand-in, Table 2).
//!
//! Each item plants an evidence bigram `(cue, answer)` inside a context passage, asks
//! about the cue, and offers the true answer among distractor facts. The model scores
//! each choice by continuation log-likelihood; it can only prefer the right answer if
//! the evidence survived in the KV cache. Few-shot prompts prepend solved examples,
//! lengthening the prompt exactly the way real k-shot evaluation does.

use crate::datasets::draw_filler;
use crate::vocab::{Vocabulary, ANSWER, BOS, NUM_FACTS, QUESTION, SEP};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The four task profiles, mirroring the shapes of the paper's lm-eval tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Two choices, short context (COPA-like).
    Copa,
    /// Two choices, medium context (PIQA-like).
    Piqa,
    /// Four choices, medium context (OpenBookQA-like).
    OpenBookQa,
    /// Two choices, long context with both candidates mentioned (Winogrande-like).
    Winogrande,
}

impl TaskKind {
    /// All four tasks, in the order the paper's Table 2 lists them.
    pub fn all() -> [TaskKind; 4] {
        [
            TaskKind::Copa,
            TaskKind::OpenBookQa,
            TaskKind::Winogrande,
            TaskKind::Piqa,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TaskKind::Copa => "COPA",
            TaskKind::Piqa => "PIQA",
            TaskKind::OpenBookQa => "OpenBookQA",
            TaskKind::Winogrande => "Winogrande",
        }
    }

    /// Number of answer choices.
    pub fn num_choices(&self) -> usize {
        match self {
            TaskKind::OpenBookQa => 4,
            _ => 2,
        }
    }

    /// Context length in filler tokens.
    pub fn context_len(&self) -> usize {
        match self {
            TaskKind::Copa => 24,
            TaskKind::Piqa => 40,
            TaskKind::OpenBookQa => 48,
            TaskKind::Winogrande => 64,
        }
    }
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McItem {
    /// Context passage containing the evidence bigram.
    pub context: Vec<u32>,
    /// The cue token the question asks about.
    pub cue: u32,
    /// Candidate answer tokens.
    pub choices: Vec<u32>,
    /// Index of the correct choice.
    pub correct: usize,
}

impl McItem {
    /// Builds the scoring prompt for this item preceded by `shots` solved examples,
    /// plus the per-choice continuations to score.
    pub fn build_prompt(&self, shots: &[McItem]) -> (Vec<u32>, Vec<Vec<u32>>) {
        let mut prompt = vec![BOS];
        for shot in shots {
            prompt.extend_from_slice(&shot.context);
            prompt.push(QUESTION);
            prompt.push(shot.cue);
            prompt.push(ANSWER);
            prompt.push(shot.choices[shot.correct]);
            prompt.push(SEP);
        }
        prompt.extend_from_slice(&self.context);
        prompt.push(QUESTION);
        prompt.push(self.cue);
        prompt.push(ANSWER);
        let continuations = self.choices.iter().map(|&c| vec![c]).collect();
        (prompt, continuations)
    }
}

/// A generated task: a pool of few-shot exemplars plus evaluation items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FewShotTask {
    kind: TaskKind,
    exemplars: Vec<McItem>,
    items: Vec<McItem>,
}

impl FewShotTask {
    /// Generates a task with `num_items` evaluation items and an exemplar pool large
    /// enough for 5-shot prompts.
    pub fn generate(kind: TaskKind, num_items: usize, seed: u64) -> Self {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfe57);
        let exemplars = (0..8).map(|_| build_item(&vocab, kind, &mut rng)).collect();
        let items = (0..num_items)
            .map(|_| build_item(&vocab, kind, &mut rng))
            .collect();
        FewShotTask {
            kind,
            exemplars,
            items,
        }
    }

    /// The task profile.
    pub fn kind(&self) -> TaskKind {
        self.kind
    }

    /// Evaluation items.
    pub fn items(&self) -> &[McItem] {
        &self.items
    }

    /// The first `shots` exemplars (used to build k-shot prompts).
    ///
    /// # Panics
    ///
    /// Panics if `shots` exceeds the exemplar pool (8).
    pub fn shots(&self, shots: usize) -> &[McItem] {
        assert!(shots <= self.exemplars.len(), "at most 8 shots supported");
        &self.exemplars[..shots]
    }
}

fn build_item(vocab: &Vocabulary, kind: TaskKind, rng: &mut StdRng) -> McItem {
    let cue = vocab.cue(rng.gen_range(0..crate::vocab::NUM_CUES));
    let num_choices = kind.num_choices();
    let mut fact_ids: Vec<u32> = (0..NUM_FACTS).collect();
    fact_ids.shuffle(rng);
    let choices: Vec<u32> = fact_ids[..num_choices]
        .iter()
        .map(|&i| vocab.fact(i))
        .collect();
    let correct = rng.gen_range(0..num_choices);

    let len = kind.context_len();
    let mut context: Vec<u32> = (0..len).map(|_| draw_filler(vocab, 32, rng)).collect();
    // Plant the evidence bigram (cue, correct answer) in the first half of the
    // context, so small recent windows lose it.
    let plant_pos = rng.gen_range(0..(len / 2).max(1));
    context[plant_pos] = cue;
    context[plant_pos + 1] = choices[correct];
    // Winogrande-style ambiguity: a distractor choice also appears in the context,
    // but *not* adjacent to the cue.
    if kind == TaskKind::Winogrande {
        let distractor = choices[(correct + 1) % num_choices];
        let far_pos = (len * 3 / 4).min(len - 1);
        context[far_pos] = distractor;
    }
    McItem {
        context,
        cue,
        choices,
        correct,
    }
}

/// Accuracy of a set of boolean outcomes (fraction correct).
pub fn accuracy(outcomes: &[bool]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|&&b| b).count() as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::TokenRole;

    #[test]
    fn task_kinds_have_expected_shapes() {
        assert_eq!(TaskKind::Copa.num_choices(), 2);
        assert_eq!(TaskKind::OpenBookQa.num_choices(), 4);
        assert!(TaskKind::Winogrande.context_len() > TaskKind::Copa.context_len());
        assert_eq!(TaskKind::all().len(), 4);
        assert_eq!(TaskKind::Piqa.to_string(), "PIQA");
    }

    #[test]
    fn items_contain_their_evidence() {
        let task = FewShotTask::generate(TaskKind::OpenBookQa, 10, 3);
        assert_eq!(task.items().len(), 10);
        for item in task.items() {
            let answer = item.choices[item.correct];
            let cue_pos = item.context.iter().position(|&t| t == item.cue).unwrap();
            assert_eq!(item.context[cue_pos + 1], answer, "evidence bigram broken");
            assert_eq!(item.choices.len(), 4);
        }
    }

    #[test]
    fn winogrande_plants_a_distractor_too() {
        let task = FewShotTask::generate(TaskKind::Winogrande, 10, 4);
        for item in task.items() {
            let distractor = item.choices[(item.correct + 1) % item.choices.len()];
            assert!(item.context.contains(&distractor));
        }
    }

    #[test]
    fn prompt_construction_zero_and_five_shot() {
        let task = FewShotTask::generate(TaskKind::Copa, 2, 5);
        let item = &task.items()[0];
        let (zero_prompt, conts) = item.build_prompt(task.shots(0));
        let (five_prompt, _) = item.build_prompt(task.shots(5));
        assert!(five_prompt.len() > zero_prompt.len());
        assert_eq!(conts.len(), 2);
        assert_eq!(zero_prompt[0], BOS);
        assert_eq!(*zero_prompt.last().unwrap(), ANSWER);
        // Each exemplar contributes its context + 4 framing tokens + SEP.
        let vocab = Vocabulary::new();
        assert_eq!(vocab.role(conts[0][0]), TokenRole::Fact);
    }

    #[test]
    #[should_panic(expected = "at most 8 shots")]
    fn too_many_shots_panics() {
        let task = FewShotTask::generate(TaskKind::Copa, 1, 5);
        task.shots(9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FewShotTask::generate(TaskKind::Piqa, 5, 9);
        let b = FewShotTask::generate(TaskKind::Piqa, 5, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[true, true, false, false]), 0.5);
        assert_eq!(accuracy(&[]), 0.0);
        assert_eq!(accuracy(&[true]), 1.0);
    }
}

//! ROUGE-1, ROUGE-2 and ROUGE-L over token-id sequences.
//!
//! The paper reports ROUGE scores for every accuracy experiment and adopts the MLPerf
//! acceptance band (generated scores within 99% of the full-attention baseline).
//! The implementation follows Lin (2004): n-gram recall/precision/F1 with clipped
//! counts, and longest-common-subsequence for ROUGE-L.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Precision / recall / F1 triple for one ROUGE variant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RougeScore {
    /// Fraction of candidate n-grams that appear in the reference.
    pub precision: f64,
    /// Fraction of reference n-grams that appear in the candidate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl RougeScore {
    fn from_counts(overlap: usize, candidate_total: usize, reference_total: usize) -> Self {
        let precision = if candidate_total == 0 {
            0.0
        } else {
            overlap as f64 / candidate_total as f64
        };
        let recall = if reference_total == 0 {
            0.0
        } else {
            overlap as f64 / reference_total as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        RougeScore {
            precision,
            recall,
            f1,
        }
    }
}

/// The three ROUGE variants the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RougeScores {
    /// Unigram overlap.
    pub rouge1: RougeScore,
    /// Bigram overlap.
    pub rouge2: RougeScore,
    /// Longest-common-subsequence overlap.
    pub rouge_l: RougeScore,
}

impl RougeScores {
    /// Averages a set of per-sample scores (macro average over F1/precision/recall).
    pub fn mean(scores: &[RougeScores]) -> RougeScores {
        if scores.is_empty() {
            return RougeScores::default();
        }
        let n = scores.len() as f64;
        let avg = |extract: &dyn Fn(&RougeScores) -> RougeScore| {
            let mut out = RougeScore::default();
            for s in scores {
                let v = extract(s);
                out.precision += v.precision / n;
                out.recall += v.recall / n;
                out.f1 += v.f1 / n;
            }
            out
        };
        RougeScores {
            rouge1: avg(&|s| s.rouge1),
            rouge2: avg(&|s| s.rouge2),
            rouge_l: avg(&|s| s.rouge_l),
        }
    }
}

fn ngram_counts(tokens: &[u32], n: usize) -> HashMap<&[u32], usize> {
    let mut counts: HashMap<&[u32], usize> = HashMap::new();
    if tokens.len() >= n && n > 0 {
        for window in tokens.windows(n) {
            *counts.entry(window).or_insert(0) += 1;
        }
    }
    counts
}

fn ngram_overlap(candidate: &[u32], reference: &[u32], n: usize) -> RougeScore {
    let cand = ngram_counts(candidate, n);
    let refc = ngram_counts(reference, n);
    let overlap: usize = refc
        .iter()
        .map(|(gram, &rc)| cand.get(gram).copied().unwrap_or(0).min(rc))
        .sum();
    let cand_total = candidate.len().saturating_sub(n - 1);
    let ref_total = reference.len().saturating_sub(n - 1);
    RougeScore::from_counts(overlap, cand_total, ref_total)
}

/// Length of the longest common subsequence between two token sequences.
pub fn lcs_length(a: &[u32], b: &[u32]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for &x in a {
        for (j, &y) in b.iter().enumerate() {
            curr[j + 1] = if x == y {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Computes ROUGE-1, ROUGE-2 and ROUGE-L of `candidate` against `reference`.
pub fn rouge_scores(candidate: &[u32], reference: &[u32]) -> RougeScores {
    let lcs = lcs_length(candidate, reference);
    RougeScores {
        rouge1: ngram_overlap(candidate, reference, 1),
        rouge2: ngram_overlap(candidate, reference, 2),
        rouge_l: RougeScore::from_counts(lcs, candidate.len(), reference.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_score_one() {
        let seq = [1u32, 2, 3, 4, 5];
        let s = rouge_scores(&seq, &seq);
        assert!((s.rouge1.f1 - 1.0).abs() < 1e-9);
        assert!((s.rouge2.f1 - 1.0).abs() < 1e-9);
        assert!((s.rouge_l.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_sequences_score_zero() {
        let s = rouge_scores(&[1, 2, 3], &[4, 5, 6]);
        assert_eq!(s.rouge1.f1, 0.0);
        assert_eq!(s.rouge2.f1, 0.0);
        assert_eq!(s.rouge_l.f1, 0.0);
    }

    #[test]
    fn partial_overlap_known_values() {
        // candidate: "1 2 3 4", reference: "1 2 5 4" -> unigram overlap 3/4.
        let s = rouge_scores(&[1, 2, 3, 4], &[1, 2, 5, 4]);
        assert!((s.rouge1.precision - 0.75).abs() < 1e-9);
        assert!((s.rouge1.recall - 0.75).abs() < 1e-9);
        // bigrams: candidate {12,23,34}, reference {12,25,54} -> overlap 1/3.
        assert!((s.rouge2.f1 - 1.0 / 3.0).abs() < 1e-9);
        // LCS = [1,2,4] -> 3/4.
        assert!((s.rouge_l.f1 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn clipped_counts_prevent_repetition_gaming() {
        // Candidate repeats a reference unigram many times; precision must suffer.
        let s = rouge_scores(&[7, 7, 7, 7], &[7, 8]);
        assert!((s.rouge1.recall - 0.5).abs() < 1e-9);
        assert!((s.rouge1.precision - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_safe() {
        let s = rouge_scores(&[], &[1, 2]);
        assert_eq!(s.rouge1.f1, 0.0);
        let s = rouge_scores(&[1, 2], &[]);
        assert_eq!(s.rouge1.f1, 0.0);
        let s = rouge_scores(&[], &[]);
        assert_eq!(s.rouge_l.f1, 0.0);
    }

    #[test]
    fn single_token_sequences_have_no_bigrams() {
        let s = rouge_scores(&[5], &[5]);
        assert!((s.rouge1.f1 - 1.0).abs() < 1e-9);
        assert_eq!(s.rouge2.f1, 0.0);
    }

    #[test]
    fn lcs_known_values() {
        assert_eq!(lcs_length(&[1, 3, 5, 7], &[1, 5, 7, 9]), 3);
        assert_eq!(lcs_length(&[1, 2], &[3, 4]), 0);
        assert_eq!(lcs_length(&[], &[1]), 0);
        assert_eq!(lcs_length(&[2, 1, 2], &[1, 2, 1]), 2);
    }

    #[test]
    fn mean_aggregates_samples() {
        let a = rouge_scores(&[1, 2, 3], &[1, 2, 3]);
        let b = rouge_scores(&[1, 2, 3], &[4, 5, 6]);
        let m = RougeScores::mean(&[a, b]);
        assert!((m.rouge1.f1 - 0.5).abs() < 1e-9);
        assert_eq!(RougeScores::mean(&[]), RougeScores::default());
    }

    #[test]
    fn order_matters_for_rouge_l_but_not_rouge_1() {
        let forward = rouge_scores(&[1, 2, 3, 4], &[1, 2, 3, 4]);
        let reversed = rouge_scores(&[4, 3, 2, 1], &[1, 2, 3, 4]);
        assert!((reversed.rouge1.f1 - forward.rouge1.f1).abs() < 1e-9);
        assert!(reversed.rouge_l.f1 < forward.rouge_l.f1);
    }
}

//! Synthetic multi-turn conversation (the SODA stand-in).
//!
//! A dialogue between two speakers in which facts are mentioned across the earlier
//! turns and the final turn asks speaker B to recap them. The reply chain works
//! exactly like the summarization chain, but the salient content is interleaved with
//! dialogue structure tokens (speaker markers, short turns), giving the conversation
//! task its own prompt shape as in the paper's SODA evaluation.

use super::{instruction_suffix, instruction_suffix_len, plant_chain, Chain, Sample};
use crate::vocab::{Vocabulary, BOS, SEP, SPEAKER_A, SPEAKER_B};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the dialogue generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DialogueSpec {
    /// Number of dialogue turns before the recap request.
    pub num_turns: usize,
    /// Filler tokens per turn.
    pub turn_len: usize,
    /// Number of facts mentioned across the dialogue.
    pub num_facts: usize,
    /// Size of the filler-word working set.
    pub filler_pool: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl DialogueSpec {
    /// A small configuration used by unit tests.
    pub fn small() -> Self {
        DialogueSpec {
            num_turns: 4,
            turn_len: 24,
            num_facts: 4,
            filler_pool: 24,
            seed: 555,
        }
    }

    /// The configuration used by the conversation experiments (Figure 7, bottom row).
    pub fn paper_default() -> Self {
        DialogueSpec {
            num_turns: 8,
            turn_len: 36,
            num_facts: 6,
            filler_pool: 150,
            seed: 20_240_503,
        }
    }

    /// Length of the dialogue body in tokens (turn bodies only, before speaker
    /// markers and framing).
    pub fn body_len(&self) -> usize {
        self.num_turns * self.turn_len
    }

    /// Total prompt length (body + one speaker marker per turn + BOS + SEP + recap
    /// speaker + summarization instruction).
    pub fn prompt_len(&self) -> usize {
        1 + self.num_turns * (self.turn_len + 1) + 2 + instruction_suffix_len(self.num_facts)
    }
}

/// A generated dialogue dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DialogueDataset {
    spec: DialogueSpec,
    samples: Vec<Sample>,
}

impl DialogueDataset {
    /// Generates `num_samples` dialogues.
    pub fn generate(spec: &DialogueSpec, num_samples: usize) -> Self {
        let vocab = Vocabulary::new();
        let samples = (0..num_samples)
            .map(|i| build_sample(&vocab, spec, spec.seed.wrapping_add(i as u64)))
            .collect();
        DialogueDataset {
            spec: *spec,
            samples,
        }
    }

    /// The generated samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The generation spec.
    pub fn spec(&self) -> &DialogueSpec {
        &self.spec
    }
}

fn build_sample(vocab: &Vocabulary, spec: &DialogueSpec, seed: u64) -> Sample {
    let mut rng = StdRng::seed_from_u64(seed);
    let chain = Chain::sample(vocab, spec.num_facts, &mut rng);
    // Build the whole dialogue body as one slab so the chain planter can spread the
    // salient blocks across the early turns, then slice it into turns. The chain is
    // confined to the first 60% of the slab so the final turns carry no facts (a
    // pure recent-window policy must therefore lose them).
    let slab = plant_chain(
        vocab,
        &chain,
        spec.body_len(),
        spec.filler_pool,
        0.6,
        &mut rng,
    );
    let mut prompt = Vec::with_capacity(spec.prompt_len());
    prompt.push(BOS);
    for (turn, chunk) in slab.chunks(spec.turn_len).enumerate() {
        prompt.push(if turn % 2 == 0 { SPEAKER_A } else { SPEAKER_B });
        prompt.extend_from_slice(chunk);
    }
    // Recap request: speaker B is asked to enumerate the discussed topics.
    prompt.push(SEP);
    prompt.push(SPEAKER_B);
    prompt.extend_from_slice(&instruction_suffix(&chain));
    Sample {
        prompt,
        reference: chain.reference(),
        num_facts: spec.num_facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::adjacency_count;
    use crate::vocab::TokenRole;

    #[test]
    fn dialogue_has_alternating_speakers() {
        let spec = DialogueSpec::small();
        let ds = DialogueDataset::generate(&spec, 1);
        let s = &ds.samples()[0];
        let speaker_count = s
            .prompt
            .iter()
            .filter(|&&t| t == SPEAKER_A || t == SPEAKER_B)
            .count();
        // One marker per turn plus the final recap speaker.
        assert_eq!(speaker_count, spec.num_turns + 1);
        assert_eq!(s.prompt.len(), spec.prompt_len());
    }

    #[test]
    fn facts_are_confined_to_the_early_turns() {
        let spec = DialogueSpec::paper_default();
        let ds = DialogueDataset::generate(&spec, 3);
        let vocab = Vocabulary::new();
        for s in ds.samples() {
            let body_end = s.prompt.len() - 3;
            let last_fact_pos = s
                .prompt
                .iter()
                .enumerate()
                .filter(|(_, &t)| vocab.role(t) == TokenRole::Fact)
                .map(|(i, _)| i)
                .max()
                .expect("dialogue must contain facts");
            assert!(
                last_fact_pos < body_end * 3 / 4,
                "facts leaked into the final turns"
            );
        }
    }

    #[test]
    fn most_chain_adjacencies_survive_turn_slicing() {
        // Speaker markers are inserted every turn_len tokens and can split a planted
        // block; the chain must still be substantially recoverable.
        let spec = DialogueSpec::paper_default();
        let ds = DialogueDataset::generate(&spec, 5);
        for s in ds.samples() {
            let mut walk = vec![*s.prompt.last().unwrap()];
            walk.extend_from_slice(&s.reference);
            let intact = walk
                .windows(2)
                .filter(|pair| adjacency_count(&s.prompt, pair[0], pair[1]) >= 1)
                .count();
            assert!(
                intact * 10 >= (walk.len() - 1) * 8,
                "too many chain adjacencies broken: {intact}/{}",
                walk.len() - 1
            );
        }
    }

    #[test]
    fn reference_and_fact_count_are_consistent() {
        let spec = DialogueSpec::paper_default();
        let ds = DialogueDataset::generate(&spec, 2);
        for s in ds.samples() {
            assert_eq!(s.num_facts, spec.num_facts);
            assert_eq!(s.reference.len(), 2 * spec.num_facts - 1);
            assert_eq!(s.target_generation_len(), s.reference.len());
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = DialogueSpec::small();
        let a = DialogueDataset::generate(&spec, 2);
        let b = DialogueDataset::generate(&spec, 2);
        assert_eq!(a, b);
        let different = DialogueDataset::generate(
            &DialogueSpec {
                seed: spec.seed + 1,
                ..spec
            },
            2,
        );
        assert_ne!(a.samples()[0], different.samples()[0]);
    }
}

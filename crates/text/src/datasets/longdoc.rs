//! Synthetic long-document summarization (the GovReport stand-in, Figure 8).
//!
//! Long multi-section reports with many salient facts spread across the whole
//! document. The prompt is several times longer than the news-article generator's,
//! which is what stresses small KV-cache budgets the way the paper's 8k-token
//! GovReport experiment does.

use super::{instruction_suffix, instruction_suffix_len, plant_chain, Chain, Sample};
use crate::vocab::{Vocabulary, BOS, SEP};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the long-document generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LongDocSpec {
    /// Number of sections per report (sections only partition the body; the salient
    /// chain is spread over the whole document).
    pub num_sections: usize,
    /// Body tokens per section.
    pub section_len: usize,
    /// Salient facts planted per section.
    pub facts_per_section: usize,
    /// Size of the filler-word working set.
    pub filler_pool: u32,
    /// Base RNG seed.
    pub seed: u64,
}

impl LongDocSpec {
    /// A small configuration used by unit tests.
    pub fn small() -> Self {
        LongDocSpec {
            num_sections: 3,
            section_len: 80,
            facts_per_section: 2,
            filler_pool: 30,
            seed: 777,
        }
    }

    /// The configuration used by the Figure 8 experiment: a report several times
    /// longer than the news articles, with facts in every section.
    pub fn paper_default() -> Self {
        LongDocSpec {
            num_sections: 6,
            section_len: 160,
            facts_per_section: 2,
            filler_pool: 250,
            seed: 20_240_502,
        }
    }

    /// Total number of planted facts per report.
    pub fn total_facts(&self) -> usize {
        self.num_sections * self.facts_per_section
    }

    /// Total body length (before framing tokens).
    pub fn body_len(&self) -> usize {
        self.num_sections * self.section_len
    }

    /// Total prompt length (body + framing + summarization instruction).
    pub fn prompt_len(&self) -> usize {
        self.body_len() + 2 + instruction_suffix_len(self.total_facts())
    }
}

/// A generated long-document dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LongDocDataset {
    spec: LongDocSpec,
    samples: Vec<Sample>,
}

impl LongDocDataset {
    /// Generates `num_samples` reports.
    pub fn generate(spec: &LongDocSpec, num_samples: usize) -> Self {
        let vocab = Vocabulary::new();
        let samples = (0..num_samples)
            .map(|i| build_sample(&vocab, spec, spec.seed.wrapping_add(i as u64)))
            .collect();
        LongDocDataset {
            spec: *spec,
            samples,
        }
    }

    /// The generated samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The generation spec.
    pub fn spec(&self) -> &LongDocSpec {
        &self.spec
    }
}

fn build_sample(vocab: &Vocabulary, spec: &LongDocSpec, seed: u64) -> Sample {
    let mut rng = StdRng::seed_from_u64(seed);
    let total_facts = spec.total_facts();
    let chain = Chain::sample(vocab, total_facts, &mut rng);
    // Facts are spread over ~90% of the report: the chain must be recovered from the
    // whole document, not from any single section.
    let body = plant_chain(
        vocab,
        &chain,
        spec.body_len(),
        spec.filler_pool,
        0.9,
        &mut rng,
    );
    let mut prompt = Vec::with_capacity(spec.prompt_len());
    prompt.push(BOS);
    prompt.extend_from_slice(&body);
    prompt.push(SEP);
    prompt.extend_from_slice(&instruction_suffix(&chain));
    Sample {
        prompt,
        reference: chain.reference(),
        num_facts: total_facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::adjacency_count;
    use crate::vocab::TokenRole;

    #[test]
    fn long_doc_is_longer_than_news_article() {
        let spec = LongDocSpec::paper_default();
        let news = super::super::summarization::SummarizationSpec::paper_default();
        assert!(spec.prompt_len() > 2 * news.article_len);
    }

    #[test]
    fn samples_match_declared_prompt_len() {
        let spec = LongDocSpec::small();
        let ds = LongDocDataset::generate(&spec, 2);
        for s in ds.samples() {
            assert_eq!(s.prompt.len(), spec.prompt_len());
            assert_eq!(s.num_facts, spec.total_facts());
            assert_eq!(s.reference.len(), 2 * spec.total_facts() - 1);
        }
        assert_eq!(ds.spec().total_facts(), 6);
    }

    #[test]
    fn chain_is_recoverable_from_the_prompt() {
        let spec = LongDocSpec::small();
        let ds = LongDocDataset::generate(&spec, 3);
        let vocab = Vocabulary::new();
        for s in ds.samples() {
            assert_eq!(vocab.role(*s.prompt.last().unwrap()), TokenRole::Cue);
            // Walk the reference chain: every adjacency must exist in the prompt.
            let mut walk = vec![*s.prompt.last().unwrap()];
            walk.extend_from_slice(&s.reference);
            for pair in walk.windows(2) {
                assert!(
                    adjacency_count(&s.prompt, pair[0], pair[1]) >= 1,
                    "missing adjacency {pair:?}"
                );
            }
        }
    }

    #[test]
    fn facts_span_most_of_the_document() {
        let spec = LongDocSpec::paper_default();
        let ds = LongDocDataset::generate(&spec, 1);
        let vocab = Vocabulary::new();
        let s = &ds.samples()[0];
        let fact_positions: Vec<usize> = s
            .prompt
            .iter()
            .enumerate()
            .filter(|(_, &t)| vocab.role(t) == TokenRole::Fact)
            .map(|(i, _)| i)
            .collect();
        let first = *fact_positions.first().unwrap();
        let last = *fact_positions.last().unwrap();
        assert!(first < s.prompt.len() / 4, "facts start too late");
        assert!(last > s.prompt.len() / 2, "facts end too early");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = LongDocSpec::small();
        assert_eq!(
            LongDocDataset::generate(&spec, 2),
            LongDocDataset::generate(&spec, 2)
        );
    }
}

//! Synthetic dataset generators.
//!
//! All three task families plant *retrieval chains* into filler text. A chain of `m`
//! salient facts is written into the document as `m - 1` overlapping five-token
//! blocks
//!
//! ```text
//! block_i = [cue_i, fact_i, cue_{i+1}, fact_{i+1}, cue_{i+2}]
//! ```
//!
//! scattered at spread-out positions. Each (cue, fact) pair is therefore mentioned
//! twice, in two different places, with *consistent successors*: every occurrence of
//! `cue_j` that matters is followed by `fact_j`, and every occurrence of `fact_j` is
//! followed by `cue_{j+1}`. A decoder with an induction mechanism can walk the chain
//! `cue_1 → fact_1 → cue_2 → …` during free-running generation — but only for links
//! whose planted blocks still have their keys/values in the KV cache. The reference
//! output of a sample is exactly that chain, so ROUGE directly measures how much of
//! the distant salient content the cache policy preserved.

pub mod dialogue;
pub mod longdoc;
pub mod summarization;

use crate::vocab::{Vocabulary, NUM_CUES, NUM_FACTS, NUM_FILLER};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One evaluation sample: a prompt and the reference continuation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Prompt token ids (article / dialogue + task cue + the first chain cue).
    pub prompt: Vec<u32>,
    /// Reference continuation token ids (`fact_1 cue_2 fact_2 … fact_m`).
    pub reference: Vec<u32>,
    /// Number of planted facts in the chain.
    pub num_facts: usize,
}

impl Sample {
    /// Number of tokens a model should generate to cover the reference.
    pub fn target_generation_len(&self) -> usize {
        self.reference.len()
    }
}

/// A planted retrieval chain: parallel cue and fact token lists.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain {
    /// Cue tokens, one per fact (all distinct).
    pub cues: Vec<u32>,
    /// Fact tokens, one per cue (all distinct).
    pub facts: Vec<u32>,
}

impl Chain {
    /// Samples a chain of `num_facts` distinct cue/fact pairs.
    pub fn sample(vocab: &Vocabulary, num_facts: usize, rng: &mut StdRng) -> Chain {
        assert!(num_facts as u32 <= NUM_CUES.min(NUM_FACTS));
        let mut cue_ids: Vec<u32> = (0..NUM_CUES).collect();
        let mut fact_ids: Vec<u32> = (0..NUM_FACTS).collect();
        cue_ids.shuffle(rng);
        fact_ids.shuffle(rng);
        Chain {
            cues: cue_ids[..num_facts].iter().map(|&i| vocab.cue(i)).collect(),
            facts: fact_ids[..num_facts]
                .iter()
                .map(|&i| vocab.fact(i))
                .collect(),
        }
    }

    /// Number of links (facts) in the chain.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` for a chain without links.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The reference continuation this chain encodes when prompted with its first
    /// cue: `fact_1 cue_2 fact_2 … cue_m fact_m`.
    pub fn reference(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.facts.len() * 2 - 1);
        for (i, &fact) in self.facts.iter().enumerate() {
            if i > 0 {
                out.push(self.cues[i]);
            }
            out.push(fact);
        }
        out
    }

    /// The five-token block planted for link `i`:
    /// `[cue_i, fact_i, cue_{i+1}, fact_{i+1}, cue_{i+2}]`, with out-of-range chain
    /// positions padded by `filler`.
    pub fn link_block(&self, i: usize, filler: [u32; 3]) -> [u32; 5] {
        let m = self.len();
        let cue = |j: usize, pad: u32| if j < m { self.cues[j] } else { pad };
        let fact = |j: usize, pad: u32| if j < m { self.facts[j] } else { pad };
        [
            self.cues[i],
            self.facts[i],
            cue(i + 1, filler[0]),
            fact(i + 1, filler[1]),
            cue(i + 2, filler[2]),
        ]
    }

    /// Number of blocks planted for this chain (`m - 1`, or 1 for a single-link
    /// chain).
    pub fn num_blocks(&self) -> usize {
        self.len()
            .saturating_sub(1)
            .max(usize::from(!self.is_empty()))
    }
}

/// Draws a filler token from a bounded pool (documents reuse a working set of filler
/// words, so filler tokens repeat and accumulate attention the way common words do in
/// natural text).
pub fn draw_filler(vocab: &Vocabulary, pool: u32, rng: &mut StdRng) -> u32 {
    let pool = pool.clamp(1, NUM_FILLER);
    vocab.filler(rng.gen_range(0..pool))
}

/// Builds a document of `body_len` filler tokens with the chain's blocks planted at
/// roughly evenly spaced positions inside the first `plant_span` fraction of the body.
///
/// The document length is always exactly `body_len`; planted blocks overwrite filler
/// slots. Block positions never overlap, so the planted adjacencies are preserved.
pub fn plant_chain(
    vocab: &Vocabulary,
    chain: &Chain,
    body_len: usize,
    filler_pool: u32,
    plant_span: f64,
    rng: &mut StdRng,
) -> Vec<u32> {
    const BLOCK: usize = 5;
    let mut body: Vec<u32> = (0..body_len)
        .map(|_| draw_filler(vocab, filler_pool, rng))
        .collect();
    if chain.is_empty() {
        return body;
    }
    let blocks = chain.num_blocks();
    let span = (((body_len as f64) * plant_span.clamp(0.1, 1.0)) as usize)
        .max(BLOCK * blocks)
        .min(body_len);
    let stride = (span / blocks).max(BLOCK);
    for i in 0..blocks {
        let base = i * stride;
        let slack = stride.saturating_sub(BLOCK);
        let jitter = if slack > 1 {
            rng.gen_range(0..slack)
        } else {
            0
        };
        let pos = (base + jitter).min(body_len.saturating_sub(BLOCK));
        let filler_tail = [
            draw_filler(vocab, filler_pool, rng),
            draw_filler(vocab, filler_pool, rng),
            draw_filler(vocab, filler_pool, rng),
        ];
        let block = chain.link_block(i, filler_tail);
        body[pos..pos + BLOCK].copy_from_slice(&block);
    }
    body
}

/// Builds the summarization-instruction suffix shared by the task generators:
/// `TLDR cue_1 <aspect> cue_2 <aspect> … cue_m SEP cue_1`.
///
/// Listing the aspects to cover is what a real summarization instruction does; for
/// the cache policies it is also the moment the prompt's final queries attend to the
/// planted blocks, concentrating attention mass on the key tokens right before the
/// post-prompt cache reduction — the situation Figure 3b of the paper describes.
/// The first chain cue is repeated at the very end so generation starts the chain.
pub fn instruction_suffix(chain: &Chain) -> Vec<u32> {
    let mut out = Vec::with_capacity(2 * chain.len() + 2);
    out.push(crate::vocab::TLDR);
    for (i, &cue) in chain.cues.iter().enumerate() {
        if i > 0 {
            out.push(crate::vocab::ASPECT_SEP);
        }
        out.push(cue);
    }
    out.push(crate::vocab::SEP);
    out.push(chain.cues[0]);
    out
}

/// Number of tokens produced by [`instruction_suffix`] for a chain of `m` links.
pub fn instruction_suffix_len(num_facts: usize) -> usize {
    2 * num_facts + 2
}

/// Checks that at least `min_count` occurrences of `first` in `haystack` are
/// immediately followed by `second`. Shared by dataset tests and integration tests.
pub fn adjacency_count(haystack: &[u32], first: u32, second: u32) -> usize {
    haystack
        .windows(2)
        .filter(|w| w[0] == first && w[1] == second)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::TokenRole;
    use rand::SeedableRng;

    #[test]
    fn chain_cues_and_facts_are_distinct() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(1);
        let chain = Chain::sample(&vocab, 8, &mut rng);
        let mut cues = chain.cues.clone();
        cues.sort_unstable();
        cues.dedup();
        assert_eq!(cues.len(), 8);
        assert_eq!(chain.len(), 8);
        assert!(!chain.is_empty());
        assert!(chain.cues.iter().all(|&c| vocab.role(c) == TokenRole::Cue));
        assert!(chain
            .facts
            .iter()
            .all(|&f| vocab.role(f) == TokenRole::Fact));
    }

    #[test]
    fn reference_interleaves_facts_and_cues() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(2);
        let chain = Chain::sample(&vocab, 3, &mut rng);
        let r = chain.reference();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], chain.facts[0]);
        assert_eq!(r[1], chain.cues[1]);
        assert_eq!(r[2], chain.facts[1]);
        assert_eq!(r[4], chain.facts[2]);
    }

    #[test]
    fn link_blocks_overlap_consistently() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(3);
        let chain = Chain::sample(&vocab, 4, &mut rng);
        let filler = [1000, 1001, 1002];
        let b0 = chain.link_block(0, filler);
        let b1 = chain.link_block(1, filler);
        // block_0's tail three tokens equal block_1's head three tokens.
        assert_eq!(&b0[2..5], &b1[0..3]);
        // The final block pads out-of-range positions with filler.
        let last = chain.link_block(3, filler);
        assert_eq!(last[2], filler[0]);
        assert_eq!(chain.num_blocks(), 3);
    }

    #[test]
    fn plant_chain_keeps_length_and_preserves_adjacencies() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(4);
        let chain = Chain::sample(&vocab, 6, &mut rng);
        let body = plant_chain(&vocab, &chain, 200, 40, 0.8, &mut rng);
        assert_eq!(body.len(), 200);
        // Every cue_j -> fact_j adjacency appears at least once, and every
        // fact_j -> cue_{j+1} adjacency appears at least once.
        for j in 0..chain.len() {
            assert!(
                adjacency_count(&body, chain.cues[j], chain.facts[j]) >= 1,
                "cue->fact adjacency {j} missing"
            );
            if j + 1 < chain.len() {
                assert!(
                    adjacency_count(&body, chain.facts[j], chain.cues[j + 1]) >= 1,
                    "fact->next-cue adjacency {j} missing"
                );
            }
        }
    }

    #[test]
    fn interior_links_are_mentioned_twice() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(8);
        let chain = Chain::sample(&vocab, 6, &mut rng);
        let body = plant_chain(&vocab, &chain, 300, 60, 0.8, &mut rng);
        // Links 1..m-1 appear in two blocks each.
        for j in 1..chain.len() - 1 {
            assert_eq!(
                adjacency_count(&body, chain.cues[j], chain.facts[j]),
                2,
                "link {j} should be mentioned twice"
            );
        }
    }

    #[test]
    fn successor_votes_have_a_correct_majority() {
        // The property that makes free-running chain recovery work: for every chain
        // token, the majority of its occurrences in the document are followed by the
        // next token of the reference chain.
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(11);
        let chain = Chain::sample(&vocab, 7, &mut rng);
        let body = plant_chain(&vocab, &chain, 320, 60, 0.75, &mut rng);
        let reference = chain.reference();
        let mut walk = vec![chain.cues[0]];
        walk.extend_from_slice(&reference);
        for pair in walk.windows(2) {
            let (tok, next) = (pair[0], pair[1]);
            let total = body.iter().filter(|&&t| t == tok).count();
            let good = adjacency_count(&body, tok, next);
            assert!(
                2 * good >= total,
                "token {tok} has only {good}/{total} correct successors"
            );
        }
    }

    #[test]
    fn plant_chain_is_deterministic_per_seed() {
        let vocab = Vocabulary::new();
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let chain = Chain::sample(&vocab, 4, &mut rng);
            plant_chain(&vocab, &chain, 120, 30, 0.7, &mut rng)
        };
        assert_eq!(build(9), build(9));
        assert_ne!(build(9), build(10));
    }

    #[test]
    fn filler_pool_is_respected() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let f = draw_filler(&vocab, 10, &mut rng);
            assert!(f >= vocab.filler(0) && f < vocab.filler(10));
        }
    }

    #[test]
    fn single_link_chain_is_planted() {
        let vocab = Vocabulary::new();
        let mut rng = StdRng::seed_from_u64(6);
        let chain = Chain::sample(&vocab, 1, &mut rng);
        let body = plant_chain(&vocab, &chain, 50, 20, 0.8, &mut rng);
        assert_eq!(body.len(), 50);
        assert!(adjacency_count(&body, chain.cues[0], chain.facts[0]) >= 1);
        assert_eq!(chain.reference(), vec![chain.facts[0]]);
    }
}

//! Synthetic news-article summarization (the CNN/DailyMail stand-in).

use super::{instruction_suffix, instruction_suffix_len, plant_chain, Chain, Sample};
use crate::vocab::{Vocabulary, BOS, SEP};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the summarization generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummarizationSpec {
    /// Number of body (article) tokens per sample.
    pub article_len: usize,
    /// Number of salient facts planted per article.
    pub num_facts: usize,
    /// Size of the filler-word working set.
    pub filler_pool: u32,
    /// Fraction of the article within which facts are planted (facts never appear in
    /// the trailing `1 - plant_span` of the article, so a pure recent-window policy
    /// cannot see them).
    pub plant_span: f64,
    /// Base RNG seed; sample `i` uses `seed + i`.
    pub seed: u64,
}

impl SummarizationSpec {
    /// A small configuration used by unit tests.
    pub fn small() -> Self {
        SummarizationSpec {
            article_len: 120,
            num_facts: 5,
            filler_pool: 30,
            plant_span: 0.7,
            seed: 1234,
        }
    }

    /// The configuration used by the paper-scale experiments (Figure 7, Tables 3–4):
    /// a few hundred tokens of context with eight salient facts.
    pub fn paper_default() -> Self {
        SummarizationSpec {
            article_len: 320,
            num_facts: 8,
            filler_pool: 200,
            plant_span: 0.75,
            seed: 20_240_501,
        }
    }
}

/// A generated summarization dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummarizationDataset {
    spec: SummarizationSpec,
    samples: Vec<Sample>,
}

impl SummarizationDataset {
    /// Generates `num_samples` articles with planted retrieval chains.
    pub fn generate(spec: &SummarizationSpec, num_samples: usize) -> Self {
        let vocab = Vocabulary::new();
        let samples = (0..num_samples)
            .map(|i| build_sample(&vocab, spec, spec.seed.wrapping_add(i as u64)))
            .collect();
        SummarizationDataset {
            spec: *spec,
            samples,
        }
    }

    /// The generated samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The generation spec.
    pub fn spec(&self) -> &SummarizationSpec {
        &self.spec
    }
}

fn build_sample(vocab: &Vocabulary, spec: &SummarizationSpec, seed: u64) -> Sample {
    let mut rng = StdRng::seed_from_u64(seed);
    let chain = Chain::sample(vocab, spec.num_facts, &mut rng);
    let body = plant_chain(
        vocab,
        &chain,
        spec.article_len,
        spec.filler_pool,
        spec.plant_span,
        &mut rng,
    );
    let mut prompt =
        Vec::with_capacity(spec.article_len + 2 + instruction_suffix_len(spec.num_facts));
    prompt.push(BOS);
    prompt.extend_from_slice(&body);
    prompt.push(SEP);
    prompt.extend_from_slice(&instruction_suffix(&chain));
    Sample {
        prompt,
        reference: chain.reference(),
        num_facts: spec.num_facts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::TokenRole;

    #[test]
    fn generates_requested_number_of_samples() {
        let ds = SummarizationDataset::generate(&SummarizationSpec::small(), 5);
        assert_eq!(ds.samples().len(), 5);
        assert_eq!(ds.spec().num_facts, 5);
    }

    #[test]
    fn samples_have_expected_structure() {
        let spec = SummarizationSpec::small();
        let ds = SummarizationDataset::generate(&spec, 3);
        let vocab = Vocabulary::new();
        for sample in ds.samples() {
            assert_eq!(
                sample.prompt.len(),
                spec.article_len + 2 + super::super::instruction_suffix_len(spec.num_facts)
            );
            assert_eq!(sample.prompt[0], BOS);
            assert_eq!(sample.prompt[spec.article_len + 1], SEP);
            assert_eq!(sample.prompt[spec.article_len + 2], crate::vocab::TLDR);
            assert_eq!(vocab.role(*sample.prompt.last().unwrap()), TokenRole::Cue);
            assert_eq!(sample.reference.len(), 2 * spec.num_facts - 1);
            assert_eq!(sample.num_facts, spec.num_facts);
        }
    }

    #[test]
    fn instruction_lists_every_cue() {
        let spec = SummarizationSpec::small();
        let ds = SummarizationDataset::generate(&spec, 1);
        let vocab = Vocabulary::new();
        let sample = &ds.samples()[0];
        let instruction = &sample.prompt[spec.article_len + 2..];
        let cues_in_instruction = instruction
            .iter()
            .filter(|&&t| vocab.role(t) == TokenRole::Cue)
            .count();
        // Every chain cue is listed once, plus the trailing first cue that seeds
        // generation.
        assert_eq!(cues_in_instruction, spec.num_facts + 1);
    }

    #[test]
    fn samples_differ_but_are_reproducible() {
        let spec = SummarizationSpec::small();
        let a = SummarizationDataset::generate(&spec, 2);
        let b = SummarizationDataset::generate(&spec, 2);
        assert_eq!(a, b);
        assert_ne!(a.samples()[0], a.samples()[1]);
    }

    #[test]
    fn facts_are_absent_from_the_recent_tail() {
        // With plant_span = 0.7 the last ~30% of the article is pure filler, so the
        // window-attention failure mode is structurally guaranteed.
        let spec = SummarizationSpec::small();
        let ds = SummarizationDataset::generate(&spec, 4);
        let vocab = Vocabulary::new();
        for sample in ds.samples() {
            let tail_start = 1 + (spec.article_len as f64 * 0.85) as usize;
            let tail = &sample.prompt[tail_start..spec.article_len];
            assert!(
                tail.iter().all(|&t| vocab.role(t) == TokenRole::Filler),
                "facts leaked into the article tail"
            );
        }
    }

    #[test]
    fn reference_tokens_all_appear_in_prompt() {
        let ds = SummarizationDataset::generate(&SummarizationSpec::small(), 2);
        for sample in ds.samples() {
            for &tok in &sample.reference {
                assert!(
                    sample.prompt.contains(&tok),
                    "reference token {tok} missing from prompt"
                );
            }
        }
    }
}

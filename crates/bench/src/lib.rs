//! # keyformer-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benchmark targets map to the
//! paper's artefacts as follows:
//!
//! | bench target | group | paper artefact |
//! |---|---|---|
//! | `policy_overhead` | `score_function` | Figure 10 (Gumbel softmax overhead), Table 4 ablation |
//! | `policy_overhead` | `selection` | per-step eviction cost of every policy (Table 3 ablation) |
//! | `decode_step` | `attention_step` | Figures 1/9 (per-token cost vs. live cache size) |
//! | `decode_step` | `end_to_end` | Figure 9 / Table 1 (full request latency per policy) |
//! | `analytic_model` | `roofline` | Figures 1, 9, 10 and Table 1 on the A100 model |
//! | `serving_step` | `serving_step` / `serving_burst` | continuous-batching scheduler cost (the `serve_throughput` experiment) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use keyformer_core::observation::{AttentionObservation, Phase};
use keyformer_text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer_text::datasets::Sample;

/// A deterministic pseudo-random logit vector of the given length, emulating one
/// attention head's unnormalized scores over a cache.
pub fn synthetic_logits(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let mut x = (i as u64 + 1)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(seed.wrapping_mul(0x9e3779b97f4a7c15));
            x ^= x >> 29;
            x = x.wrapping_mul(0xbf58476d1ce4e5b9);
            x ^= x >> 32;
            ((x >> 33) as f32 / (u32::MAX >> 1) as f32) * 6.0 - 3.0
        })
        .collect()
}

/// Wraps a logit slice in an [`AttentionObservation`] for benchmarking `observe`.
pub fn observation(logits: &[f32]) -> AttentionObservation<'_> {
    AttentionObservation {
        layer: 0,
        head: 0,
        phase: Phase::Generation,
        step: 4,
        total_steps: 32,
        logits,
    }
}

/// A small summarization workload used by the end-to-end decode benchmarks.
pub fn bench_samples(num: usize) -> Vec<Sample> {
    let spec = SummarizationSpec {
        article_len: 192,
        num_facts: 6,
        filler_pool: 120,
        plant_span: 0.75,
        seed: 9_999,
    };
    SummarizationDataset::generate(&spec, num)
        .samples()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_logits_are_deterministic_and_bounded() {
        let a = synthetic_logits(64, 1);
        let b = synthetic_logits(64, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.abs() <= 3.0));
        assert_ne!(a, synthetic_logits(64, 2));
    }

    #[test]
    fn observation_wraps_logits() {
        let logits = synthetic_logits(8, 3);
        let obs = observation(&logits);
        assert_eq!(obs.live_slots(), 8);
    }

    #[test]
    fn bench_samples_are_generated() {
        let samples = bench_samples(2);
        assert_eq!(samples.len(), 2);
        assert!(samples[0].prompt.len() > 150);
    }
}

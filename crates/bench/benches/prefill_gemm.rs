//! Prefill GEMM microbenchmarks: the tiled batched matrix kernels underneath
//! chunk-batched prefill, and the chunked prompt pass end to end.
//!
//! Two granularities. `prefill_gemm` times one projection's worth of work at
//! real transformer shapes — `n` per-token `matvec_into` calls (what the
//! sequential prompt pass does) against one `matvec_batch_into` GEMM (what
//! the batched pass does), plus the square `matmul_into` kernel the GEMM is
//! built on. `chunked_prefill` times the full prompt pass through a session
//! at each chunk size, which is where the per-chunk weight-streaming savings
//! show up end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_model::session::Session;
use keyformer_model::workspace::ForwardPath;
use keyformer_tensor::Matrix;
use std::hint::black_box;
use std::time::Duration;

/// Chunk sizes swept by both benchmark groups.
const CHUNKS: [usize; 4] = [1, 8, 32, 128];
/// Prompt length of the end-to-end chunked prefill bench.
const PROMPT_LEN: usize = 128;

/// Deterministic pseudo-random matrix (xorshift; weights don't need to be
/// realistic, just non-degenerate).
fn random_matrix(rows: usize, cols: usize, mut seed: u64) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data")
}

/// One projection at transformer shapes: `n` sequential GEMVs vs one batched
/// GEMM over the same inputs. Shapes are the headline GPT-J-like family's
/// QKV (128×128) and FFN (256×128) projections.
fn bench_prefill_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefill_gemm");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (label, rows, cols) in [
        ("qkv_128x128", 128usize, 128usize),
        ("ffn_256x128", 256, 128),
    ] {
        let weights = random_matrix(rows, cols, 7);
        for &n in &CHUNKS {
            let xs: Vec<f32> = random_matrix(n, cols, 11).into_vec();
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/sequential_gemv"), n),
                &n,
                |b, &n| {
                    let mut out = vec![0.0f32; rows];
                    b.iter(|| {
                        for x in xs.chunks_exact(cols).take(n) {
                            let mut row_out = std::mem::take(&mut out);
                            weights
                                .matvec_into(black_box(x), &mut row_out)
                                .expect("shape agrees");
                            out = row_out;
                            black_box(&out);
                        }
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/batched_gemm"), n),
                &n,
                |b, &n| {
                    let mut out = Vec::with_capacity(n * rows);
                    let mut pack = Vec::new();
                    b.iter(|| {
                        weights
                            .matvec_batch_into(black_box(&xs), n, &mut out, &mut pack)
                            .expect("shape agrees");
                        black_box(&out);
                    });
                },
            );
        }
    }
    // The square kernel the batched projections are built on.
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 3);
        let b_m = random_matrix(n, n, 5);
        group.bench_with_input(BenchmarkId::new("matmul_into", n), &n, |b, _| {
            let mut out = Vec::with_capacity(n * n);
            b.iter(|| {
                a.matmul_into(black_box(&b_m), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

/// The chunked prompt pass end to end: arm a prompt and drive
/// `advance_prefill` to completion on the batched path at each chunk size,
/// with the sequential path as the baseline.
fn bench_chunked_prefill(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunked_prefill");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let model = ModelFamily::GptJLike.build(41);
    let vocab = model.config().vocab_size;
    let prompt: Vec<u32> = (0..PROMPT_LEN)
        .map(|t| ((t * 13 + 5) % vocab) as u32)
        .collect();
    let gen = GenerationConfig::new(1);
    let run = |path: ForwardPath, chunk: usize| {
        let mut session =
            Session::new(&model, PolicySpec::Full.build().expect("full builds"), None)
                .with_forward_path(path)
                .with_prefill_chunk(chunk);
        session
            .begin(black_box(&prompt), &gen)
            .expect("prompt arms");
        while session.is_prefilling() {
            session.advance_prefill().expect("unbounded pool");
        }
        black_box(session);
    };
    group.bench_function(BenchmarkId::new("sequential", PROMPT_LEN), |b| {
        b.iter(|| run(ForwardPath::Legacy, PROMPT_LEN));
    });
    for &chunk in &CHUNKS {
        group.bench_with_input(BenchmarkId::new("batched", chunk), &chunk, |b, &chunk| {
            b.iter(|| run(ForwardPath::Workspace, chunk));
        });
    }
    group.finish();
}

criterion_group!(prefill_gemm, bench_prefill_gemm, bench_chunked_prefill);
criterion_main!(prefill_gemm);

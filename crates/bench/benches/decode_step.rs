//! Decode-path benchmarks on the substrate transformer: per-request latency under
//! each cache policy (Figure 9 / Table 1 shape) and the effect of the cache budget
//! on a single request (Figure 1 shape, measured rather than modelled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_bench::bench_samples;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_model::engine::InferenceEngine;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use std::hint::black_box;
use std::time::Duration;

/// Figure 9 / Table 1: end-to-end request latency per policy at a 50% budget.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let model = ModelFamily::MptLike.build(3);
    let sample = bench_samples(1).remove(0);
    let config = GenerationConfig::new(sample.reference.len());
    for (label, policy, budget) in [
        ("full", PolicySpec::Full, None),
        (
            "h2o_50pct",
            PolicySpec::h2o_default(),
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid")),
        ),
        (
            "keyformer_50pct",
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid")),
        ),
        (
            "window_50pct",
            PolicySpec::Window,
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid")),
        ),
    ] {
        group.bench_function(BenchmarkId::new("generate", label), |b| {
            b.iter(|| {
                let mut engine =
                    InferenceEngine::new(&model, policy.build().expect("valid"), budget);
                black_box(engine.generate(black_box(&sample.prompt), &config))
            });
        });
    }
    group.finish();
}

/// Figure 1 shape: request latency as the prompt grows, full attention vs. Keyformer.
fn bench_prompt_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let model = ModelFamily::GptJLike.build(3);
    for prompt_len in [128usize, 256, 512] {
        let prompt: Vec<u32> = (0..prompt_len).map(|i| 16 + (i % 900) as u32).collect();
        let config = GenerationConfig::new(8);
        for (label, budget) in [
            ("full", None),
            (
                "keyformer_50pct",
                Some(CacheBudgetSpec::with_fraction(0.5).expect("valid")),
            ),
        ] {
            let policy = if budget.is_some() {
                PolicySpec::keyformer_default()
            } else {
                PolicySpec::Full
            };
            group.bench_with_input(BenchmarkId::new(label, prompt_len), &prompt, |b, prompt| {
                b.iter(|| {
                    let mut engine =
                        InferenceEngine::new(&model, policy.build().expect("valid"), budget);
                    black_box(engine.generate(black_box(prompt), &config))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(decode_step, bench_end_to_end, bench_prompt_scaling);
criterion_main!(decode_step);

//! Forward hot-path microbenchmarks: the legacy allocating forward pass versus
//! the zero-allocation workspace path on the same model and weights.
//!
//! Two granularities. `forward_path` times a full request (prompt + decode) on
//! each [`ForwardPath`], which is where the cached RoPE key rotations and the
//! eliminated per-token allocations show up end to end. `decode_tail` isolates
//! steady-state decode by timing only the generated-token steps after a fixed
//! prompt — the regime the zero-allocation claim is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_model::session::Session;
use keyformer_model::workspace::ForwardPath;
use std::hint::black_box;
use std::time::Duration;

const PROMPT_LEN: usize = 64;
const GEN_TOKENS: usize = 64;

fn prompt(vocab: usize) -> Vec<u32> {
    (0..PROMPT_LEN)
        .map(|t| ((t * 17 + 3) % vocab) as u32)
        .collect()
}

/// Full request latency, legacy vs workspace, across the positional families.
fn bench_forward_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let config = GenerationConfig::new(GEN_TOKENS);
    for family in [
        ModelFamily::GptJLike,
        ModelFamily::CerebrasLike,
        ModelFamily::MptLike,
    ] {
        let model = family.build(3);
        let prompt = prompt(model.config().vocab_size);
        for (label, path) in [
            ("legacy", ForwardPath::Legacy),
            ("workspace", ForwardPath::Workspace),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{family:?}")),
                &prompt,
                |b, prompt| {
                    b.iter(|| {
                        let policy = PolicySpec::Full.build().expect("valid");
                        let mut session =
                            Session::new(&model, policy, None).with_forward_path(path);
                        black_box(session.generate(black_box(prompt), &config))
                    });
                },
            );
        }
    }
    group.finish();
}

/// Steady-state decode: prompt processed outside the timed region, only the
/// generated-token steps are measured.
fn bench_decode_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_tail");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let model = ModelFamily::GptJLike.build(3);
    let prompt = prompt(model.config().vocab_size);
    let config = GenerationConfig::new(GEN_TOKENS);
    for (label, path) in [
        ("legacy", ForwardPath::Legacy),
        ("workspace", ForwardPath::Workspace),
    ] {
        // Prefill once into a template session; each iteration forks it (a
        // cheap copy-on-write block attach) and times only the decode steps.
        let policy = PolicySpec::Full.build().expect("valid");
        let mut template = Session::new(&model, policy, None).with_forward_path(path);
        template.begin(&prompt, &config).expect("prompt admits");
        while template.is_prefilling() {
            template.advance_prefill().expect("prefill advances");
        }
        group.bench_function(BenchmarkId::new("gptj_full", label), |b| {
            b.iter(|| {
                let mut session = template.fork().expect("fork");
                while session.is_decoding() {
                    session.step().expect("decode step");
                }
                black_box(session.take_output())
            });
        });
    }
    group.finish();
}

criterion_group!(attention_hotpath, bench_forward_path, bench_decode_tail);
criterion_main!(attention_hotpath);

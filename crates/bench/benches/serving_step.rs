//! Serving-layer benchmark: cost of one batched scheduler step and of draining a
//! whole request burst, versus batch size and cache policy.
//!
//! Maps to the serving-throughput experiment (`kf_experiments serve_throughput`):
//! the `step` group measures the per-iteration scheduler cost the continuous
//! batcher adds on top of the raw decode forwards, and the `burst` group measures
//! end-to-end wall time for a fixed oversubscribed workload per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_model::model::TransformerModel;
use keyformer_serve::{Request, Server, ServerConfig};

const PROMPT_LEN: usize = 32;
const GEN_TOKENS: usize = 6;

fn request(i: u64) -> Request {
    let prompt: Vec<u32> = (0..PROMPT_LEN)
        .map(|t| (t as u32 * 11 + 3 + i as u32 * 29) % 120)
        .collect();
    Request::new(i, prompt, GenerationConfig::new(GEN_TOKENS))
}

fn server_with_batch(model: &TransformerModel, batch: usize) -> Server<'_> {
    let bytes = model.empty_cache().bytes_per_token();
    // Pool sized to hold exactly `batch` budgeted sessions at steady state.
    let capacity = CacheBudgetSpec::with_fraction(0.5)
        .expect("valid fraction")
        .for_prompt_len(PROMPT_LEN)
        .capacity();
    let config = ServerConfig::new(
        PolicySpec::keyformer_default(),
        Some(CacheBudgetSpec::with_fraction(0.5).expect("valid fraction")),
        batch * capacity * bytes,
    )
    .with_prefills_per_step(batch);
    Server::new(model, config).expect("valid serving config")
}

/// One batched scheduler step at a steady batch size: the server is refilled so
/// every measured iteration decodes `batch` sessions.
fn serving_step(c: &mut Criterion) {
    let model = ModelFamily::Tiny.build(21);
    let mut group = c.benchmark_group("serving_step");
    for &batch in &[1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("step", batch), &batch, |b, &batch| {
            let mut server = server_with_batch(&model, batch);
            let mut next_id = 0u64;
            b.iter(|| {
                // Keep the queue topped up so the batch never shrinks.
                while server.queued() + server.running() < batch {
                    server.submit(request(next_id)).expect("no overrides");
                    next_id += 1;
                }
                server.step()
            });
        });
    }
    group.finish();
}

/// Drain a fixed oversubscribed burst to completion, per policy.
fn serving_burst(c: &mut Criterion) {
    let model = ModelFamily::Tiny.build(22);
    let bytes = model.empty_cache().bytes_per_token();
    let pool = 2 * (PROMPT_LEN + GEN_TOKENS) * bytes;
    let mut group = c.benchmark_group("serving_burst");
    group.sample_size(10);
    for (label, policy, budget) in [
        ("full", PolicySpec::Full, None),
        (
            "keyformer50",
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::with_fraction(0.5).expect("valid fraction")),
        ),
    ] {
        group.bench_function(BenchmarkId::new("drain8", label), |b| {
            b.iter(|| {
                let mut server =
                    Server::new(&model, ServerConfig::new(policy, budget, pool)).expect("valid");
                for i in 0..8 {
                    server.submit(request(i)).expect("no overrides");
                }
                server.run(512);
                server.completions().len()
            });
        });
    }
    group.finish();
}

criterion_group!(serving, serving_step, serving_burst);
criterion_main!(serving);

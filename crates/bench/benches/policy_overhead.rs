//! Per-step policy cost: the score function (Figure 10's Gumbel-softmax overhead,
//! Table 4's adjustment ablation) and the eviction selection itself (Table 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_bench::{observation, synthetic_logits};
use keyformer_core::accumulator::ScoreScope;
use keyformer_core::adjustment::LogitAdjustment;
use keyformer_core::budget::CacheBudget;
use keyformer_core::policies::keyformer::{Keyformer, KeyformerConfig};
use keyformer_core::policy::KvCachePolicy;
use keyformer_core::spec::PolicySpec;
use keyformer_core::temperature::TemperatureSchedule;
use std::hint::black_box;
use std::time::Duration;

fn configure(c: &mut Criterion) -> &mut Criterion {
    c
}

/// Figure 10 / Table 4: cost of one score-function update per logit-adjustment
/// distribution.
fn bench_score_function(c: &mut Criterion) {
    let mut group = c.benchmark_group("score_function");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let logits = synthetic_logits(2048, 7);
    for adjustment in [
        LogitAdjustment::None,
        LogitAdjustment::paper_constant(),
        LogitAdjustment::paper_gaussian(),
        LogitAdjustment::Gumbel,
    ] {
        let mut policy = Keyformer::new(
            KeyformerConfig::default()
                .with_adjustment(adjustment)
                .with_temperature(TemperatureSchedule::default())
                .with_scope(ScoreScope::PerLayer),
        );
        group.bench_with_input(
            BenchmarkId::new("observe", adjustment.label()),
            &logits,
            |b, logits| {
                b.iter(|| policy.observe(black_box(&observation(logits))));
            },
        );
    }
    group.finish();
}

/// Table 3 ablation / per-step eviction cost of every policy at a 2k-token cache.
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let live = 2048usize;
    let budget = CacheBudget::new(1024, 307);
    let logits = synthetic_logits(live, 11);
    for spec in [
        PolicySpec::Window,
        PolicySpec::streaming_default(),
        PolicySpec::h2o_default(),
        PolicySpec::keyformer_default(),
    ] {
        let mut policy = spec.build().expect("valid spec");
        // Populate accumulated scores before measuring selection.
        policy.observe(&observation(&logits));
        group.bench_function(BenchmarkId::new("select_retained", spec.label()), |b| {
            b.iter(|| black_box(policy.select_retained(0, live, &budget)));
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    let c = configure(c);
    bench_score_function(c);
    bench_selection(c);
}

criterion_group!(policy_overhead, benches);
criterion_main!(policy_overhead);

//! Benchmarks of the analytic A100 roofline model itself, sweeping the workloads of
//! Figures 1, 9, 10 and Table 1. The model is closed-form, so these benches measure
//! the sweep cost and act as a regression guard on the estimator's outputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_perf::{CachePolicyCost, PerfModel, Workload};
use std::hint::black_box;
use std::time::Duration;

/// Figures 1/9/10 and Table 1: estimate every workload × policy combination.
fn bench_roofline(c: &mut Criterion) {
    let mut group = c.benchmark_group("roofline");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let model = PerfModel::paper_default();
    let policies = [
        CachePolicyCost::full_attention(),
        CachePolicyCost::h2o(0.9),
        CachePolicyCost::keyformer(0.5),
        CachePolicyCost::window(0.5),
    ];
    for seq in [512usize, 2048, 8192] {
        group.bench_with_input(BenchmarkId::new("estimate_sweep", seq), &seq, |b, &seq| {
            b.iter(|| {
                let workload = Workload::figure1(seq);
                for policy in &policies {
                    black_box(model.estimate(black_box(&workload), policy));
                }
            });
        });
    }
    group.bench_function("table1_batch_search", |b| {
        b.iter(|| {
            let workload = Workload::symmetric(4096).with_beam_size(4);
            for policy in &policies {
                black_box(model.max_batch_size(&workload, policy, 64));
            }
        });
    });
    group.finish();
}

criterion_group!(analytic_model, bench_roofline);
criterion_main!(analytic_model);

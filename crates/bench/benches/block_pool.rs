//! Block-allocator benchmark: the paged KV cache's overhead on the decode hot
//! path.
//!
//! Maps to the paging experiment (`kf_experiments paging`): the `block_pool`
//! group prices the raw allocator (alloc + refcounted release), and the
//! `decode_block_churn` group prices the worst-case per-token pattern a
//! budgeted decode produces — append one slot (sometimes allocating a block),
//! then compact one slot away (sometimes releasing a block) — across block
//! sizes. Smaller blocks churn the allocator more often; this bench is the
//! evidence the per-operation cost stays negligible next to a forward pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use keyformer_core::block::{BlockPool, OvercommitPolicy, SharedBlockPool};
use keyformer_core::cache::LayerKvCache;

fn pool_alloc_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_pool");
    group.bench_function("alloc_release_64", |b| {
        let mut pool = BlockPool::bounded(16, 64, OvercommitPolicy::Strict).expect("valid pool");
        b.iter(|| {
            let ids: Vec<_> = (0..64).map(|_| pool.alloc().expect("capacity")).collect();
            for id in ids {
                pool.release(id).expect("allocated above");
            }
            pool.blocks_in_use()
        });
    });
    group.bench_function("reserve_unreserve", |b| {
        let mut pool = BlockPool::bounded(16, 1024, OvercommitPolicy::Strict).expect("valid pool");
        b.iter(|| {
            for _ in 0..64 {
                assert!(pool.try_reserve(8));
            }
            for _ in 0..64 {
                pool.unreserve(8);
            }
            pool.blocks_reserved()
        });
    });
    group.finish();
}

/// Steady-state decode step on a budgeted layer (GPT-J-like head shape:
/// 4 heads x 64 dims): append one token, evict the oldest slot.
fn decode_block_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_block_churn");
    for &block_size in &[4usize, 8, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("append_evict", block_size),
            &block_size,
            |b, &block_size| {
                let pool = SharedBlockPool::unbounded(block_size);
                let mut layer = LayerKvCache::with_pool(4, 64, pool);
                let keys: Vec<Vec<f32>> = (0..4).map(|h| vec![h as f32; 64]).collect();
                let values = keys.clone();
                for i in 0..32 {
                    layer.append(i, &keys, &values).expect("unbounded pool");
                }
                // Sliding-window shape: drop slot 0, keep the 32 newest.
                let retained: Vec<usize> = (1..=32).collect();
                let mut position = 32;
                b.iter(|| {
                    layer.append(position, &keys, &values).expect("unbounded");
                    position += 1;
                    layer.retain_slots(&retained).expect("valid selection");
                    layer.len()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(block_pool, pool_alloc_release, decode_block_churn);
criterion_main!(block_pool);

//! Serving-throughput experiment: requests completed per scheduler-step budget
//! under a fixed KV-byte pool, per cache policy.
//!
//! This is the end-to-end demonstration of the paper's systems claim (§6.3,
//! Table 1): reducing each sequence's KV footprint lets a fixed memory pool hold
//! more concurrent sequences, and with iteration-level batching that concurrency
//! converts directly into requests finished per batched decode step. Full
//! attention reserves the whole `prompt + generation` footprint per request; the
//! 50%-budget policies reserve roughly half, so the same pool runs roughly twice
//! the batch — and completes roughly twice the requests inside the same step
//! budget.

use crate::report::{fmt, Table};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::{Request, Server, ServerConfig};
use serde::{Deserialize, Serialize};

/// Weight seed of the serving experiment's model.
pub const MODEL_SEED: u64 = 11;

/// Prompt length of every synthetic serving request.
const PROMPT_LEN: usize = 48;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;
/// KV budget fraction applied to the budgeted policies.
const CACHE_FRACTION: f64 = 0.5;

/// Machine-readable per-policy summary of one serving run, emitted as
/// `BENCH_serving.json` by `kf_experiments` so the perf trajectory has data
/// points across PRs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyServingSummary {
    /// Policy label (e.g. `Keyformer(gumbel, per-layer)@50%`).
    pub policy: String,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed within the step budget.
    pub completed: usize,
    /// Scheduler steps executed (= the step budget unless the server went idle).
    pub steps: usize,
    /// Requests completed per scheduler step — the headline throughput metric.
    pub requests_per_step: f64,
    /// Mean live KV bytes across the run.
    pub mean_kv_bytes: f64,
    /// Peak live KV bytes across the run.
    pub peak_kv_bytes: usize,
    /// Peak concurrently running sessions.
    pub peak_concurrency: usize,
    /// Mean end-to-end latency (scheduler steps) of the completed requests.
    pub mean_latency_steps: f64,
    /// Mean live-slots / allocated-slots at end-of-step steady state
    /// (1.0 minus internal fragmentation).
    pub utilization: f64,
    /// Pool high-water mark in blocks.
    pub peak_blocks: usize,
    /// High-water mark of blocks mapped by more than one holder (0 without
    /// prefix sharing).
    pub shared_blocks_peak: usize,
}

/// The policy line-up the serving experiment compares: full attention against
/// the three main reduced-cache policies at a 50% budget.
pub fn serving_policies() -> Vec<(String, PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = CacheBudgetSpec::with_fraction(CACHE_FRACTION).expect("valid fraction");
    let pct = (CACHE_FRACTION * 100.0) as usize;
    vec![
        ("Full".into(), PolicySpec::Full, None),
        (format!("Window@{pct}%"), PolicySpec::Window, Some(budget)),
        (
            format!("H2O@{pct}%"),
            PolicySpec::h2o_default(),
            Some(budget),
        ),
        (
            format!("Keyformer@{pct}%"),
            PolicySpec::keyformer_default(),
            Some(budget),
        ),
    ]
}

/// Deterministic synthetic request stream: `num` prompts of `PROMPT_LEN`
/// tokens, each with its own token pattern.
fn request_stream(num: usize) -> Vec<Request> {
    (0..num)
        .map(|i| {
            let salt = i as u32;
            let prompt: Vec<u32> = (0..PROMPT_LEN)
                .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
                .collect();
            Request::new(i as u64, prompt, GenerationConfig::new(GEN_TOKENS))
        })
        .collect()
}

/// Runs the serving comparison and returns both the rendered table and the
/// per-policy summaries.
///
/// `samples` scales the request count (the queue is kept oversubscribed relative
/// to the step budget, so completions — not submissions — are the binding
/// quantity).
pub fn serve_throughput_report(samples: usize) -> (Table, Vec<PolicyServingSummary>) {
    let samples = samples.max(1);
    // Oversubscribed on purpose: the step budget, not the request count, is the
    // binding constraint, so completions measure throughput rather than workload
    // size. Full attention sustains ~pool/(prompt+gen) concurrent requests and
    // cannot drain the queue inside the budget.
    let num_requests = 16 * samples;
    let step_budget = 3 * GEN_TOKENS * samples;
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    // Pool sized so full attention fits two steady-state requests
    // (prompt + generation slots each) with a little headroom.
    let pool_bytes = crate::sizing::steady_pool_bytes(&model, PROMPT_LEN, GEN_TOKENS, KvDtype::F32);

    let mut table = Table::new(
        format!(
            "Serving throughput: requests per scheduler step at a fixed \
             {pool_bytes}-byte KV pool ({num_requests} requests, {step_budget}-step budget)"
        ),
        &[
            "policy",
            "completed",
            "steps",
            "requests_per_step",
            "mean_kv_bytes",
            "peak_concurrency",
            "mean_latency_steps",
        ],
    );
    let mut summaries = Vec::new();
    for (label, policy, budget) in serving_policies() {
        let mut server = Server::new(&model, ServerConfig::new(policy, budget, pool_bytes))
            .expect("serving config is valid");
        for request in request_stream(num_requests) {
            server
                .submit(request)
                .expect("synthetic requests carry no overrides");
        }
        server.run(step_budget);
        let stats = *server.stats();
        let pool = server.pool_stats();
        let completions = server.completions();
        let completed = completions.len();
        let mean_latency = if completed == 0 {
            0.0
        } else {
            completions
                .iter()
                .map(|c| c.latency_steps() as f64)
                .sum::<f64>()
                / completed as f64
        };
        let summary = PolicyServingSummary {
            policy: label,
            submitted: num_requests,
            completed,
            steps: stats.steps,
            requests_per_step: completed as f64 / stats.steps.max(1) as f64,
            mean_kv_bytes: stats.mean_live_kv_bytes(),
            peak_kv_bytes: stats.peak_live_kv_bytes,
            peak_concurrency: stats.peak_concurrency,
            mean_latency_steps: mean_latency,
            utilization: stats.mean_pool_utilization(),
            peak_blocks: pool.peak_in_use,
            shared_blocks_peak: pool.peak_shared_blocks,
        };
        table.push_row(vec![
            summary.policy.clone(),
            summary.completed.to_string(),
            summary.steps.to_string(),
            fmt(summary.requests_per_step),
            format!("{:.0}", summary.mean_kv_bytes),
            summary.peak_concurrency.to_string(),
            fmt(summary.mean_latency_steps),
        ]);
        summaries.push(summary);
    }
    (table, summaries)
}

/// Table-only entry point used by the experiment registry.
pub fn serve_throughput(samples: usize) -> Table {
    serve_throughput_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyformer_completes_strictly_more_requests_than_full_at_fixed_pool() {
        let (_, summaries) = serve_throughput_report(1);
        let by_name = |needle: &str| {
            summaries
                .iter()
                .find(|s| s.policy.starts_with(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        let full = by_name("Full");
        let keyformer = by_name("Keyformer");
        assert!(
            keyformer.completed > full.completed,
            "keyformer {} vs full {} completed requests",
            keyformer.completed,
            full.completed
        );
        assert!(keyformer.requests_per_step > full.requests_per_step);
        assert!(
            keyformer.peak_concurrency > full.peak_concurrency,
            "the whole effect should come from higher admitted concurrency"
        );
        // Both policies fill the same fixed pool — that is the design point: the
        // reduced per-request footprint converts pool bytes into concurrency,
        // not into an emptier pool.
        assert!(
            full.completed < full.submitted,
            "the workload must oversubscribe the step budget to measure throughput"
        );
        assert!(keyformer.mean_kv_bytes > 0.0);
    }

    #[test]
    fn summaries_cover_every_policy_and_serialize() {
        let (table, summaries) = serve_throughput_report(1);
        assert_eq!(summaries.len(), 4);
        assert_eq!(table.rows.len(), 4);
        for s in &summaries {
            assert!(s.completed <= s.submitted);
            assert!(s.steps > 0);
        }
        let json = serde_json::to_string(&summaries).unwrap();
        let back: Vec<PolicyServingSummary> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summaries);
    }
}

//! Forward hot-path experiment: legacy allocating path vs. the zero-allocation
//! workspace path, measured in the same process.
//!
//! PR 8 made the per-token forward pass allocation-free in steady state
//! ([`keyformer_model::workspace`]): a per-session [`keyformer_model::ForwardWorkspace`]
//! reuses every buffer whose size the model configuration fixes, a per-layer
//! rotated-key cache stops re-rotating every cached RoPE key on every decode
//! step, and attention reads cache rows through fused, allocation-free
//! visitors instead of per-row copies. The legacy path is kept callable
//! ([`keyformer_model::ForwardPath::Legacy`]) precisely so this experiment can
//! measure both implementations against the same weights in one process —
//! no cross-build noise — and verify their token streams are identical.
//!
//! The grid covers the three positional families (RoPE gains the cached
//! rotations; ALiBi and learned gain the fused row iteration), the two KV
//! dtypes and a budgeted Keyformer configuration where eviction exercises the
//! rotation cache's invalidation path. Wall-clock fields (`wall_ms`,
//! `ns_per_token`, `tokens_per_sec`, `speedup`) vary run to run and are
//! stripped by the CI identity check; everything else is deterministic.

use crate::report::{fmt, Table};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::{GenerationConfig, GenerationOutput};
use keyformer_model::model::TransformerModel;
use keyformer_model::session::Session;
use keyformer_model::workspace::ForwardPath;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Weight seed of the hot-path experiment's models (distinct from the other
/// benches so regressions cannot mask each other).
const MODEL_SEED: u64 = 29;
/// Prompt length of the measured requests.
const PROMPT_LEN: usize = 64;
/// Tokens generated per request — long relative to the prompt so the decode
/// loop, not prefill, dominates the wall clock.
const GEN_TOKENS: usize = 192;
/// KV budget fraction applied to the budgeted configuration.
const CACHE_FRACTION: f64 = 0.5;

/// Machine-readable summary of one (configuration, forward-path) run, emitted
/// as `BENCH_hotpath.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotpathSummary {
    /// Configuration label (family / policy / KV dtype).
    pub config: String,
    /// `legacy` or `workspace`.
    pub path: String,
    /// Prompt tokens per request.
    pub prompt_len: usize,
    /// Tokens generated per request.
    pub gen_tokens: usize,
    /// Timed repetitions of the full request.
    pub reps: usize,
    /// Forward passes executed across all repetitions (prompt + generated).
    pub forwards: usize,
    /// Wall-clock milliseconds across all repetitions.
    pub wall_ms: f64,
    /// Nanoseconds per forward pass (one token through the full stack).
    pub ns_per_token: f64,
    /// Forward passes per wall-clock second.
    pub tokens_per_sec: f64,
    /// Wall-clock speedup over the same configuration's legacy run (1.0 for
    /// the legacy rows themselves).
    pub speedup: f64,
    /// Whether this run's token stream is byte-identical to the legacy path's.
    /// Anything but `true` is a correctness bug.
    pub token_identical: bool,
}

/// One measured configuration of the grid.
struct Config {
    label: String,
    family: ModelFamily,
    policy: PolicySpec,
    budget: Option<CacheBudgetSpec>,
    dtype: KvDtype,
}

/// The measured grid: the headline full-attention RoPE row first (the
/// acceptance bar's ≥ 2× claim is about that one), then the other positional
/// families, the quantized store and a budgeted Keyformer row whose eviction
/// exercises the rotated-key cache's invalidation path.
fn hotpath_configs() -> Vec<Config> {
    let budget = CacheBudgetSpec::with_fraction(CACHE_FRACTION).expect("valid fraction");
    let pct = (CACHE_FRACTION * 100.0) as usize;
    vec![
        Config {
            label: "GPT-J-like/Full/f32".into(),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "Cerebras-like/Full/f32".into(),
            family: ModelFamily::CerebrasLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "MPT-like/Full/f32".into(),
            family: ModelFamily::MptLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "GPT-J-like/Full/u8".into(),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::U8,
        },
        Config {
            label: format!("GPT-J-like/Keyformer@{pct}%/f32"),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::keyformer_default(),
            budget: Some(budget),
            dtype: KvDtype::F32,
        },
        Config {
            label: format!("MPT-like/H2O@{pct}%/u8"),
            family: ModelFamily::MptLike,
            policy: PolicySpec::h2o_default(),
            budget: Some(budget),
            dtype: KvDtype::U8,
        },
    ]
}

/// The deterministic prompt every run decodes from.
fn prompt(prompt_len: usize, vocab: usize) -> Vec<u32> {
    (0..prompt_len)
        .map(|t| ((t * 17 + 3) % vocab) as u32)
        .collect()
}

/// Runs one request on a fresh session along `path`, returning the output.
fn run_once(
    model: &TransformerModel,
    cfg: &Config,
    path: ForwardPath,
    prompt: &[u32],
    gen: &GenerationConfig,
) -> GenerationOutput {
    let policy = cfg.policy.build().expect("zoo specs build");
    let mut session =
        Session::with_dtype(model, policy, cfg.budget, cfg.dtype).with_forward_path(path);
    session.generate(prompt, gen).expect("request completes")
}

/// Times `reps` repetitions of the request along `path` (after one untimed
/// warm-up), returning the wall clock and the first repetition's output.
fn timed_runs(
    model: &TransformerModel,
    cfg: &Config,
    path: ForwardPath,
    prompt: &[u32],
    gen: &GenerationConfig,
    reps: usize,
) -> (f64, GenerationOutput) {
    let reference = run_once(model, cfg, path, prompt, gen);
    let start = Instant::now();
    for _ in 0..reps {
        let out = run_once(model, cfg, path, prompt, gen);
        debug_assert_eq!(out, reference, "hot-path runs must be deterministic");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (wall_ms, reference)
}

/// Runs the full grid for one request shape.
fn hotpath_grid(prompt_len: usize, gen_tokens: usize, reps: usize) -> (Table, Vec<HotpathSummary>) {
    let mut table = Table::new(
        format!(
            "Forward hot path: legacy allocating path vs zero-allocation \
             workspace path, same process (prompt {prompt_len}, {gen_tokens} \
             generated tokens, {reps} timed repetitions; token streams \
             verified identical between paths)"
        ),
        &[
            "config",
            "path",
            "forwards",
            "wall_ms",
            "ns/token",
            "tokens/s",
            "speedup",
            "identical",
        ],
    );
    let gen = GenerationConfig::new(gen_tokens);
    let mut summaries = Vec::new();
    for cfg in hotpath_configs() {
        let model = cfg.family.build(MODEL_SEED);
        let prompt = prompt(prompt_len, model.config().vocab_size);
        let forwards = reps * (prompt_len + gen_tokens);
        let mut legacy_result: Option<(f64, GenerationOutput)> = None;
        for path in [ForwardPath::Legacy, ForwardPath::Workspace] {
            let (wall_ms, output) = timed_runs(&model, &cfg, path, &prompt, &gen, reps);
            let (base_ms, token_identical) = match &legacy_result {
                None => {
                    legacy_result = Some((wall_ms, output));
                    (wall_ms, true)
                }
                Some((base_ms, base_out)) => (*base_ms, output == *base_out),
            };
            let secs = (wall_ms / 1e3).max(f64::EPSILON);
            let summary = HotpathSummary {
                config: cfg.label.clone(),
                path: match path {
                    ForwardPath::Legacy => "legacy".into(),
                    ForwardPath::Workspace => "workspace".into(),
                },
                prompt_len,
                gen_tokens,
                reps,
                forwards,
                wall_ms,
                ns_per_token: wall_ms * 1e6 / forwards as f64,
                tokens_per_sec: forwards as f64 / secs,
                speedup: base_ms / wall_ms.max(f64::EPSILON),
                token_identical,
            };
            table.push_row(vec![
                summary.config.clone(),
                summary.path.clone(),
                summary.forwards.to_string(),
                fmt(summary.wall_ms),
                fmt(summary.ns_per_token),
                fmt(summary.tokens_per_sec),
                fmt(summary.speedup),
                summary.token_identical.to_string(),
            ]);
            summaries.push(summary);
        }
    }
    (table, summaries)
}

/// Runs the hot-path grid and returns both the rendered table and the
/// per-(configuration, path) summaries.
///
/// `samples` scales the timed repetitions per configuration.
pub fn hotpath_report(samples: usize) -> (Table, Vec<HotpathSummary>) {
    hotpath_grid(PROMPT_LEN, GEN_TOKENS, samples.max(1))
}

/// Table-only entry point used by the experiment registry.
pub fn hotpath(samples: usize) -> Table {
    hotpath_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_config_on_both_paths_and_stays_identical() {
        // A short request shape keeps the full grid affordable in unoptimized
        // test builds; the code path is exactly the experiment's.
        let (table, summaries) = hotpath_grid(10, 4, 1);
        assert_eq!(
            summaries.len(),
            hotpath_configs().len() * 2,
            "every configuration runs on both paths"
        );
        for summary in &summaries {
            assert!(
                summary.token_identical,
                "{} on the {} path diverged from legacy",
                summary.config, summary.path
            );
            assert!(summary.wall_ms > 0.0 && summary.speedup > 0.0);
            assert_eq!(summary.forwards, 14);
        }
        assert_eq!(table.rows.len(), summaries.len());
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let summaries = vec![HotpathSummary {
            config: "GPT-J-like/Full/f32".into(),
            path: "workspace".into(),
            prompt_len: 64,
            gen_tokens: 192,
            reps: 3,
            forwards: 768,
            wall_ms: 120.5,
            ns_per_token: 156_901.0,
            tokens_per_sec: 6373.4,
            speedup: 2.7,
            token_identical: true,
        }];
        let json = serde_json::to_string(&summaries).expect("serializes");
        let back: Vec<HotpathSummary> = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, summaries);
    }
}

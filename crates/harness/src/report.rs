//! Result tables: the uniform output format of every experiment.

use serde::{Deserialize, Serialize};

/// A simple rectangular result table with named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment title (e.g. "Figure 7: ROUGE-2 vs KV cache budget").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; each row has one cell per column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (comma-separated, no quoting — cells never contain
    /// commas).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Looks up a cell by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(|s| s.as_str())
    }
}

/// Formats a float with three decimal places (the precision the paper reports).
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut t = Table::new("Demo", &["policy", "rouge2"]);
        t.push_row(vec!["Full".into(), fmt(0.5)]);
        t.push_row(vec!["Keyformer".into(), fmt(0.45)]);
        let text = t.render_text();
        assert!(text.contains("Demo"));
        assert!(text.contains("Keyformer"));
        assert!(text.contains("0.450"));
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(t.cell(0, "policy"), Some("Full"));
        assert_eq!(t.cell(1, "rouge2"), Some("0.450"));
        assert_eq!(t.cell(0, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn fmt_rounds_to_three_places() {
        assert_eq!(fmt(0.12345), "0.123");
        assert_eq!(fmt(2.0), "2.000");
    }
}

//! Experiment registry: maps experiment identifiers to the functions that
//! regenerate them.

use crate::report::Table;
use crate::{
    accuracy, analysis, hotpath, network, paging, parallel, perf, prefill, prefix, quantization,
    serving, streaming,
};
use serde::{Deserialize, Serialize};

/// Identifier of one paper table or figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Figure 1: latency / memory vs. sequence length.
    Fig1,
    /// Figure 3a: attention sparsity per layer.
    Fig3a,
    /// Figure 3b: attention-mass CDF.
    Fig3b,
    /// Figure 3c: attention schemes at 50% cache.
    Fig3c,
    /// Figure 4: softmax shift after eviction.
    Fig4,
    /// Figure 5: damping-factor sweep.
    Fig5,
    /// Figures 7/13: ROUGE vs. cache budget.
    Fig7,
    /// Figure 8: long-context summarization.
    Fig8,
    /// Figure 9: iso-accuracy speedup.
    Fig9,
    /// Figure 10: data movement / scaled-dot-product breakdown.
    Fig10,
    /// Figure 11: sparsity vs. threshold.
    Fig11,
    /// Figure 12: recent-ratio sweep.
    Fig12,
    /// Figures 14/15: heat-map summary.
    Fig14,
    /// Figure 16: temperature sweep.
    Fig16,
    /// Table 1: generation throughput.
    Table1,
    /// Table 2: few-shot accuracy.
    Table2,
    /// Table 3: score-function / positional ablation.
    Table3,
    /// Table 4: logit-adjustment ablation.
    Table4,
    /// Serving throughput: requests completed per scheduler step under a fixed
    /// KV-byte pool (continuous batching; not a paper artefact — the end-to-end
    /// systems consequence of Table 1's footprint reductions).
    ServeThroughput,
    /// Paged-allocator comparison: throughput, pool utilization and overshoot
    /// versus block size at a fixed pool, against a contiguous
    /// (sequence-granularity) baseline (not a paper artefact).
    Paging,
    /// Copy-on-write prefix sharing: shared-system-prompt workload (prefix
    /// length × fan-out) with sharing off vs. on at a fixed pool (not a paper
    /// artefact).
    PrefixSharing,
    /// Streaming latency: TTFT and inter-token-latency percentiles per policy
    /// under mixed-priority traffic with mid-flight cancellations, via the
    /// event-driven engine (not a paper artefact).
    StreamingLatency,
    /// Parallel decode scaling: wall-clock steps/sec vs `decode_workers`
    /// across the policy zoo, token streams verified identical to the
    /// sequential baseline at every worker count (not a paper artefact).
    ParallelScaling,
    /// Quantized KV storage: u8 blocks (per-block affine scale/zero-point)
    /// vs f32 across policies and budgets at a fixed byte pool — completed
    /// requests, utilization and ROUGE deltas (not a paper artefact).
    Quantization,
    /// Forward hot path: legacy allocating forward pass vs the zero-allocation
    /// workspace path (reusable scratch + cached RoPE key rotations + fused
    /// block-row iteration), same process, token streams verified identical
    /// (not a paper artefact).
    Hotpath,
    /// Prefill batching: chunk-batched GEMM prompt pass vs the sequential
    /// token-at-a-time pass (prefill tokens/sec, TTFT and speedup per chunk
    /// size, token streams verified identical) (not a paper artefact).
    Prefill,
    /// Network front-end: the `kf_serve` node driven over loopback sockets —
    /// burst/replay throughput, streamed TTFT, cache hit rate and coalescing
    /// with dedup off vs. on, token streams verified identical across repeats,
    /// phases and dedup settings (not a paper artefact).
    Network,
}

impl ExperimentId {
    /// Every experiment, in paper order.
    pub fn all() -> Vec<ExperimentId> {
        use ExperimentId::*;
        vec![
            Fig1,
            Fig3a,
            Fig3b,
            Fig3c,
            Fig4,
            Fig5,
            Fig7,
            Fig8,
            Fig9,
            Fig10,
            Fig11,
            Fig12,
            Fig14,
            Fig16,
            Table1,
            Table2,
            Table3,
            Table4,
            ServeThroughput,
            Paging,
            PrefixSharing,
            StreamingLatency,
            ParallelScaling,
            Quantization,
            Hotpath,
            Prefill,
            Network,
        ]
    }

    /// Parses a command-line name such as `fig7` or `table3`.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        use ExperimentId::*;
        Some(match name.to_ascii_lowercase().as_str() {
            "fig1" => Fig1,
            "fig3a" => Fig3a,
            "fig3b" => Fig3b,
            "fig3c" => Fig3c,
            "fig4" => Fig4,
            "fig5" => Fig5,
            "fig7" | "fig13" => Fig7,
            "fig8" => Fig8,
            "fig9" => Fig9,
            "fig10" => Fig10,
            "fig11" => Fig11,
            "fig12" => Fig12,
            "fig14" | "fig15" => Fig14,
            "fig16" => Fig16,
            "table1" => Table1,
            "table2" => Table2,
            "table3" => Table3,
            "table4" => Table4,
            "serve_throughput" => ServeThroughput,
            "paging" => Paging,
            "prefix_sharing" => PrefixSharing,
            "streaming_latency" => StreamingLatency,
            "parallel_scaling" => ParallelScaling,
            "quantization" => Quantization,
            "hotpath" => Hotpath,
            "prefill" => Prefill,
            "network" => Network,
            _ => return None,
        })
    }

    /// Command-line name of this experiment.
    pub fn name(&self) -> &'static str {
        use ExperimentId::*;
        match self {
            Fig1 => "fig1",
            Fig3a => "fig3a",
            Fig3b => "fig3b",
            Fig3c => "fig3c",
            Fig4 => "fig4",
            Fig5 => "fig5",
            Fig7 => "fig7",
            Fig8 => "fig8",
            Fig9 => "fig9",
            Fig10 => "fig10",
            Fig11 => "fig11",
            Fig12 => "fig12",
            Fig14 => "fig14",
            Fig16 => "fig16",
            Table1 => "table1",
            Table2 => "table2",
            Table3 => "table3",
            Table4 => "table4",
            ServeThroughput => "serve_throughput",
            Paging => "paging",
            PrefixSharing => "prefix_sharing",
            StreamingLatency => "streaming_latency",
            ParallelScaling => "parallel_scaling",
            Quantization => "quantization",
            Hotpath => "hotpath",
            Prefill => "prefill",
            Network => "network",
        }
    }
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Runs one experiment. `samples` scales how many synthetic samples the accuracy
/// experiments use (performance experiments ignore it).
pub fn run_experiment(id: ExperimentId, samples: usize) -> Table {
    let budgets = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let small_budgets = [0.1, 0.2, 0.3, 0.4, 0.5];
    match id {
        ExperimentId::Fig1 => perf::figure1(),
        ExperimentId::Fig3a => analysis::figure3a(samples),
        ExperimentId::Fig3b => analysis::figure3b(samples),
        ExperimentId::Fig3c => accuracy::figure3c(samples),
        ExperimentId::Fig4 => analysis::figure4(),
        ExperimentId::Fig5 => accuracy::figure5(samples),
        ExperimentId::Fig7 => accuracy::figure7(samples, &budgets),
        ExperimentId::Fig8 => accuracy::figure8(samples, &small_budgets),
        ExperimentId::Fig9 => perf::figure9(),
        ExperimentId::Fig10 => perf::figure10(),
        ExperimentId::Fig11 => analysis::figure11(samples),
        ExperimentId::Fig12 => accuracy::figure12(samples),
        ExperimentId::Fig14 => analysis::figure14(samples),
        ExperimentId::Fig16 => accuracy::figure16(samples),
        ExperimentId::Table1 => perf::table1(),
        ExperimentId::Table2 => accuracy::table2(samples.max(4)),
        ExperimentId::Table3 => accuracy::table3(samples),
        ExperimentId::Table4 => accuracy::table4(samples),
        ExperimentId::ServeThroughput => serving::serve_throughput(samples),
        ExperimentId::Paging => paging::paging(samples),
        ExperimentId::PrefixSharing => prefix::prefix_sharing(samples),
        ExperimentId::StreamingLatency => streaming::streaming_latency(samples),
        ExperimentId::ParallelScaling => parallel::parallel_scaling(samples),
        ExperimentId::Quantization => quantization::quantization(samples),
        ExperimentId::Hotpath => hotpath::hotpath(samples),
        ExperimentId::Prefill => prefill::prefill(samples),
        ExperimentId::Network => network::network(samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_name() {
        for id in ExperimentId::all() {
            assert_eq!(ExperimentId::parse(id.name()), Some(id), "{id}");
        }
        assert_eq!(ExperimentId::parse("FIG7"), Some(ExperimentId::Fig7));
        assert_eq!(ExperimentId::parse("fig13"), Some(ExperimentId::Fig7));
        assert_eq!(ExperimentId::parse("bogus"), None);
    }

    #[test]
    fn all_lists_every_experiment() {
        // 18 paper artefacts + the serving-throughput, paging, prefix-sharing,
        // streaming-latency, parallel-scaling, quantization, hotpath, prefill
        // and network experiments.
        assert_eq!(ExperimentId::all().len(), 27);
    }

    #[test]
    fn perf_experiments_run_instantly() {
        for id in [
            ExperimentId::Fig1,
            ExperimentId::Fig9,
            ExperimentId::Fig10,
            ExperimentId::Table1,
        ] {
            let table = run_experiment(id, 1);
            assert!(!table.rows.is_empty(), "{id} produced no rows");
        }
    }
}

//! `kf-experiments` — regenerate the Keyformer paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! kf-experiments [--samples N] [--csv] [experiment ...]
//! kf-experiments --list
//! ```
//!
//! With no experiment names, every experiment runs (this takes a few minutes for the
//! accuracy sweeps). Experiment names follow the paper: `fig1`, `fig3a` … `fig16`,
//! `table1` … `table4`.

use keyformer_harness::{run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 3usize;
    let mut csv = false;
    let mut requested: Vec<ExperimentId> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for id in ExperimentId::all() {
                    println!("{id}");
                }
                return;
            }
            "--csv" => csv = true,
            "--samples" => {
                samples = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples requires a positive integer");
                    std::process::exit(2);
                });
            }
            name => match ExperimentId::parse(name) {
                Some(id) => requested.push(id),
                None => {
                    eprintln!("unknown experiment '{name}'; use --list to see options");
                    std::process::exit(2);
                }
            },
        }
    }
    if requested.is_empty() {
        requested = ExperimentId::all();
    }
    for id in requested {
        eprintln!("running {id} (samples = {samples}) ...");
        let table = run_experiment(id, samples);
        if csv {
            println!("# {}", table.title);
            println!("{}", table.render_csv());
        } else {
            println!("{}", table.render_text());
        }
    }
}

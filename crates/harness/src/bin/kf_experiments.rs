//! `kf-experiments` — regenerate the Keyformer paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! kf-experiments [--samples N] [--csv] [experiment ...]
//! kf-experiments --list
//! ```
//!
//! With no experiment names, every experiment runs (this takes a few minutes for the
//! accuracy sweeps). Experiment names follow the paper: `fig1`, `fig3a` … `fig16`,
//! `table1` … `table4`, plus the serving-layer `serve_throughput` experiment.
//!
//! Running `serve_throughput` additionally writes `BENCH_serving.json` (requests
//! per scheduler step and mean KV bytes per policy) to the working directory, so
//! CI can archive the serving-throughput trajectory as machine-readable data.

use keyformer_harness::serving;
use keyformer_harness::{run_experiment, ExperimentId};

/// File the serving experiment's machine-readable summary is written to.
const SERVING_JSON: &str = "BENCH_serving.json";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 3usize;
    let mut csv = false;
    let mut requested: Vec<ExperimentId> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for id in ExperimentId::all() {
                    println!("{id}");
                }
                return;
            }
            "--csv" => csv = true,
            "--samples" => {
                samples = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples requires a positive integer");
                    std::process::exit(2);
                });
            }
            name => match ExperimentId::parse(name) {
                Some(id) => requested.push(id),
                None => {
                    eprintln!("unknown experiment '{name}'; use --list to see options");
                    std::process::exit(2);
                }
            },
        }
    }
    if requested.is_empty() {
        requested = ExperimentId::all();
    }
    for id in requested {
        eprintln!("running {id} (samples = {samples}) ...");
        let table = if id == ExperimentId::ServeThroughput {
            let (table, summaries) = serving::serve_throughput_report(samples);
            // A missing or stale JSON data point must fail loudly, not leave a
            // previous run's file looking current.
            let json = serde_json::to_string(&summaries).unwrap_or_else(|e| {
                eprintln!("could not serialize serving summary: {e}");
                std::process::exit(1);
            });
            if let Err(e) = std::fs::write(SERVING_JSON, json) {
                eprintln!("could not write {SERVING_JSON}: {e}");
                std::process::exit(1);
            }
            eprintln!("wrote {SERVING_JSON}");
            table
        } else {
            run_experiment(id, samples)
        };
        if csv {
            println!("# {}", table.title);
            println!("{}", table.render_csv());
        } else {
            println!("{}", table.render_text());
        }
    }
}

//! `kf-experiments` — regenerate the Keyformer paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! kf-experiments [--samples N] [--csv] [experiment ...]
//! kf-experiments --list
//! ```
//!
//! With no experiment names, every experiment runs (this takes a few minutes for the
//! accuracy sweeps). Experiment names follow the paper: `fig1`, `fig3a` … `fig16`,
//! `table1` … `table4`, plus the serving-layer `serve_throughput` experiment.
//!
//! Running `serve_throughput` additionally writes `BENCH_serving.json` (requests
//! per scheduler step and mean KV bytes per policy), running `paging` writes
//! `BENCH_paging.json` (throughput, pool utilization and overshoot per block
//! configuration), running `prefix_sharing` writes `BENCH_prefix.json`
//! (shared-system-prompt workload with sharing off vs. on), and running
//! `streaming_latency` writes `BENCH_latency.json` (TTFT/inter-token-latency
//! percentiles per policy under mixed-priority traffic with cancellations),
//! and running `parallel_scaling` writes `BENCH_parallel.json` (wall-clock
//! steps/sec vs `decode_workers`, token-identity verified against the
//! sequential baseline), and running `quantization` writes `BENCH_quant.json`
//! (u8 vs f32 KV storage at a fixed byte pool: completed requests,
//! utilization and ROUGE deltas per policy/budget), and running `hotpath`
//! writes `BENCH_hotpath.json` (legacy allocating forward path vs the
//! zero-allocation workspace path: ns/token, tokens/sec and speedup, token
//! streams verified identical), and running `prefill` writes
//! `BENCH_prefill.json` (chunk-batched GEMM prompt pass vs the sequential
//! token-at-a-time pass: prefill tokens/sec, TTFT and speedup per chunk size,
//! token streams verified identical), and running `network` writes
//! `BENCH_network.json` (the `kf_serve` node driven over loopback sockets:
//! burst/replay throughput, streamed TTFT, cache hit rate and coalescing with
//! dedup off vs. on) to the working directory, so CI can archive the serving
//! trajectories as machine-readable data.

use keyformer_harness::report::Table;
use keyformer_harness::{
    hotpath, network, paging, parallel, prefill, prefix, quantization, serving, streaming,
};
use keyformer_harness::{run_experiment, ExperimentId};
use serde::Serialize;

/// File the serving experiment's machine-readable summary is written to.
const SERVING_JSON: &str = "BENCH_serving.json";
/// File the paging experiment's machine-readable summary is written to.
const PAGING_JSON: &str = "BENCH_paging.json";
/// File the prefix-sharing experiment's machine-readable summary is written to.
const PREFIX_JSON: &str = "BENCH_prefix.json";
/// File the streaming-latency experiment's machine-readable summary is written
/// to.
const LATENCY_JSON: &str = "BENCH_latency.json";
/// File the parallel-scaling experiment's machine-readable summary is written
/// to.
const PARALLEL_JSON: &str = "BENCH_parallel.json";
/// File the quantization experiment's machine-readable summary is written to.
const QUANT_JSON: &str = "BENCH_quant.json";
/// File the hot-path experiment's machine-readable summary is written to.
const HOTPATH_JSON: &str = "BENCH_hotpath.json";
/// File the prefill experiment's machine-readable summary is written to.
const PREFILL_JSON: &str = "BENCH_prefill.json";
/// File the network experiment's machine-readable summary is written to.
const NETWORK_JSON: &str = "BENCH_network.json";

/// Writes an experiment's machine-readable summary, exiting loudly on failure —
/// a missing or stale JSON data point must not leave a previous run's file
/// looking current.
fn write_summary<T: Serialize>(path: &str, summaries: &T) {
    let json = serde_json::to_string(summaries).unwrap_or_else(|e| {
        eprintln!("could not serialize summary for {path}: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

/// Runs one experiment, writing the machine-readable artefact for the
/// experiments that have one.
fn run_with_artifacts(id: ExperimentId, samples: usize) -> Table {
    match id {
        ExperimentId::ServeThroughput => {
            let (table, summaries) = serving::serve_throughput_report(samples);
            write_summary(SERVING_JSON, &summaries);
            table
        }
        ExperimentId::Paging => {
            let (table, summaries) = paging::paging_report(samples);
            write_summary(PAGING_JSON, &summaries);
            table
        }
        ExperimentId::PrefixSharing => {
            let (table, summaries) = prefix::prefix_sharing_report(samples);
            write_summary(PREFIX_JSON, &summaries);
            table
        }
        ExperimentId::StreamingLatency => {
            let (table, summaries) = streaming::streaming_latency_report(samples);
            write_summary(LATENCY_JSON, &summaries);
            table
        }
        ExperimentId::ParallelScaling => {
            let (table, summaries) = parallel::parallel_scaling_report(samples);
            write_summary(PARALLEL_JSON, &summaries);
            table
        }
        ExperimentId::Quantization => {
            let (table, summaries) = quantization::quantization_report(samples);
            write_summary(QUANT_JSON, &summaries);
            table
        }
        ExperimentId::Hotpath => {
            let (table, summaries) = hotpath::hotpath_report(samples);
            write_summary(HOTPATH_JSON, &summaries);
            table
        }
        ExperimentId::Prefill => {
            let (table, summaries) = prefill::prefill_report(samples);
            write_summary(PREFILL_JSON, &summaries);
            table
        }
        ExperimentId::Network => {
            let (table, summaries) = network::network_report(samples);
            write_summary(NETWORK_JSON, &summaries);
            table
        }
        _ => run_experiment(id, samples),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut samples = 3usize;
    let mut csv = false;
    let mut requested: Vec<ExperimentId> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => {
                for id in ExperimentId::all() {
                    println!("{id}");
                }
                return;
            }
            "--csv" => csv = true,
            "--samples" => {
                samples = iter.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples requires a positive integer");
                    std::process::exit(2);
                });
            }
            name => match ExperimentId::parse(name) {
                Some(id) => requested.push(id),
                None => {
                    eprintln!("unknown experiment '{name}'; use --list to see options");
                    std::process::exit(2);
                }
            },
        }
    }
    if requested.is_empty() {
        requested = ExperimentId::all();
    }
    for id in requested {
        eprintln!("running {id} (samples = {samples}) ...");
        let table = run_with_artifacts(id, samples);
        if csv {
            println!("# {}", table.title);
            println!("{}", table.render_csv());
        } else {
            println!("{}", table.render_text());
        }
    }
}

//! Streaming-latency experiment: TTFT and inter-token-latency percentiles per
//! cache policy under mixed-priority traffic with mid-flight cancellations.
//!
//! The serving-throughput experiment measures *how many* requests a fixed
//! KV-byte pool completes; this one measures *how it feels per token*. Every
//! policy of the zoo runs the same staggered arrival stream through the
//! event-driven [`Engine`]: requests arrive two per scheduler step, every
//! fourth arrival is submitted at elevated priority (jumping the admission
//! queue), and every sixth is cancelled two steps after its first token — the
//! interactive-client behaviours (impatient users, priority tiers) a real
//! streaming endpoint sees. From each completion's
//! [`Completion::first_token_step`]/[`Completion::token_steps`] telemetry the
//! experiment reports, per policy:
//!
//! * **TTFT p50/p95/p99** — scheduler steps from submission to the first
//!   surfaced token. Dominated by queueing: policies with smaller KV budgets
//!   admit more concurrent sequences at the same pool, so the queue drains
//!   faster and tail TTFT falls — the latency face of the paper's throughput
//!   claim (Adnan et al., MLSys 2024, §6.3).
//! * **ITL p50/p95/p99** — the gap between consecutive surfaced tokens,
//!   pooled over all completions. Mostly 1 (one token per batched step);
//!   tail gaps mark steps lost to neighbours' prefills and admissions.
//!
//! [`Engine`]: keyformer_serve::Engine
//! [`Completion::first_token_step`]: keyformer_serve::Completion::first_token_step
//! [`Completion::token_steps`]: keyformer_serve::Completion::token_steps

use crate::report::{fmt, Table};
use crate::serving::MODEL_SEED;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::{Engine, EventKind, Request, RequestId, ServerConfig, SubmitOptions};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Prompt length of every synthetic request (matches the serving experiment).
const PROMPT_LEN: usize = 48;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;
/// KV budget fraction applied to the budgeted policies.
const CACHE_FRACTION: f64 = 0.5;
/// Requests submitted per scheduler step while the stream lasts.
const ARRIVALS_PER_STEP: usize = 2;
/// Every `PRIORITY_EVERY`-th arrival is submitted at [`HIGH_PRIORITY`].
const PRIORITY_EVERY: usize = 4;
/// The elevated priority of the interactive tier.
const HIGH_PRIORITY: u8 = 2;
/// Every `CANCEL_EVERY`-th arrival is cancelled [`CANCEL_AFTER_STEPS`] steps
/// after its first token (an impatient client closing the stream).
const CANCEL_EVERY: usize = 6;
/// Steps between a doomed request's first token and its cancellation.
const CANCEL_AFTER_STEPS: usize = 2;

/// Machine-readable per-policy summary of one streaming-latency run, emitted
/// as `BENCH_latency.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Policy label (e.g. `Keyformer(gumbel, per-layer)@50%`).
    pub policy: String,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests that completed (streamed every token).
    pub completed: usize,
    /// Requests cancelled mid-stream by the synthetic impatient clients.
    pub cancelled: usize,
    /// Scheduler steps until the stream drained.
    pub steps: usize,
    /// Median time-to-first-token over completions, in scheduler steps.
    pub ttft_p50: f64,
    /// 95th-percentile TTFT.
    pub ttft_p95: f64,
    /// 99th-percentile TTFT.
    pub ttft_p99: f64,
    /// Mean TTFT.
    pub ttft_mean: f64,
    /// Median inter-token gap over all completions' consecutive tokens.
    pub itl_p50: f64,
    /// 95th-percentile inter-token gap.
    pub itl_p95: f64,
    /// 99th-percentile inter-token gap.
    pub itl_p99: f64,
    /// Mean TTFT of the elevated-priority completions (the interactive tier).
    pub ttft_mean_high_priority: f64,
    /// Mean TTFT of the normal-priority completions.
    pub ttft_mean_normal: f64,
}

/// The full policy zoo, each with the budget the experiments run it under
/// (`None` only for the full-attention baseline).
fn latency_policies() -> Vec<(String, PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = CacheBudgetSpec::with_fraction(CACHE_FRACTION).expect("valid fraction");
    let pct = (CACHE_FRACTION * 100.0) as usize;
    vec![
        ("Full".into(), PolicySpec::Full, None),
        (format!("Window@{pct}%"), PolicySpec::Window, Some(budget)),
        (
            format!("Dilated@{pct}%"),
            PolicySpec::DilatedWindow { dilation: 1 },
            Some(budget),
        ),
        (format!("KeyOnly@{pct}%"), PolicySpec::KeyOnly, Some(budget)),
        (
            format!("H2O@{pct}%"),
            PolicySpec::h2o_default(),
            Some(budget),
        ),
        (
            format!("Damped@{pct}%"),
            PolicySpec::Damped { alpha: 0.9 },
            Some(budget),
        ),
        (
            format!("StreamingLLM@{pct}%"),
            PolicySpec::streaming_default(),
            Some(budget),
        ),
        (
            format!("Keyformer@{pct}%"),
            PolicySpec::keyformer_default(),
            Some(budget),
        ),
    ]
}

/// Nearest-rank percentile of an unsorted sample set (0.0 when empty).
fn percentile(samples: &[usize], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

fn mean(samples: &[usize]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<usize>() as f64 / samples.len() as f64
    }
}

/// The deterministic arrival stream: prompt patterns and sampling seeds vary
/// per request; every [`PRIORITY_EVERY`]-th request is high-priority.
fn request_stream(num: usize) -> Vec<(Request, SubmitOptions)> {
    (0..num)
        .map(|i| {
            let salt = i as u32;
            let prompt: Vec<u32> = (0..PROMPT_LEN)
                .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
                .collect();
            let request = Request::new(i as u64, prompt, GenerationConfig::new(GEN_TOKENS));
            let options = if i % PRIORITY_EVERY == PRIORITY_EVERY - 1 {
                SubmitOptions::new().with_priority(HIGH_PRIORITY)
            } else {
                SubmitOptions::new()
            };
            (request, options)
        })
        .collect()
}

/// Runs the streaming-latency comparison and returns both the rendered table
/// and the per-policy summaries.
///
/// `samples` scales the request count (16 per sample, matching the serving
/// experiment's stream).
pub fn streaming_latency_report(samples: usize) -> (Table, Vec<LatencySummary>) {
    let samples = samples.max(1);
    let num_requests = 16 * samples;
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    // Same pool as the serving-throughput experiment, so the two JSON
    // artefacts describe the same memory envelope.
    let pool_bytes = crate::sizing::steady_pool_bytes(&model, PROMPT_LEN, GEN_TOKENS, KvDtype::F32);
    let step_cap = 400 * samples;

    let mut table = Table::new(
        format!(
            "Streaming latency at a fixed {pool_bytes}-byte KV pool: TTFT and \
             inter-token-latency percentiles in scheduler steps ({num_requests} requests, \
             {ARRIVALS_PER_STEP}/step arrivals, every {PRIORITY_EVERY}th high-priority, \
             every {CANCEL_EVERY}th cancelled {CANCEL_AFTER_STEPS} steps after first token)"
        ),
        &[
            "policy",
            "completed",
            "cancelled",
            "steps",
            "ttft_p50",
            "ttft_p95",
            "ttft_p99",
            "itl_p50",
            "itl_p95",
            "itl_p99",
            "ttft_high_prio",
        ],
    );
    let mut summaries = Vec::new();
    for (label, policy, budget) in latency_policies() {
        let mut engine = Engine::new(&model, ServerConfig::new(policy, budget, pool_bytes))
            .expect("latency config is valid");
        let mut arrivals = request_stream(num_requests).into_iter();
        let mut cancel_at: HashMap<RequestId, usize> = HashMap::new();
        let mut exhausted = false;
        while !exhausted || !engine.is_idle() {
            if engine.steps() >= step_cap {
                break;
            }
            for _ in 0..ARRIVALS_PER_STEP {
                match arrivals.next() {
                    Some((request, options)) => {
                        engine
                            .submit_with(request, options)
                            .expect("synthetic requests carry no overrides");
                    }
                    None => exhausted = true,
                }
            }
            engine.step();
            // Impatient clients: watch for first tokens of doomed requests
            // and schedule their cancellation.
            for event in engine.drain_events() {
                if let EventKind::FirstToken { .. } = event.kind {
                    if event.id.raw() as usize % CANCEL_EVERY == CANCEL_EVERY - 1 {
                        cancel_at.insert(event.id, event.step + CANCEL_AFTER_STEPS);
                    }
                }
            }
            let now = engine.steps();
            let due: Vec<RequestId> = cancel_at
                .iter()
                .filter(|(_, &at)| at <= now)
                .map(|(&id, _)| id)
                .collect();
            for id in due {
                cancel_at.remove(&id);
                engine.cancel(id);
            }
        }
        let stats = *engine.stats();
        let completions = engine.completions();
        let ttft: Vec<usize> = completions.iter().filter_map(|c| c.ttft_steps()).collect();
        let itl: Vec<usize> = completions
            .iter()
            .flat_map(|c| c.inter_token_steps())
            .collect();
        let high: Vec<usize> = completions
            .iter()
            .filter(|c| c.id.raw() as usize % PRIORITY_EVERY == PRIORITY_EVERY - 1)
            .filter_map(|c| c.ttft_steps())
            .collect();
        let normal: Vec<usize> = completions
            .iter()
            .filter(|c| c.id.raw() as usize % PRIORITY_EVERY != PRIORITY_EVERY - 1)
            .filter_map(|c| c.ttft_steps())
            .collect();
        let summary = LatencySummary {
            policy: label,
            submitted: num_requests,
            completed: completions.len(),
            cancelled: stats.cancelled,
            steps: stats.steps,
            ttft_p50: percentile(&ttft, 50.0),
            ttft_p95: percentile(&ttft, 95.0),
            ttft_p99: percentile(&ttft, 99.0),
            ttft_mean: mean(&ttft),
            itl_p50: percentile(&itl, 50.0),
            itl_p95: percentile(&itl, 95.0),
            itl_p99: percentile(&itl, 99.0),
            ttft_mean_high_priority: mean(&high),
            ttft_mean_normal: mean(&normal),
        };
        table.push_row(vec![
            summary.policy.clone(),
            summary.completed.to_string(),
            summary.cancelled.to_string(),
            summary.steps.to_string(),
            fmt(summary.ttft_p50),
            fmt(summary.ttft_p95),
            fmt(summary.ttft_p99),
            fmt(summary.itl_p50),
            fmt(summary.itl_p95),
            fmt(summary.itl_p99),
            fmt(summary.ttft_mean_high_priority),
        ]);
        summaries.push(summary);
    }
    (table, summaries)
}

/// Table-only entry point used by the experiment registry.
pub fn streaming_latency(samples: usize) -> Table {
    streaming_latency_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7], 99.0), 7.0);
        // Ranks are round(p/100 * (n-1)) into the sorted samples.
        let samples: Vec<usize> = (0..100).rev().collect();
        assert_eq!(percentile(&samples, 50.0), 50.0);
        assert_eq!(percentile(&samples, 95.0), 94.0);
        assert_eq!(percentile(&samples, 99.0), 98.0);
        assert_eq!(percentile(&samples, 0.0), 0.0);
        assert_eq!(percentile(&samples, 100.0), 99.0);
    }

    #[test]
    fn summaries_cover_the_zoo_exercise_cancellation_and_serialize() {
        let (table, summaries) = streaming_latency_report(1);
        assert_eq!(summaries.len(), 8, "the whole policy zoo runs");
        assert_eq!(table.rows.len(), 8);
        for s in &summaries {
            assert_eq!(
                s.completed + s.cancelled,
                s.submitted,
                "{}: every request completes or is cancelled",
                s.policy
            );
            assert!(s.cancelled > 0, "{}: cancellations must fire", s.policy);
            assert!(s.ttft_p50 >= 1.0, "{}: TTFT is at least one step", s.policy);
            assert!(s.ttft_p95 >= s.ttft_p50, "{}", s.policy);
            assert!(s.ttft_p99 >= s.ttft_p95, "{}", s.policy);
            assert!(s.itl_p50 >= 1.0, "{}: tokens are one step apart", s.policy);
            assert!(s.itl_p95 >= s.itl_p50, "{}", s.policy);
        }
        let json = serde_json::to_string(&summaries).unwrap();
        let back: Vec<LatencySummary> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summaries);
    }

    #[test]
    fn smaller_budgets_cut_tail_ttft_and_priority_cuts_the_queue() {
        let (_, summaries) = streaming_latency_report(1);
        let by_name = |needle: &str| {
            summaries
                .iter()
                .find(|s| s.policy.starts_with(needle))
                .unwrap_or_else(|| panic!("{needle} missing"))
        };
        let full = by_name("Full");
        let keyformer = by_name("Keyformer");
        // The latency face of the throughput claim: at the same pool, the
        // smaller per-request footprint admits more concurrency, so the queue
        // drains faster and tail TTFT falls.
        assert!(
            keyformer.ttft_p95 < full.ttft_p95,
            "keyformer p95 TTFT {} vs full {}",
            keyformer.ttft_p95,
            full.ttft_p95
        );
        // Elevated-priority arrivals jump the admission queue.
        for s in &summaries {
            assert!(
                s.ttft_mean_high_priority <= s.ttft_mean_normal,
                "{}: high-priority TTFT {} vs normal {}",
                s.policy,
                s.ttft_mean_high_priority,
                s.ttft_mean_normal
            );
        }
    }
}

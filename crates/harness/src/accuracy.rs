//! Accuracy experiments: ROUGE / few-shot accuracy of each cache policy on the
//! synthetic task suites (Figures 3c, 5, 7, 8, 12, 13, 16 and Tables 2, 3, 4).

use crate::report::{fmt, Table};
use keyformer_core::accumulator::ScoreScope;
use keyformer_core::adjustment::LogitAdjustment;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_core::temperature::TemperatureSchedule;
use keyformer_model::config::PositionMode;
use keyformer_model::families::ModelFamily;
use keyformer_model::model::TransformerModel;
use keyformer_text::datasets::dialogue::{DialogueDataset, DialogueSpec};
use keyformer_text::datasets::longdoc::{LongDocDataset, LongDocSpec};
use keyformer_text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer_text::datasets::Sample;
use keyformer_text::eval::{evaluate_fewshot, evaluate_generation, EvalSetting};
use keyformer_text::fewshot::{FewShotTask, TaskKind};
use keyformer_text::rouge::RougeScores;

/// Weight seed shared by every accuracy experiment.
pub const MODEL_SEED: u64 = 3;

fn summarization_samples(samples: usize) -> Vec<Sample> {
    SummarizationDataset::generate(&SummarizationSpec::paper_default(), samples)
        .samples()
        .to_vec()
}

fn dialogue_samples(samples: usize) -> Vec<Sample> {
    DialogueDataset::generate(&DialogueSpec::paper_default(), samples)
        .samples()
        .to_vec()
}

fn longdoc_samples(samples: usize) -> Vec<Sample> {
    LongDocDataset::generate(&LongDocSpec::paper_default(), samples)
        .samples()
        .to_vec()
}

fn run(model: &TransformerModel, setting: &EvalSetting, samples: &[Sample]) -> RougeScores {
    evaluate_generation(model, setting, samples).rouge
}

fn budget(fraction: f64) -> EvalSetting {
    EvalSetting {
        policy: PolicySpec::keyformer_default(),
        budget: Some(CacheBudgetSpec::with_fraction(fraction).expect("valid fraction")),
    }
}

fn setting(policy: PolicySpec, fraction: f64) -> EvalSetting {
    EvalSetting {
        policy,
        budget: Some(CacheBudgetSpec::with_fraction(fraction).expect("valid fraction")),
    }
}

/// Figure 3c: Full vs. Key-only vs. Window vs. H2O at 50% cache (ROUGE-2).
pub fn figure3c(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 3c: accuracy of attention schemes at 50% KV cache (ROUGE-2)",
        &["model", "full", "key_only", "window", "h2o"],
    );
    let data = summarization_samples(samples);
    for family in ModelFamily::paper_families() {
        let model = family.build(MODEL_SEED);
        let full = run(&model, &EvalSetting::full_attention(), &data);
        let key = run(&model, &setting(PolicySpec::KeyOnly, 0.5), &data);
        let window = run(&model, &setting(PolicySpec::Window, 0.5), &data);
        let h2o = run(&model, &setting(PolicySpec::h2o_default(), 0.5), &data);
        table.push_row(vec![
            family.label().into(),
            fmt(full.rouge2.f1),
            fmt(key.rouge2.f1),
            fmt(window.rouge2.f1),
            fmt(h2o.rouge2.f1),
        ]);
    }
    table
}

/// Figure 5: damping-factor sweep at 50% cache for the Cerebras-like model.
pub fn figure5(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 5: damping the accumulated-attention score (Cerebras-like, 50% cache)",
        &["alpha", "rouge1", "rouge2", "rougeL"],
    );
    let data = summarization_samples(samples);
    let model = ModelFamily::CerebrasLike.build(MODEL_SEED);
    let full = run(&model, &EvalSetting::full_attention(), &data);
    table.push_row(vec![
        "full-attention".into(),
        fmt(full.rouge1.f1),
        fmt(full.rouge2.f1),
        fmt(full.rouge_l.f1),
    ]);
    for alpha in [1.0f32, 0.975, 0.95, 0.925, 0.9, 0.875] {
        let scores = run(&model, &setting(PolicySpec::Damped { alpha }, 0.5), &data);
        table.push_row(vec![
            format!("{alpha:.3}"),
            fmt(scores.rouge1.f1),
            fmt(scores.rouge2.f1),
            fmt(scores.rouge_l.f1),
        ]);
    }
    table
}

/// Figures 7 and 13: ROUGE vs. KV-cache budget for every model family on the
/// summarization and conversation tasks, for Full / Window / H2O / Keyformer.
pub fn figure7(samples: usize, budgets: &[f64]) -> Table {
    let mut table = Table::new(
        "Figures 7/13: ROUGE vs KV cache budget (summarization + conversation)",
        &[
            "task", "model", "kv_cache", "policy", "rouge1", "rouge2", "rougeL",
        ],
    );
    let tasks: [(&str, Vec<Sample>); 2] = [
        ("summarization", summarization_samples(samples)),
        ("conversation", dialogue_samples(samples)),
    ];
    for (task_name, data) in &tasks {
        for family in ModelFamily::paper_families() {
            let model = family.build(MODEL_SEED);
            let full = run(&model, &EvalSetting::full_attention(), data);
            table.push_row(vec![
                (*task_name).into(),
                family.label().into(),
                "100%".into(),
                "Full".into(),
                fmt(full.rouge1.f1),
                fmt(full.rouge2.f1),
                fmt(full.rouge_l.f1),
            ]);
            for &fraction in budgets {
                for policy in [
                    PolicySpec::Window,
                    PolicySpec::h2o_default(),
                    PolicySpec::keyformer_default(),
                ] {
                    let scores = run(&model, &setting(policy, fraction), data);
                    table.push_row(vec![
                        (*task_name).into(),
                        family.label().into(),
                        format!("{:.0}%", fraction * 100.0),
                        policy.label(),
                        fmt(scores.rouge1.f1),
                        fmt(scores.rouge2.f1),
                        fmt(scores.rouge_l.f1),
                    ]);
                }
            }
        }
    }
    table
}

/// Figure 8: long-document summarization (GovReport-like) with the MPT-storywriter
/// model, Keyformer vs. H2O at small cache budgets.
pub fn figure8(samples: usize, budgets: &[f64]) -> Table {
    let mut table = Table::new(
        "Figure 8: long-context summarization (MPT-storywriter-like)",
        &["kv_cache", "policy", "rouge2"],
    );
    let data = longdoc_samples(samples);
    let model = ModelFamily::MptStorywriterLike.build(MODEL_SEED);
    let full = run(&model, &EvalSetting::full_attention(), &data);
    table.push_row(vec!["100%".into(), "Full".into(), fmt(full.rouge2.f1)]);
    for &fraction in budgets {
        for policy in [PolicySpec::h2o_default(), PolicySpec::keyformer_default()] {
            let scores = run(&model, &setting(policy, fraction), &data);
            table.push_row(vec![
                format!("{:.0}%", fraction * 100.0),
                policy.label(),
                fmt(scores.rouge2.f1),
            ]);
        }
    }
    table
}

/// Figure 12 / Appendix A.4: recent-window ratio sweep at 70% cache.
pub fn figure12(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 12: recent-window ratio sweep at 70% KV cache (ROUGE-2)",
        &["model", "recent_ratio", "rouge2"],
    );
    let data = summarization_samples(samples);
    for family in ModelFamily::paper_families() {
        let model = family.build(MODEL_SEED);
        for ratio in [0.1, 0.2, 0.3, 0.5, 0.7, 0.9] {
            let eval_setting = EvalSetting {
                policy: PolicySpec::keyformer_default(),
                budget: Some(CacheBudgetSpec::new(0.7, ratio).expect("valid spec")),
            };
            let scores = run(&model, &eval_setting, &data);
            table.push_row(vec![
                family.label().into(),
                format!("{ratio:.1}"),
                fmt(scores.rouge2.f1),
            ]);
        }
    }
    table
}

/// Figure 16 / Appendix A.8: temperature sweep (static vs. dynamic τ).
pub fn figure16(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 16: temperature parameter sweep (MPT-like, 50% cache, ROUGE-2)",
        &["temperature", "rouge2"],
    );
    let data = summarization_samples(samples);
    let model = ModelFamily::MptLike.build(MODEL_SEED);
    let dynamic = PolicySpec::Keyformer {
        adjustment: LogitAdjustment::Gumbel,
        temperature: TemperatureSchedule::Linear {
            tau_init: 1.0,
            tau_end: 2.0,
        },
        scope: ScoreScope::PerLayer,
        seed: 7,
    };
    let scores = run(
        &model,
        &EvalSetting {
            policy: dynamic,
            budget: budget(0.5).budget,
        },
        &data,
    );
    table.push_row(vec!["dynamic (1->2)".into(), fmt(scores.rouge2.f1)]);
    for tau in [1.0f32, 2.0, 3.0, 5.0, 10.0, 15.0] {
        let spec = PolicySpec::Keyformer {
            adjustment: LogitAdjustment::Gumbel,
            temperature: TemperatureSchedule::Static(tau),
            scope: ScoreScope::PerLayer,
            seed: 7,
        };
        let scores = run(
            &model,
            &EvalSetting {
                policy: spec,
                budget: budget(0.5).budget,
            },
            &data,
        );
        table.push_row(vec![format!("static {tau}"), fmt(scores.rouge2.f1)]);
    }
    table
}

/// Table 2: few-shot accuracy on the four synthetic lm-eval-style tasks at 50% cache.
pub fn table2(items: usize) -> Table {
    let mut table = Table::new(
        "Table 2: few-shot accuracy (Full / H2O / Keyformer at 50% KV cache)",
        &["task", "model", "policy", "0-shot", "5-shot"],
    );
    for kind in TaskKind::all() {
        let task = FewShotTask::generate(kind, items, 11);
        for family in [ModelFamily::CerebrasLike, ModelFamily::MptLike] {
            let model = family.build(MODEL_SEED);
            for (label, eval_setting) in [
                ("Full", EvalSetting::full_attention()),
                ("H2O", setting(PolicySpec::h2o_default(), 0.5)),
                ("Keyformer", setting(PolicySpec::keyformer_default(), 0.5)),
            ] {
                let zero = evaluate_fewshot(&model, &eval_setting, &task, 0);
                let five = evaluate_fewshot(&model, &eval_setting, &task, 5);
                table.push_row(vec![
                    kind.label().into(),
                    family.label().into(),
                    label.into(),
                    fmt(zero.accuracy),
                    fmt(five.accuracy),
                ]);
            }
        }
    }
    table
}

/// Table 3: ablation of score-function scope, positional handling and the
/// StreamingLLM baseline at 60% cache on the MPT-like model.
pub fn table3(samples: usize) -> Table {
    let mut table = Table::new(
        "Table 3: score-function and positional ablations (MPT-like, 60% cache)",
        &[
            "method", "score_fn", "kv_cache", "rouge1", "rouge2", "rougeL",
        ],
    );
    let data = summarization_samples(samples);
    let model = ModelFamily::MptLike.build(MODEL_SEED);
    let remapped_model = TransformerModel::new(
        ModelFamily::MptLike
            .config(MODEL_SEED)
            .with_position_mode(PositionMode::Remapped),
    )
    .expect("valid config");

    let mut push = |name: &str, score_fn: &str, cache: &str, scores: RougeScores| {
        table.push_row(vec![
            name.into(),
            score_fn.into(),
            cache.into(),
            fmt(scores.rouge1.f1),
            fmt(scores.rouge2.f1),
            fmt(scores.rouge_l.f1),
        ]);
    };

    push(
        "Full",
        "-",
        "100%",
        run(&model, &EvalSetting::full_attention(), &data),
    );
    push(
        "Window",
        "-",
        "60%",
        run(&model, &setting(PolicySpec::Window, 0.6), &data),
    );
    push(
        "H2O",
        "per-layer",
        "60%",
        run(&model, &setting(PolicySpec::h2o_default(), 0.6), &data),
    );
    push(
        "StreamingLLM",
        "-",
        "60%",
        run(
            &model,
            &setting(PolicySpec::streaming_default(), 0.6),
            &data,
        ),
    );
    push(
        "Keyformer (new pos)",
        "per-layer",
        "60%",
        run(
            &remapped_model,
            &setting(PolicySpec::keyformer_default(), 0.6),
            &data,
        ),
    );
    push(
        "Keyformer (org pos)",
        "per-layer",
        "60%",
        run(
            &model,
            &setting(PolicySpec::keyformer_default(), 0.6),
            &data,
        ),
    );
    let shared = PolicySpec::Keyformer {
        adjustment: LogitAdjustment::Gumbel,
        temperature: TemperatureSchedule::default(),
        scope: ScoreScope::Shared,
        seed: 7,
    };
    push(
        "Keyformer (org pos, shared)",
        "shared",
        "60%",
        run(&model, &setting(shared, 0.6), &data),
    );
    table
}

/// Table 4: logit-adjustment ablation (Gumbel / Gaussian / Constant / None) at 60%
/// cache across the three model families.
pub fn table4(samples: usize) -> Table {
    let mut table = Table::new(
        "Table 4: logit adjustment ablation at 60% KV cache (ROUGE-2)",
        &["model", "gumbel", "gaussian", "constant", "none"],
    );
    let data = summarization_samples(samples);
    let adjustments = [
        LogitAdjustment::Gumbel,
        LogitAdjustment::paper_gaussian(),
        LogitAdjustment::paper_constant(),
        LogitAdjustment::None,
    ];
    for family in ModelFamily::paper_families() {
        let model = family.build(MODEL_SEED);
        let mut row = vec![family.label().to_string()];
        for adjustment in adjustments {
            let spec = PolicySpec::Keyformer {
                adjustment,
                temperature: TemperatureSchedule::default(),
                scope: ScoreScope::PerLayer,
                seed: 7,
            };
            let scores = run(&model, &setting(spec, 0.6), &data);
            row.push(fmt(scores.rouge2.f1));
        }
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3c_has_one_row_per_family() {
        let t = figure3c(1);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 5);
    }

    #[test]
    fn figure7_covers_all_cells() {
        let t = figure7(1, &[0.5]);
        // 2 tasks x 3 families x (1 full + 1 budget x 3 policies) rows.
        assert_eq!(t.rows.len(), 2 * 3 * 4);
    }

    #[test]
    fn table4_reports_all_adjustments() {
        let t = table4(1);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.columns.len(), 5);
    }
}

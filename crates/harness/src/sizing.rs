//! Shared, dtype-aware pool-sizing arithmetic for the serving experiments.
//!
//! Every serving-side experiment sizes its byte pool from the same two
//! formulas; before this module each experiment inlined its own copy, which
//! made it easy for the "same memory envelope" claim in their docs to drift.
//! The helpers take a [`KvDtype`] so the quantization sweep can hold the byte
//! pool fixed while the per-token footprint shrinks — the entire mechanism
//! behind its sessions-per-pool headline.

use keyformer_core::cache::KvDtype;
use keyformer_model::model::TransformerModel;

/// Bytes one cached token occupies across all of `model`'s layers when sealed
/// blocks are stored at `dtype` ([`KvDtype::F32`] reproduces the pre-dtype
/// `model.empty_cache().bytes_per_token()` exactly).
pub fn bytes_per_token(model: &TransformerModel, dtype: KvDtype) -> usize {
    model.empty_cache_dtype(dtype).bytes_per_token()
}

/// The serving experiments' standard *tight* pool: two full-attention
/// steady-state requests (`prompt + generation` slots each) plus one token of
/// slack, so 50%-budget policies fit roughly twice the concurrency of full
/// attention. Used by the serving-throughput, paging, prefix-sharing,
/// streaming-latency and quantization experiments — all at the same byte
/// count for f32, so their artefacts describe the same memory envelope.
pub fn steady_pool_bytes(
    model: &TransformerModel,
    prompt_len: usize,
    gen_tokens: usize,
    dtype: KvDtype,
) -> usize {
    let bpt = bytes_per_token(model, dtype);
    (prompt_len + gen_tokens) * 2 * bpt + bpt
}

/// A *roomy* pool admitting `requests` full sequences up front with `slack`
/// extra slots each — the parallel-scaling experiment's sizing, where the
/// point is to measure execution rather than queueing.
pub fn per_request_pool_bytes(
    model: &TransformerModel,
    requests: usize,
    prompt_len: usize,
    gen_tokens: usize,
    slack: usize,
    dtype: KvDtype,
) -> usize {
    requests * (prompt_len + gen_tokens + slack) * bytes_per_token(model, dtype)
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_model::families::ModelFamily;

    #[test]
    fn f32_sizing_reproduces_the_inline_formulas() {
        let model = ModelFamily::Tiny.build(11);
        let bpt = model.empty_cache().bytes_per_token();
        assert_eq!(bytes_per_token(&model, KvDtype::F32), bpt);
        assert_eq!(
            steady_pool_bytes(&model, 48, 8, KvDtype::F32),
            (48 + 8) * 2 * bpt + bpt
        );
        assert_eq!(
            per_request_pool_bytes(&model, 16, 48, 8, 8, KvDtype::F32),
            16 * (48 + 8 + 8) * bpt
        );
    }

    #[test]
    fn u8_tokens_cost_a_quarter_of_f32() {
        let model = ModelFamily::Tiny.build(11);
        assert_eq!(
            bytes_per_token(&model, KvDtype::U8) * 4,
            bytes_per_token(&model, KvDtype::F32)
        );
    }
}

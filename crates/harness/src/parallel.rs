//! Parallel-decode scaling experiment: wall-clock scheduler throughput versus
//! `decode_workers`, proven token-identical at every worker count.
//!
//! PR 6 split the engine's decode round into plan → parallel-execute →
//! serialized-commit: the forward passes of one scheduler step run on a worker
//! pool while admission, eviction, preemption and event ordering stay
//! serialized, so the token streams are byte-identical at any worker count.
//! This experiment measures what that buys. Every policy of the zoo decodes
//! the same fully-admitted batch (all requests submitted up front, pool sized
//! to hold them all, short prompts so decode — not serial prefill — dominates)
//! at `decode_workers` ∈ [`WORKER_COUNTS`], and reports wall-clock steps/sec,
//! tokens/sec and the speedup over the 1-worker baseline. Each run's token
//! streams are compared against the sequential baseline and the verdict is
//! recorded in [`ParallelSummary::token_identical`] — a bench that silently
//! diverged would be measuring a different computation.
//!
//! Scaling caveat (documented here because the acceptance bar asks for it):
//! wall-clock speedup requires spare cores. On a single-core host — the CI
//! container this repo grows in reports `nproc` = 1 — the worker pool can
//! only interleave, never overlap, so every worker count measures the *same*
//! computation plus the pool's fixed costs, and speedup hovers at 1.0× (the
//! measured overhead of per-round `std::thread::scope` spawning is within
//! run-to-run noise, a few percent). On multi-core hosts the per-round
//! parallel section is `batch × per-token forward cost`; rounds of a couple
//! hundred microseconds (GPT-J-like at batch 32) amortize the tens of
//! microseconds of thread-spawn cost, and speedup improves with batch width
//! (`--samples`). The headline correctness claim — byte-identical streams at
//! 1/2/4/8 workers — holds regardless, and is what this bench enforces.

use crate::report::{fmt, Table};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::{GenerationConfig, GenerationOutput};
use keyformer_model::model::TransformerModel;
use keyformer_serve::{Completion, Engine, Request, ServerConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Weight seed of the scaling experiment's model (distinct from the serving
/// experiments so the two benches cannot mask each other's regressions).
const MODEL_SEED: u64 = 23;
/// Prompt length — deliberately short so serial chunked prefill is a small
/// fraction of the run and decode rounds dominate the wall clock.
const PROMPT_LEN: usize = 24;
/// Tokens generated per request — long relative to the prompt, for the same
/// reason.
const GEN_TOKENS: usize = 48;
/// KV budget fraction applied to the budgeted policies.
const CACHE_FRACTION: f64 = 0.5;

/// The worker counts every policy is measured at. The first entry must be 1:
/// it is the sequential baseline later entries are compared against.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Machine-readable summary of one (policy, worker-count) run, emitted as
/// `BENCH_parallel.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelSummary {
    /// Policy label (e.g. `Keyformer(gumbel, per-layer)@50%`).
    pub policy: String,
    /// `decode_workers` this run executed with.
    pub workers: usize,
    /// Requests submitted (all up front).
    pub submitted: usize,
    /// Requests completed (must equal `submitted` at every worker count).
    pub completed: usize,
    /// Scheduler steps until idle.
    pub steps: usize,
    /// Per-session decode steps executed (total tokens generated).
    pub decode_steps: usize,
    /// Wall-clock milliseconds for the whole run loop.
    pub wall_ms: f64,
    /// Scheduler steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Generated tokens per wall-clock second.
    pub tokens_per_sec: f64,
    /// Wall-clock speedup over the same policy's 1-worker run (1.0 for the
    /// baseline itself).
    pub speedup: f64,
    /// Whether this run's per-request token streams are byte-identical to the
    /// 1-worker baseline's. Anything but `true` is a correctness bug.
    pub token_identical: bool,
}

/// The full policy zoo, each with the budget the experiment runs it under
/// (`None` only for the full-attention baseline).
fn scaling_policies() -> Vec<(String, PolicySpec, Option<CacheBudgetSpec>)> {
    let budget = CacheBudgetSpec::with_fraction(CACHE_FRACTION).expect("valid fraction");
    let pct = (CACHE_FRACTION * 100.0) as usize;
    vec![
        ("Full".into(), PolicySpec::Full, None),
        (format!("Window@{pct}%"), PolicySpec::Window, Some(budget)),
        (
            format!("Dilated@{pct}%"),
            PolicySpec::DilatedWindow { dilation: 1 },
            Some(budget),
        ),
        (format!("KeyOnly@{pct}%"), PolicySpec::KeyOnly, Some(budget)),
        (
            format!("H2O@{pct}%"),
            PolicySpec::h2o_default(),
            Some(budget),
        ),
        (
            format!("Damped@{pct}%"),
            PolicySpec::Damped { alpha: 0.9 },
            Some(budget),
        ),
        (
            format!("StreamingLLM@{pct}%"),
            PolicySpec::streaming_default(),
            Some(budget),
        ),
        (
            format!("Keyformer@{pct}%"),
            PolicySpec::keyformer_default(),
            Some(budget),
        ),
    ]
}

/// Deterministic synthetic request stream: one prompt per request, each with
/// its own token pattern.
fn request_stream(workload: &Workload) -> Vec<Request> {
    (0..workload.requests)
        .map(|i| {
            let salt = i as u32;
            let prompt: Vec<u32> = (0..workload.prompt_len)
                .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
                .collect();
            Request::new(i as u64, prompt, GenerationConfig::new(workload.gen_tokens))
        })
        .collect()
}

/// The sorted `(request id, generation output)` pairs of a run — the identity
/// fingerprint compared across worker counts (tokens, cache slot counts and
/// byte footprints all have to match, not just the text).
fn token_streams(completions: &[Completion]) -> Vec<(u64, GenerationOutput)> {
    let mut streams: Vec<(u64, GenerationOutput)> = completions
        .iter()
        .map(|c| (c.id.raw(), c.output.clone()))
        .collect();
    streams.sort_unstable_by_key(|(id, _)| *id);
    streams
}

/// One timed run: submit the whole batch, step to idle, return the wall clock
/// together with the evidence needed for the identity check.
fn timed_run(
    model: &TransformerModel,
    workload: &Workload,
    policy: &PolicySpec,
    budget: Option<CacheBudgetSpec>,
    workers: usize,
) -> (f64, usize, usize, Vec<(u64, GenerationOutput)>) {
    // Roomy pool: every request admitted up front, so each decode round runs
    // the full batch and the experiment measures execution, not queueing.
    let pool_bytes = crate::sizing::per_request_pool_bytes(
        model,
        workload.requests,
        workload.prompt_len,
        workload.gen_tokens,
        8,
        KvDtype::F32,
    );
    let config = ServerConfig::new(*policy, budget, pool_bytes).with_decode_workers(workers);
    let mut engine = Engine::new(model, config).expect("scaling config is valid");
    engine.record_events(false);
    for request in request_stream(workload) {
        engine
            .submit(request)
            .expect("roomy pool admits everything");
    }
    let start = Instant::now();
    engine.run(100_000);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let stats = *engine.stats();
    let streams = token_streams(engine.completions());
    (wall_ms, stats.steps, stats.decode_steps, streams)
}

/// The request shape one scaling grid runs with. The experiment uses the
/// GPT-J-like sizes above; the unit tests shrink it onto the `Tiny` family so
/// the same code path stays affordable in unoptimized test builds.
struct Workload {
    prompt_len: usize,
    gen_tokens: usize,
    requests: usize,
}

/// Runs the full grid (policy zoo × [`WORKER_COUNTS`]) for one model and
/// workload.
fn scaling_grid(model: &TransformerModel, workload: &Workload) -> (Table, Vec<ParallelSummary>) {
    let (requests, prompt_len, gen_tokens) =
        (workload.requests, workload.prompt_len, workload.gen_tokens);
    let mut table = Table::new(
        format!(
            "Parallel decode scaling: wall-clock throughput vs decode_workers \
             ({requests} requests submitted up front, prompt {prompt_len}, \
             {gen_tokens} generated tokens; token streams verified identical \
             to the 1-worker baseline)"
        ),
        &[
            "policy",
            "workers",
            "completed",
            "steps",
            "wall_ms",
            "steps/s",
            "tokens/s",
            "speedup",
            "identical",
        ],
    );
    let mut summaries = Vec::new();
    for (label, policy, budget) in scaling_policies() {
        let mut baseline: Option<(f64, Vec<(u64, GenerationOutput)>)> = None;
        for workers in WORKER_COUNTS {
            let (wall_ms, steps, decode_steps, streams) =
                timed_run(model, workload, &policy, budget, workers);
            let (base_ms, token_identical) = match &baseline {
                None => {
                    baseline = Some((wall_ms, streams.clone()));
                    (wall_ms, true)
                }
                Some((base_ms, base_streams)) => (*base_ms, streams == *base_streams),
            };
            let secs = (wall_ms / 1e3).max(f64::EPSILON);
            let summary = ParallelSummary {
                policy: label.clone(),
                workers,
                submitted: workload.requests,
                completed: streams.len(),
                steps,
                decode_steps,
                wall_ms,
                steps_per_sec: steps as f64 / secs,
                tokens_per_sec: decode_steps as f64 / secs,
                speedup: base_ms / wall_ms.max(f64::EPSILON),
                token_identical,
            };
            table.push_row(vec![
                summary.policy.clone(),
                summary.workers.to_string(),
                summary.completed.to_string(),
                summary.steps.to_string(),
                fmt(summary.wall_ms),
                fmt(summary.steps_per_sec),
                fmt(summary.tokens_per_sec),
                fmt(summary.speedup),
                summary.token_identical.to_string(),
            ]);
            summaries.push(summary);
        }
    }
    (table, summaries)
}

/// Runs the scaling grid and returns both the rendered table and the
/// per-(policy, workers) summaries.
///
/// `samples` scales the batch width (16 requests per sample): wider batches
/// give each decode round more parallel work per thread-spawn.
pub fn parallel_scaling_report(samples: usize) -> (Table, Vec<ParallelSummary>) {
    let samples = samples.max(1);
    // GPT-J-like rather than Tiny: a real 4-layer forward pass per token, so
    // the parallel section of each round is wide enough to be worth measuring.
    let model = ModelFamily::GptJLike.build(MODEL_SEED);
    let workload = Workload {
        prompt_len: PROMPT_LEN,
        gen_tokens: GEN_TOKENS,
        requests: 16 * samples,
    };
    scaling_grid(&model, &workload)
}

/// Table-only entry point used by the experiment registry.
pub fn parallel_scaling(samples: usize) -> Table {
    parallel_scaling_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_cover_the_zoo_at_every_worker_count_and_stay_identical() {
        // Tiny model and a small batch: the full GPT-J-like grid belongs to
        // `kf_experiments`, not to unoptimized test builds. The code path —
        // zoo × worker counts, identity fingerprinting, speedup bookkeeping —
        // is exactly the one the experiment runs.
        let model = ModelFamily::Tiny.build(MODEL_SEED);
        let workload = Workload {
            prompt_len: 12,
            gen_tokens: 6,
            requests: 5,
        };
        let (table, summaries) = scaling_grid(&model, &workload);
        assert_eq!(
            summaries.len(),
            8 * WORKER_COUNTS.len(),
            "the whole policy zoo runs at every worker count"
        );
        for summary in &summaries {
            assert_eq!(
                summary.completed, summary.submitted,
                "{} at {} workers drained the batch",
                summary.policy, summary.workers
            );
            assert!(
                summary.token_identical,
                "{} at {} workers diverged from the sequential baseline",
                summary.policy, summary.workers
            );
            assert!(summary.wall_ms > 0.0 && summary.speedup > 0.0);
        }
        // Every policy ran the same deterministic step count at every worker
        // count — the wall clock varies, the schedule must not.
        for chunk in summaries.chunks(WORKER_COUNTS.len()) {
            assert!(chunk.iter().all(|s| s.steps == chunk[0].steps));
            assert!(chunk
                .iter()
                .all(|s| s.decode_steps == chunk[0].decode_steps));
        }
        assert_eq!(table.rows.len(), summaries.len());
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let summaries = vec![ParallelSummary {
            policy: "Keyformer@50%".into(),
            workers: 4,
            submitted: 32,
            completed: 32,
            steps: 79,
            decode_steps: 1536,
            wall_ms: 1051.5,
            steps_per_sec: 75.1,
            tokens_per_sec: 1460.7,
            speedup: 1.04,
            token_identical: true,
        }];
        let json = serde_json::to_string(&summaries).expect("serializes");
        let back: Vec<ParallelSummary> = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, summaries);
    }
}

//! Prefill batching experiment: chunk-batched GEMM prefill versus the
//! sequential token-at-a-time prompt pass, measured in the same process.
//!
//! PR 9 made `advance_prefill` forward a whole admitted chunk per decoder-layer
//! pass (`forward_chunk_ws` in [`keyformer_model::workspace`]): QKV/output/FFN
//! projections become per-chunk GEMMs through the tiled `Matrix::matmul_into`
//! micro-kernel, fresh KV rows are appended in bulk and the chunk's queries
//! attend under a causal mask against cached-plus-fresh keys. The sequential
//! path is kept callable
//! ([`keyformer_model::ForwardPath::Legacy`]) so this experiment can measure
//! both prompt-pass implementations against the same weights in one process
//! and verify their token streams — eviction decisions, sampler RNG and all —
//! are byte-identical at every chunk size.
//!
//! The grid covers the three positional families and both KV dtypes (the u8
//! store exercises the quantize-on-seal run splitting), each at chunk sizes
//! 8/32/128 against the sequential baseline. Wall-clock fields (`wall_ms`,
//! `prefill_ms`, `ttft_ms`, `prefill_tokens_per_sec`, `speedup`) vary run to
//! run and are stripped by the CI identity check; everything else is
//! deterministic.

use crate::report::{fmt, Table};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::{GenerationConfig, GenerationOutput};
use keyformer_model::model::TransformerModel;
use keyformer_model::session::Session;
use keyformer_model::workspace::ForwardPath;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Weight seed of the prefill experiment's models (distinct from the other
/// benches so regressions cannot mask each other).
const MODEL_SEED: u64 = 41;
/// Prompt length of the measured requests — long enough that the largest
/// chunk size still takes two passes.
const PROMPT_LEN: usize = 256;
/// Tokens generated per request — short relative to the prompt so prefill,
/// not decode, dominates the wall clock (the decode path is identical on
/// both sides and already measured by `hotpath`).
const GEN_TOKENS: usize = 8;
/// Chunk sizes swept for the batched path.
const CHUNK_SIZES: [usize; 3] = [8, 32, 128];
/// KV budget fraction applied to the budgeted configuration.
const CACHE_FRACTION: f64 = 0.5;

/// Machine-readable summary of one (configuration, path, chunk) run, emitted
/// as `BENCH_prefill.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefillSummary {
    /// Configuration label (family / policy / KV dtype).
    pub config: String,
    /// `sequential` or `batched`.
    pub path: String,
    /// Tokens forwarded per `advance_prefill` call (the full prompt for the
    /// sequential baseline).
    pub chunk: usize,
    /// Prompt tokens per request.
    pub prompt_len: usize,
    /// Tokens generated per request.
    pub gen_tokens: usize,
    /// Timed repetitions of the full request.
    pub reps: usize,
    /// Wall-clock milliseconds across all repetitions (prefill + decode).
    pub wall_ms: f64,
    /// Milliseconds spent in the prompt pass across all repetitions.
    pub prefill_ms: f64,
    /// Mean time-to-first-token per request (arm the prompt, run prefill to
    /// completion, emit one token), in milliseconds.
    pub ttft_ms: f64,
    /// Prompt tokens forwarded per wall-clock second of prefill.
    pub prefill_tokens_per_sec: f64,
    /// Prefill wall-clock speedup over the same configuration's sequential
    /// run (1.0 for the sequential rows themselves).
    pub speedup: f64,
    /// Whether this run's token stream is byte-identical to the sequential
    /// path's. Anything but `true` is a correctness bug.
    pub token_identical: bool,
}

/// One measured configuration of the grid.
struct Config {
    label: String,
    family: ModelFamily,
    policy: PolicySpec,
    budget: Option<CacheBudgetSpec>,
    dtype: KvDtype,
}

/// The measured grid: the headline full-attention RoPE rows first (the
/// acceptance bar's ≥ 2× claim is about GPT-J-like/f32 at chunk ≥ 32), then
/// the other positional families, the quantized store whose seal boundaries
/// split the batched appends, and a budgeted Keyformer row whose end-of-prompt
/// eviction consumes the replayed score accumulators.
fn prefill_configs() -> Vec<Config> {
    let budget = CacheBudgetSpec::with_fraction(CACHE_FRACTION).expect("valid fraction");
    let pct = (CACHE_FRACTION * 100.0) as usize;
    vec![
        Config {
            label: "GPT-J-like/Full/f32".into(),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "Cerebras-like/Full/f32".into(),
            family: ModelFamily::CerebrasLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "MPT-like/Full/f32".into(),
            family: ModelFamily::MptLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
        },
        Config {
            label: "GPT-J-like/Full/u8".into(),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::U8,
        },
        Config {
            label: format!("GPT-J-like/Keyformer@{pct}%/f32"),
            family: ModelFamily::GptJLike,
            policy: PolicySpec::keyformer_default(),
            budget: Some(budget),
            dtype: KvDtype::F32,
        },
        Config {
            label: format!("MPT-like/H2O@{pct}%/u8"),
            family: ModelFamily::MptLike,
            policy: PolicySpec::h2o_default(),
            budget: Some(budget),
            dtype: KvDtype::U8,
        },
    ]
}

/// The deterministic prompt every run prefills.
fn prompt(prompt_len: usize, vocab: usize) -> Vec<u32> {
    (0..prompt_len)
        .map(|t| ((t * 13 + 5) % vocab) as u32)
        .collect()
}

/// One request's measurement: prefill and first-token wall clock plus the
/// full output for identity checking.
struct RequestRun {
    prefill_ms: f64,
    ttft_ms: f64,
    output: GenerationOutput,
}

/// Runs one request on a fresh session along `path`, timing the prompt pass
/// and the time-to-first-token separately from decode.
fn run_once(
    model: &TransformerModel,
    cfg: &Config,
    path: ForwardPath,
    chunk: usize,
    prompt: &[u32],
    gen: &GenerationConfig,
) -> RequestRun {
    let policy = cfg.policy.build().expect("zoo specs build");
    let mut session = Session::with_dtype(model, policy, cfg.budget, cfg.dtype)
        .with_forward_path(path)
        .with_prefill_chunk(chunk);
    let start = Instant::now();
    session.begin(prompt, gen).expect("prompt arms");
    while session.is_prefilling() {
        session
            .advance_prefill()
            .expect("unbounded pools never stall");
    }
    let prefill_ms = start.elapsed().as_secs_f64() * 1e3;
    if session.is_decoding() {
        session.step().expect("first token decodes");
    }
    let ttft_ms = start.elapsed().as_secs_f64() * 1e3;
    while session.is_decoding() {
        session.step().expect("request completes");
    }
    RequestRun {
        prefill_ms,
        ttft_ms,
        output: session.take_output().expect("output ready"),
    }
}

/// Times `reps` repetitions of the request along `path` (after one untimed
/// warm-up), returning summed prefill/total wall clock, mean TTFT and the
/// reference output.
fn timed_runs(
    model: &TransformerModel,
    cfg: &Config,
    path: ForwardPath,
    chunk: usize,
    prompt: &[u32],
    gen: &GenerationConfig,
    reps: usize,
) -> (f64, f64, f64, GenerationOutput) {
    let reference = run_once(model, cfg, path, chunk, prompt, gen).output;
    let start = Instant::now();
    let mut prefill_ms = 0.0;
    let mut ttft_sum = 0.0;
    for _ in 0..reps {
        let run = run_once(model, cfg, path, chunk, prompt, gen);
        debug_assert_eq!(run.output, reference, "prefill runs must be deterministic");
        prefill_ms += run.prefill_ms;
        ttft_sum += run.ttft_ms;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (wall_ms, prefill_ms, ttft_sum / reps as f64, reference)
}

/// Runs the full grid for one request shape.
fn prefill_grid(
    prompt_len: usize,
    gen_tokens: usize,
    chunks: &[usize],
    reps: usize,
) -> (Table, Vec<PrefillSummary>) {
    let mut table = Table::new(
        format!(
            "Chunk-batched GEMM prefill vs sequential token-at-a-time prompt \
             pass, same process (prompt {prompt_len}, {gen_tokens} generated \
             tokens, {reps} timed repetitions; token streams verified \
             identical between paths at every chunk size)"
        ),
        &[
            "config",
            "path",
            "chunk",
            "prefill_ms",
            "ttft_ms",
            "prefill tok/s",
            "speedup",
            "identical",
        ],
    );
    let gen = GenerationConfig::new(gen_tokens);
    let mut summaries = Vec::new();
    for cfg in prefill_configs() {
        let model = cfg.family.build(MODEL_SEED);
        let prompt = prompt(prompt_len, model.config().vocab_size);
        let mut baseline: Option<(f64, GenerationOutput)> = None;
        // The sequential baseline forwards the whole prompt one token per
        // layer pass; the batched rows sweep the chunk sizes.
        let mut rows: Vec<(ForwardPath, usize)> = vec![(ForwardPath::Legacy, prompt_len)];
        rows.extend(chunks.iter().map(|&c| (ForwardPath::Workspace, c)));
        for (path, chunk) in rows {
            let (wall_ms, prefill_ms, ttft_ms, output) =
                timed_runs(&model, &cfg, path, chunk, &prompt, &gen, reps);
            let (base_prefill_ms, token_identical) = match &baseline {
                None => {
                    baseline = Some((prefill_ms, output));
                    (prefill_ms, true)
                }
                Some((base_ms, base_out)) => (*base_ms, output == *base_out),
            };
            let prefill_secs = (prefill_ms / 1e3).max(f64::EPSILON);
            let summary = PrefillSummary {
                config: cfg.label.clone(),
                path: match path {
                    ForwardPath::Legacy => "sequential".into(),
                    ForwardPath::Workspace => "batched".into(),
                },
                chunk,
                prompt_len,
                gen_tokens,
                reps,
                wall_ms,
                prefill_ms,
                ttft_ms,
                prefill_tokens_per_sec: (reps * prompt_len) as f64 / prefill_secs,
                speedup: base_prefill_ms / prefill_ms.max(f64::EPSILON),
                token_identical,
            };
            table.push_row(vec![
                summary.config.clone(),
                summary.path.clone(),
                summary.chunk.to_string(),
                fmt(summary.prefill_ms),
                fmt(summary.ttft_ms),
                fmt(summary.prefill_tokens_per_sec),
                fmt(summary.speedup),
                summary.token_identical.to_string(),
            ]);
            summaries.push(summary);
        }
    }
    (table, summaries)
}

/// Runs the prefill grid and returns both the rendered table and the
/// per-(configuration, path, chunk) summaries.
///
/// `samples` scales the timed repetitions per configuration.
pub fn prefill_report(samples: usize) -> (Table, Vec<PrefillSummary>) {
    prefill_grid(PROMPT_LEN, GEN_TOKENS, &CHUNK_SIZES, samples.max(1))
}

/// Table-only entry point used by the experiment registry.
pub fn prefill(samples: usize) -> Table {
    prefill_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_config_at_every_chunk_and_stays_identical() {
        // A short request shape keeps the full grid affordable in unoptimized
        // test builds; the code path is exactly the experiment's.
        let (table, summaries) = prefill_grid(12, 2, &[4, 8], 1);
        assert_eq!(
            summaries.len(),
            prefill_configs().len() * 3,
            "every configuration runs sequentially and at every chunk size"
        );
        for summary in &summaries {
            assert!(
                summary.token_identical,
                "{} batched at chunk {} diverged from sequential",
                summary.config, summary.chunk
            );
            assert!(summary.prefill_ms > 0.0 && summary.ttft_ms > 0.0);
            assert!(summary.speedup > 0.0);
        }
        assert_eq!(table.rows.len(), summaries.len());
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let summaries = vec![PrefillSummary {
            config: "GPT-J-like/Full/f32".into(),
            path: "batched".into(),
            chunk: 32,
            prompt_len: 256,
            gen_tokens: 8,
            reps: 3,
            wall_ms: 410.0,
            prefill_ms: 310.5,
            ttft_ms: 104.0,
            prefill_tokens_per_sec: 2473.4,
            speedup: 2.6,
            token_identical: true,
        }];
        let json = serde_json::to_string(&summaries).expect("serializes");
        let back: Vec<PrefillSummary> = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, summaries);
    }
}

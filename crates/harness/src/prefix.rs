//! Prefix-sharing experiment: what copy-on-write prefix caching buys a fixed
//! serving pool on a shared-system-prompt workload.
//!
//! Real multi-user traffic shares long common prefixes — system prompts,
//! few-shot templates, tool preambles — and recomputing (and re-storing) those
//! tokens per request wastes both prefill compute and pool blocks. Every row of
//! this experiment runs the *same* oversubscribed Keyformer@50% workload
//! through the *same* KV-byte pool and step budget as the serving-throughput
//! experiment, varying only:
//!
//! * the **shared prefix length** of the 48-token prompts (the rest of each
//!   prompt is a per-request unique suffix),
//! * the **fan-out** (how many requests share one system prompt), and
//! * whether [`keyformer_serve::ServerConfig::prefix_sharing`] is on.
//!
//! With sharing on, the first request of a group prefills cold and registers
//! its prompt blocks; every later request attaches to the cached prefix
//! copy-on-write, skipping those prefill chunks entirely
//! (`prefix_tokens_reused`) and mapping the same physical blocks
//! (`shared_blocks_peak`). Skipped chunks shorten time-to-first-token, so the
//! same step budget completes strictly more requests — and the prefill
//! transient of attached prompts no longer duplicates the prefix, so the pool
//! high-water drops too. Outputs are bit-identical either way (the registry
//! carries policy-state snapshots; `tests/prefix_sharing_properties.rs` asserts
//! identity across the whole policy zoo).

use crate::report::{fmt, Table};
use crate::serving::MODEL_SEED;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::{Request, Server, ServerConfig};
use serde::{Deserialize, Serialize};

/// Total prompt length of every request (matches the serving experiment).
const PROMPT_LEN: usize = 48;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;
/// Prompt tokens forwarded per prefill work unit.
const PREFILL_CHUNK: usize = 8;

/// Machine-readable summary of one prefix-sharing configuration, emitted as
/// `BENCH_prefix.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixSummary {
    /// Configuration label (e.g. `prefix32/fan8/shared`).
    pub config: String,
    /// Shared system-prompt length in tokens.
    pub prefix_len: usize,
    /// Requests sharing one system prompt.
    pub fanout: usize,
    /// Whether prefix sharing was enabled.
    pub sharing: bool,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed within the step budget.
    pub completed: usize,
    /// Scheduler steps executed.
    pub steps: usize,
    /// Requests completed per scheduler step.
    pub requests_per_step: f64,
    /// Prompt tokens served from shared blocks instead of recomputed.
    pub prefix_tokens_reused: u64,
    /// Prefill work units actually executed.
    pub prefill_chunks: usize,
    /// Mean live-slots / allocated-slots at end-of-step steady state.
    pub utilization: f64,
    /// Pool high-water mark in blocks.
    pub peak_blocks: usize,
    /// High-water mark of blocks mapped by more than one holder.
    pub shared_blocks_peak: usize,
    /// Total block allocations over the run.
    pub block_allocs: u64,
    /// Running sessions swapped out under pool pressure.
    pub preemptions: usize,
}

/// The (prefix length, fan-out) grid the experiment sweeps. Suffixes shrink as
/// prefixes grow so every request stays at [`PROMPT_LEN`] tokens and the rows
/// stay pool-comparable.
fn sweep() -> Vec<(usize, usize)> {
    vec![(16, 8), (32, 8), (40, 16)]
}

/// `fanout` requests sharing a `prefix_len`-token system prompt (derived from
/// `group`), each with a unique suffix.
fn shared_prompt_stream(
    group: u32,
    fanout: usize,
    prefix_len: usize,
    first_id: u64,
) -> Vec<Request> {
    (0..fanout)
        .map(|i| {
            let mut prompt: Vec<u32> = (0..prefix_len)
                .map(|t| (t as u32 * 13 + 7 + group * 41) % 120)
                .collect();
            let salt = i as u32 + 1;
            prompt.extend(
                (prefix_len..PROMPT_LEN)
                    .map(|t| (t as u32 * 13 + 7 + salt * 31 + group * 41) % 120),
            );
            Request::new(
                first_id + i as u64,
                prompt,
                GenerationConfig::new(GEN_TOKENS),
            )
        })
        .collect()
}

/// Runs the prefix-sharing sweep and returns both the rendered table and the
/// per-configuration summaries.
pub fn prefix_sharing_report(samples: usize) -> (Table, Vec<PrefixSummary>) {
    let samples = samples.max(1);
    let step_budget = 3 * GEN_TOKENS * samples;
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    // Same pool as the serving-throughput and paging experiments.
    let pool_bytes = crate::sizing::steady_pool_bytes(&model, PROMPT_LEN, GEN_TOKENS, KvDtype::F32);
    let base = ServerConfig::new(
        PolicySpec::keyformer_default(),
        Some(CacheBudgetSpec::with_fraction(0.5).expect("valid fraction")),
        pool_bytes,
    )
    .with_prefill_chunk(PREFILL_CHUNK);

    let mut table = Table::new(
        format!(
            "Copy-on-write prefix sharing at a fixed {pool_bytes}-byte pool \
             (Keyformer@50%, {PROMPT_LEN}-token prompts, {step_budget}-step budget): \
             shared-prefix length x fan-out, sharing off vs. on"
        ),
        &[
            "config",
            "completed",
            "requests_per_step",
            "tokens_reused",
            "prefill_chunks",
            "utilization",
            "peak_blocks",
            "shared_peak",
            "allocs",
            "preemptions",
        ],
    );
    let mut summaries = Vec::new();
    for (prefix_len, fanout) in sweep() {
        for sharing in [false, true] {
            let config = base.with_prefix_sharing(sharing);
            let mut server = Server::new(&model, config).expect("prefix config is valid");
            // `samples` groups of `fanout` requests; each group shares one
            // system prompt, groups never share with each other.
            for group in 0..samples {
                for request in
                    shared_prompt_stream(group as u32, fanout, prefix_len, (group * fanout) as u64)
                {
                    server
                        .submit(request)
                        .expect("synthetic requests carry no overrides");
                }
            }
            server.run(step_budget);
            let stats = *server.stats();
            let pool = server.pool_stats();
            let completed = server.completions().len();
            let label = format!(
                "prefix{prefix_len}/fan{fanout}/{}",
                if sharing { "shared" } else { "cold" }
            );
            let summary = PrefixSummary {
                config: label,
                prefix_len,
                fanout,
                sharing,
                submitted: samples * fanout,
                completed,
                steps: stats.steps,
                requests_per_step: completed as f64 / stats.steps.max(1) as f64,
                prefix_tokens_reused: stats.prefix_tokens_reused,
                prefill_chunks: stats.prefill_chunks,
                utilization: stats.mean_pool_utilization(),
                peak_blocks: pool.peak_in_use,
                shared_blocks_peak: pool.peak_shared_blocks,
                block_allocs: pool.total_allocs,
                preemptions: stats.preemptions,
            };
            table.push_row(vec![
                summary.config.clone(),
                summary.completed.to_string(),
                fmt(summary.requests_per_step),
                summary.prefix_tokens_reused.to_string(),
                summary.prefill_chunks.to_string(),
                format!("{:.1}%", summary.utilization * 100.0),
                summary.peak_blocks.to_string(),
                summary.shared_blocks_peak.to_string(),
                summary.block_allocs.to_string(),
                summary.preemptions.to_string(),
            ]);
            summaries.push(summary);
        }
    }
    (table, summaries)
}

/// Table-only entry point used by the experiment registry.
pub fn prefix_sharing(samples: usize) -> Table {
    prefix_sharing_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_beats_cold_starts_at_every_sweep_point() {
        let (table, summaries) = prefix_sharing_report(1);
        assert_eq!(table.rows.len(), summaries.len());
        assert_eq!(summaries.len(), 2 * sweep().len());
        for pair in summaries.chunks(2) {
            let (cold, shared) = (&pair[0], &pair[1]);
            assert!(!cold.sharing && shared.sharing);
            assert_eq!(cold.prefix_len, shared.prefix_len);
            assert_eq!(cold.submitted, shared.submitted);
            // The acceptance bar: strictly more completions, or equal
            // completions at a strictly lower block high-water.
            assert!(
                shared.completed > cold.completed
                    || (shared.completed == cold.completed
                        && shared.peak_blocks < cold.peak_blocks),
                "{}: shared {} completed / {} peak vs cold {} / {}",
                shared.config,
                shared.completed,
                shared.peak_blocks,
                cold.completed,
                cold.peak_blocks
            );
            assert!(shared.prefix_tokens_reused > 0, "{}", shared.config);
            assert_eq!(cold.prefix_tokens_reused, 0);
            assert!(shared.shared_blocks_peak > 0, "{}", shared.config);
            assert!(
                shared.prefill_chunks <= cold.prefill_chunks,
                "{}: attachment must not add prefill work",
                shared.config
            );
        }
    }

    #[test]
    fn longer_prefixes_reuse_more() {
        let (_, summaries) = prefix_sharing_report(1);
        let shared: Vec<&PrefixSummary> = summaries.iter().filter(|s| s.sharing).collect();
        // Reuse per attached request grows with the registered prefix length.
        let per_request = |s: &PrefixSummary| s.prefix_tokens_reused as f64 / s.submitted as f64;
        assert!(per_request(shared[1]) > per_request(shared[0]));
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let (_, summaries) = prefix_sharing_report(1);
        let json = serde_json::to_string(&summaries).unwrap();
        let back: Vec<PrefixSummary> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summaries);
    }
}

//! Attention-analysis experiments: sparsity, attention-mass CDFs, softmax shift and
//! heat maps (Figures 3a, 3b, 4, 11, 14/15).

use crate::report::{fmt, Table};
use keyformer_core::diagnostics::softmax_shift;
use keyformer_core::spec::PolicySpec;
use keyformer_model::engine::InferenceEngine;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_tensor::top_k_indices;
use keyformer_text::datasets::summarization::{SummarizationDataset, SummarizationSpec};

fn collect_stats(family: ModelFamily, samples: usize) -> keyformer_model::AttentionStats {
    let spec = SummarizationSpec::paper_default();
    let dataset = SummarizationDataset::generate(&spec, samples);
    let model = family.build(crate::accuracy::MODEL_SEED);
    let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().expect("full"), None);
    engine.enable_stats();
    let mut merged =
        keyformer_model::AttentionStats::new(model.config().num_layers, model.config().num_heads);
    for sample in dataset.samples() {
        engine.generate(
            &sample.prompt,
            &GenerationConfig::new(sample.reference.len()),
        );
        for record in engine.stats().expect("stats enabled").records() {
            merged.record(record.clone());
        }
    }
    merged
}

/// Figure 3a: attention sparsity per layer (zero-threshold) for the three families.
pub fn figure3a(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 3a: attention sparsity per layer (threshold 1% of max)",
        &["model", "layer", "sparsity"],
    );
    for family in ModelFamily::paper_families() {
        let stats = collect_stats(family, samples);
        for (layer, sparsity) in stats.sparsity_per_layer(0.01).iter().enumerate() {
            table.push_row(vec![
                family.label().into(),
                layer.to_string(),
                fmt(*sparsity),
            ]);
        }
    }
    table
}

/// Figure 3b: cumulative attention mass captured by the top-x% of tokens.
pub fn figure3b(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 3b: cumulative attention mass vs fraction of tokens",
        &["model", "token_fraction", "attention_mass"],
    );
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    for family in ModelFamily::paper_families() {
        let stats = collect_stats(family, samples);
        for point in stats.mass_cdf(&fractions, 32) {
            table.push_row(vec![
                family.label().into(),
                format!("{:.0}%", point.token_fraction * 100.0),
                fmt(point.attention_mass),
            ]);
        }
    }
    table
}

/// Figure 4: redistribution of attention probability after evicting half the tokens.
pub fn figure4() -> Table {
    let mut table = Table::new(
        "Figure 4: softmax shift after 50% KV cache reduction (MPT-like)",
        &["slot", "full_prob", "reduced_prob"],
    );
    // A representative 8-slot logit vector (mirrors the paper's illustrative figure):
    // retain the top half by probability and recompute the softmax.
    let logits = [0.9f32, 0.8, 0.2, 1.7, 1.4, 1.1, -0.6, 0.3];
    let retained = top_k_indices(&logits, 4);
    let shift = softmax_shift(&logits, &retained);
    for slot in 0..logits.len() {
        table.push_row(vec![
            slot.to_string(),
            fmt(shift.full[slot] as f64),
            fmt(shift.reduced[slot] as f64),
        ]);
    }
    table.push_row(vec![
        "retained_mass".into(),
        fmt(shift.retained_mass as f64),
        fmt(1.0),
    ]);
    table
}

/// Figure 11: attention sparsity vs. threshold for the MPT-like model.
pub fn figure11(samples: usize) -> Table {
    let mut table = Table::new(
        "Figure 11: attention sparsity vs threshold (MPT-like)",
        &["threshold", "layer", "sparsity"],
    );
    let stats = collect_stats(ModelFamily::MptLike, samples);
    for threshold in [0.0f32, 0.0001, 0.001, 0.01, 0.03, 0.05] {
        for (layer, sparsity) in stats.sparsity_per_layer(threshold).iter().enumerate() {
            table.push_row(vec![
                format!("{threshold}"),
                layer.to_string(),
                fmt(*sparsity),
            ]);
        }
    }
    table
}

/// Figures 14/15: heat-map summary (fraction of near-zero attention cells per
/// layer/head) for the GPT-J-like and MPT-like models.
pub fn figure14(samples: usize) -> Table {
    let mut table = Table::new(
        "Figures 14/15: attention heat-map sparsity per layer and head",
        &["model", "layer", "head", "zero_fraction", "heatmap_rows"],
    );
    for family in [ModelFamily::GptJLike, ModelFamily::MptLike] {
        let stats = collect_stats(family, samples);
        let model = family.build(crate::accuracy::MODEL_SEED);
        let config = model.config();
        for layer in 0..config.num_layers {
            for head in 0..config.num_heads {
                let map = stats.heatmap(layer, head, 512);
                let zero = map.as_slice().iter().filter(|&&p| p < 0.01).count() as f64
                    / map.len().max(1) as f64;
                table.push_row(vec![
                    family.label().into(),
                    layer.to_string(),
                    head.to_string(),
                    fmt(zero),
                    map.rows().to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_distributions_are_normalised() {
        let t = figure4();
        let full_sum: f64 = (0..8)
            .map(|r| t.cell(r, "full_prob").unwrap().parse::<f64>().unwrap())
            .sum();
        let reduced_sum: f64 = (0..8)
            .map(|r| t.cell(r, "reduced_prob").unwrap().parse::<f64>().unwrap())
            .sum();
        assert!((full_sum - 1.0).abs() < 0.01);
        assert!((reduced_sum - 1.0).abs() < 0.01);
    }

    #[test]
    fn figure3b_mass_is_monotone() {
        let t = figure3b(1);
        // 3 families x 9 fractions.
        assert_eq!(t.rows.len(), 27);
        let masses: Vec<f64> = (0..9)
            .map(|r| t.cell(r, "attention_mass").unwrap().parse::<f64>().unwrap())
            .collect();
        for pair in masses.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
    }
}

//! # keyformer-harness
//!
//! Experiment definitions that regenerate every table and figure of the Keyformer
//! paper's evaluation (see DESIGN.md for the full index). Each experiment returns a
//! [`report::Table`] holding the same rows/series the paper reports; the
//! `kf-experiments` binary renders them as text and (optionally) CSV.
//!
//! Accuracy experiments run the laptop-scale substrate models on the synthetic task
//! generators; performance experiments use the analytic A100 roofline model. Both are
//! deterministic given their seeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod analysis;
pub mod hotpath;
pub mod network;
pub mod paging;
pub mod parallel;
pub mod perf;
pub mod prefill;
pub mod prefix;
pub mod quantization;
pub mod registry;
pub mod report;
pub mod serving;
pub mod sizing;
pub mod streaming;

pub use registry::{run_experiment, ExperimentId};
pub use report::Table;

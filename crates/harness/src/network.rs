//! Network front-end experiment: end-to-end throughput, time-to-first-token
//! and deduplication behaviour of the `kf_serve` node, measured over real
//! loopback sockets.
//!
//! Each configuration boots a node on an ephemeral port and drives a
//! two-phase workload through the reference client:
//!
//! * **Phase 1 (burst)** — `distinct_prompts` different prompts, each
//!   submitted by `repeats` concurrent connections. With dedup on, exactly
//!   one fresh engine run completes per distinct prompt; every repeat either
//!   coalesces onto the in-flight primary or hits the result cache. With
//!   dedup off, every submission is a fresh run.
//! * **Phase 2 (replay)** — after the burst drains, each distinct prompt is
//!   resubmitted once: with dedup on these are pure cache hits (zero engine
//!   steps), with dedup off they are fresh runs again.
//!
//! A final streamed request on a fresh prompt times TTFT over the wire. The
//! sweep covers the full-attention baseline and the paper's Keyformer policy
//! at 50% budget, each with dedup off and on. Token streams are verified
//! identical across repeats, phases and dedup settings — deduplication is an
//! observation-level optimisation and must never change a byte. Wall-clock
//! fields (`wall_ms`, `ttft_ms`, `requests_per_sec`, `steps_per_sec`) vary
//! run to run and are stripped by the CI identity check; everything else is
//! deterministic.

use crate::report::{fmt, Table};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_serve::ServerConfig;
use kf_serve::client::{str_field, tokens_field, u64_field, Client};
use kf_serve::{serve, NodeConfig, ServeHandle};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Weight seed of the network experiment's model (distinct from the other
/// benches so regressions cannot mask each other).
const MODEL_SEED: u64 = 47;
/// Prompt length of every measured request.
const PROMPT_LEN: usize = 24;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;
/// Distinct prompts in the phase-1 burst.
const DISTINCT_PROMPTS: usize = 4;

/// Machine-readable summary of one (policy, dedup) configuration, emitted as
/// `BENCH_network.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSummary {
    /// Configuration label (policy / dedup setting).
    pub config: String,
    /// Cache policy every session ran.
    pub policy: String,
    /// Whether the result cache and coalescing were enabled.
    pub dedup: bool,
    /// Distinct prompts in the phase-1 burst.
    pub distinct_prompts: usize,
    /// Concurrent submissions per distinct prompt in phase 1.
    pub repeats: usize,
    /// Prompt tokens per request.
    pub prompt_len: usize,
    /// Tokens generated per request.
    pub gen_tokens: usize,
    /// Total wire submissions (burst + replay + the TTFT probe).
    pub submitted: u64,
    /// Jobs that consumed a fresh engine run.
    pub completed: u64,
    /// Jobs answered without a fresh engine run (cache hits + coalesced).
    pub deduplicated: u64,
    /// Result-cache hits in the phase-2 replay alone.
    pub phase2_cache_hits: u64,
    /// Jobs that failed (anything but zero is a bug).
    pub failed: u64,
    /// Whether every repeat, replay and dedup setting produced byte-identical
    /// tokens for the same prompt. Anything but `true` is a correctness bug.
    pub tokens_identical: bool,
    /// Wall-clock milliseconds for the whole workload.
    pub wall_ms: f64,
    /// Time-to-first-token of the streamed probe, in milliseconds.
    pub ttft_ms: f64,
    /// Wire submissions answered per wall-clock second.
    pub requests_per_sec: f64,
    /// Engine scheduler steps per wall-clock second.
    pub steps_per_sec: f64,
}

/// The deterministic prompt for burst slot `salt`.
fn prompt(salt: u32) -> Vec<u32> {
    (0..PROMPT_LEN)
        .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
        .collect()
}

fn generate_body(prompt: &[u32], stream: bool) -> String {
    let tokens: Vec<String> = prompt.iter().map(u32::to_string).collect();
    let stream = if stream { ",\"stream\":true" } else { "" };
    format!(
        "{{\"prompt\":[{}],\"max_new_tokens\":{GEN_TOKENS}{stream}}}",
        tokens.join(",")
    )
}

/// Polls a job to a terminal state and returns its tokens.
fn await_tokens(client: &Client, job: u64) -> Vec<u32> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) = client.job(job).expect("job poll");
        assert_eq!(status, 200, "job {job} exists");
        match str_field(&body, "state") {
            Some("done") => return tokens_field(&body, "tokens").expect("done jobs have tokens"),
            Some(terminal @ ("failed" | "cancelled")) => {
                panic!("job {job} retired as {terminal}: {body:?}")
            }
            _ => {
                assert!(Instant::now() < deadline, "job {job} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn counters(client: &Client) -> (u64, u64, u64, u64, u64, u64) {
    let (_, stats) = client.stats().expect("stats");
    let jobs = stats.field("jobs").expect("stats carry job counters");
    let engine = stats
        .field("engine")
        .expect("stats carry the engine snapshot");
    (
        u64_field(jobs, "submitted").unwrap_or(0),
        u64_field(jobs, "completed").unwrap_or(0),
        u64_field(jobs, "cache_hits").unwrap_or(0),
        u64_field(jobs, "coalesced").unwrap_or(0),
        u64_field(jobs, "failed").unwrap_or(0),
        u64_field(engine, "steps").unwrap_or(0),
    )
}

struct ConfigRun {
    summary: NetworkSummary,
    /// Canonical tokens per distinct prompt, for cross-config identity.
    canon: Vec<Vec<u32>>,
}

/// Boots a node for `(policy, budget, dedup)` and runs the two-phase workload.
fn run_config(
    label: &str,
    policy: PolicySpec,
    budget: Option<CacheBudgetSpec>,
    dedup: bool,
    repeats: usize,
) -> ConfigRun {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    let pool_slots = (PROMPT_LEN + GEN_TOKENS) * (DISTINCT_PROMPTS + 2);
    let engine = ServerConfig::new(policy, budget, pool_slots * bytes_per_token).with_block_size(4);
    let handle: ServeHandle = serve(
        "127.0.0.1:0",
        NodeConfig::new(ModelFamily::Tiny, MODEL_SEED, engine).with_dedup(dedup),
    )
    .expect("node boots");
    let client = handle.client();

    let start = Instant::now();
    // Phase 1: a concurrent burst of `repeats` copies of each distinct prompt.
    let workers: Vec<std::thread::JoinHandle<(usize, Vec<u32>)>> = (0..DISTINCT_PROMPTS)
        .flat_map(|k| (0..repeats).map(move |_| (k, generate_body(&prompt(k as u32), false))))
        .map(|(k, body)| {
            std::thread::spawn(move || {
                let (status, accepted) = client.generate(&body).expect("generate");
                assert!(
                    status == 200 || status == 202,
                    "burst submission rejected with {status}: {accepted:?}"
                );
                let job = u64_field(&accepted, "job_id").expect("job id");
                (k, await_tokens(&client, job))
            })
        })
        .collect();
    let mut canon: Vec<Option<Vec<u32>>> = vec![None; DISTINCT_PROMPTS];
    let mut tokens_identical = true;
    for worker in workers {
        let (k, tokens) = worker.join().expect("burst worker");
        match &canon[k] {
            None => canon[k] = Some(tokens),
            Some(reference) => tokens_identical &= reference == &tokens,
        }
    }
    let (_, _, cache_hits_p1, _, _, _) = counters(&client);

    // Phase 2: replay each distinct prompt once — pure cache hits with dedup on.
    for (k, reference) in canon.iter().enumerate() {
        let (status, accepted) = client
            .generate(&generate_body(&prompt(k as u32), false))
            .expect("replay");
        assert!(status == 200 || status == 202);
        let job = u64_field(&accepted, "job_id").expect("job id");
        let tokens = await_tokens(&client, job);
        tokens_identical &= reference.as_deref() == Some(tokens.as_slice());
    }
    let (_, _, cache_hits_p2, _, _, _) = counters(&client);

    // TTFT probe: a fresh prompt, streamed over the wire.
    let probe = client
        .generate_stream(&generate_body(&prompt(DISTINCT_PROMPTS as u32), true))
        .expect("streamed probe");
    assert_eq!(probe.terminal, "done", "the probe must complete");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let (submitted, completed, cache_hits, coalesced, failed, steps) = counters(&client);
    handle.shutdown();
    let wall_secs = (wall_ms / 1e3).max(f64::EPSILON);
    ConfigRun {
        summary: NetworkSummary {
            config: format!("{label}/dedup={}", if dedup { "on" } else { "off" }),
            policy: label.to_string(),
            dedup,
            distinct_prompts: DISTINCT_PROMPTS,
            repeats,
            prompt_len: PROMPT_LEN,
            gen_tokens: GEN_TOKENS,
            submitted,
            completed,
            deduplicated: cache_hits + coalesced,
            phase2_cache_hits: cache_hits_p2 - cache_hits_p1,
            failed,
            tokens_identical,
            wall_ms,
            ttft_ms: probe.ttft.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0),
            requests_per_sec: submitted as f64 / wall_secs,
            steps_per_sec: steps as f64 / wall_secs,
        },
        canon: canon.into_iter().map(Option::unwrap).collect(),
    }
}

/// Runs the sweep: policy × dedup, verifying token identity across dedup
/// settings within each policy.
fn network_grid(repeats: usize) -> (Table, Vec<NetworkSummary>) {
    let budget = CacheBudgetSpec::with_fraction(0.5).expect("valid fraction");
    let policies: Vec<(&str, PolicySpec, Option<CacheBudgetSpec>)> = vec![
        ("Full", PolicySpec::Full, None),
        (
            "Keyformer@50%",
            PolicySpec::keyformer_default(),
            Some(budget),
        ),
    ];
    let mut table = Table::new(
        format!(
            "kf_serve network front-end over loopback sockets: {DISTINCT_PROMPTS} distinct \
             prompts x {repeats} concurrent repeats, then a cache replay and a streamed \
             TTFT probe (prompt {PROMPT_LEN}, {GEN_TOKENS} generated tokens; token \
             streams verified identical across repeats, phases and dedup settings)"
        ),
        &[
            "config",
            "submitted",
            "fresh runs",
            "deduped",
            "replay hits",
            "identical",
            "req/s",
            "ttft_ms",
        ],
    );
    let mut summaries = Vec::new();
    for (label, policy, budget) in policies {
        let baseline = run_config(label, policy, budget, false, repeats);
        let mut deduped = run_config(label, policy, budget, true, repeats);
        // Dedup must not change a byte relative to the dedup-off baseline.
        deduped.summary.tokens_identical &= baseline.canon == deduped.canon;
        for run in [baseline, deduped] {
            let s = &run.summary;
            table.push_row(vec![
                s.config.clone(),
                s.submitted.to_string(),
                s.completed.to_string(),
                s.deduplicated.to_string(),
                s.phase2_cache_hits.to_string(),
                s.tokens_identical.to_string(),
                fmt(s.requests_per_sec),
                fmt(s.ttft_ms),
            ]);
            summaries.push(run.summary);
        }
    }
    (table, summaries)
}

/// Runs the network sweep and returns both the rendered table and the
/// per-configuration summaries.
///
/// `samples` scales the concurrent repeats per distinct prompt.
pub fn network_report(samples: usize) -> (Table, Vec<NetworkSummary>) {
    network_grid(samples.max(2))
}

/// Table-only entry point used by the experiment registry.
pub fn network(samples: usize) -> Table {
    network_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_counts_are_deterministic_and_tokens_identical() {
        let repeats = 2;
        let (table, summaries) = network_grid(repeats);
        assert_eq!(summaries.len(), 4, "two policies x dedup off/on");
        assert_eq!(table.rows.len(), summaries.len());
        let burst = (DISTINCT_PROMPTS * repeats) as u64;
        let replay = DISTINCT_PROMPTS as u64;
        for s in &summaries {
            assert_eq!(s.submitted, burst + replay + 1, "{}", s.config);
            assert_eq!(s.failed, 0, "{}", s.config);
            assert!(s.tokens_identical, "{} diverged", s.config);
            assert!(s.ttft_ms > 0.0, "{}: probe was not timed", s.config);
            if s.dedup {
                assert_eq!(
                    s.completed,
                    replay + 1,
                    "{}: one fresh run per distinct prompt plus the probe",
                    s.config
                );
                assert_eq!(s.deduplicated, burst - replay + replay, "{}", s.config);
                assert_eq!(s.phase2_cache_hits, replay, "{}", s.config);
            } else {
                assert_eq!(s.completed, s.submitted, "{}: every request ran", s.config);
                assert_eq!(s.deduplicated, 0, "{}", s.config);
                assert_eq!(s.phase2_cache_hits, 0, "{}", s.config);
            }
        }
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let summaries = vec![NetworkSummary {
            config: "Full/dedup=on".into(),
            policy: "Full".into(),
            dedup: true,
            distinct_prompts: 4,
            repeats: 2,
            prompt_len: 24,
            gen_tokens: 8,
            submitted: 13,
            completed: 5,
            deduplicated: 8,
            phase2_cache_hits: 4,
            failed: 0,
            tokens_identical: true,
            wall_ms: 120.0,
            ttft_ms: 2.5,
            requests_per_sec: 108.3,
            steps_per_sec: 900.0,
        }];
        let json = serde_json::to_string(&summaries).expect("serializes");
        let back: Vec<NetworkSummary> = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, summaries);
    }
}

//! Paging experiment: what block-granular KV memory management buys a fixed
//! serving pool, versus a contiguous (whole-sequence-granularity) baseline.
//!
//! Every row runs the *same* oversubscribed Keyformer@50% workload through the
//! *same* KV-byte pool as the serving-throughput experiment and varies only the
//! memory manager: the block size (down from whole-sequence "contiguous"
//! granularity), chunked prefill, and the pool's capacity discipline
//! (overcommit-with-tracking vs. strict). Reported per row:
//!
//! * `requests_per_step` — throughput under the shared step budget;
//! * `utilization` — live token slots over allocated block slots at end-of-step
//!   steady state (1.0 minus internal fragmentation);
//! * `peak_blocks` / `overshoot` — the pool high-water mark and how far the
//!   prefill transient pushed past capacity (strict pools pin this to 0);
//! * `allocs` / `frees` — allocator churn on the decode path (the Criterion
//!   `block_pool` bench prices the per-operation cost).
//!
//! Coarse blocks strand capacity two ways at once: admission must round every
//! sequence up to whole blocks (a 24-slot budget in 56-slot blocks reserves
//! 2.3x what it uses), and the unfilled tail of each sequence's last block is
//! dead memory. Small blocks push utilization above 90% and convert the same
//! bytes into roughly twice the concurrency — the Figure-1-style motivation for
//! threading the paged allocator through the whole stack.

use crate::report::{fmt, Table};
use crate::serving::{serving_policies, MODEL_SEED};
use keyformer_core::cache::KvDtype;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::{Request, Server, ServerConfig};
use serde::{Deserialize, Serialize};

/// Prompt length of every synthetic paging request (matches the serving
/// experiment so the two JSON artefacts are comparable).
const PROMPT_LEN: usize = 48;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;

/// Machine-readable summary of one paging configuration, emitted as
/// `BENCH_paging.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PagingSummary {
    /// Configuration label (e.g. `paged(bs=8)`).
    pub config: String,
    /// Token slots per block.
    pub block_size: usize,
    /// Whether the pool hard-enforced its capacity.
    pub strict: bool,
    /// Prompt tokens per prefill work unit (`None` = one-shot prefill).
    pub prefill_chunk: Option<usize>,
    /// Requests submitted.
    pub submitted: usize,
    /// Requests completed within the step budget.
    pub completed: usize,
    /// Scheduler steps executed.
    pub steps: usize,
    /// Requests completed per scheduler step.
    pub requests_per_step: f64,
    /// Mean live-slots / allocated-slots at end-of-step steady state.
    pub utilization: f64,
    /// Block capacity the byte pool converts to.
    pub capacity_blocks: usize,
    /// Pool high-water mark in blocks.
    pub peak_blocks: usize,
    /// Blocks the prefill transient pushed past capacity (0 under strict).
    pub overshoot_blocks: usize,
    /// Total block allocations over the run.
    pub block_allocs: u64,
    /// Total block frees over the run.
    pub block_frees: u64,
    /// High-water mark of blocks mapped by more than one holder (0 without
    /// prefix sharing, which this experiment leaves off).
    pub shared_blocks_peak: usize,
    /// Times a chunked prefill paused on a dry strict pool.
    pub prefill_stalls: usize,
    /// Peak concurrently running sessions.
    pub peak_concurrency: usize,
}

/// The memory-manager line-up the experiment compares. The first row is the
/// contiguous baseline: blocks as large as a whole sequence, so each request
/// allocates (and strands) sequence-granular buffers exactly like the pre-paging
/// backend did.
fn lineup() -> Vec<(String, ServerConfig)> {
    let (_, policy, budget) = serving_policies()
        .into_iter()
        .find(|(label, _, _)| label.starts_with("Keyformer"))
        .expect("serving line-up includes Keyformer");
    let base = ServerConfig::new(policy, budget, 0); // pool filled in below
    let seq = PROMPT_LEN + GEN_TOKENS;
    vec![
        (format!("contiguous(bs={seq})"), base.with_block_size(seq)),
        ("paged(bs=16)".into(), base.with_block_size(16)),
        ("paged(bs=8)".into(), base.with_block_size(8)),
        ("paged(bs=4)".into(), base.with_block_size(4)),
        (
            "paged(bs=8)+chunk16".into(),
            base.with_block_size(8).with_prefill_chunk(16),
        ),
        (
            "paged(bs=8)+strict+chunk16".into(),
            base.with_block_size(8)
                .with_prefill_chunk(16)
                .with_strict_pool(true),
        ),
    ]
}

fn request_stream(num: usize) -> Vec<Request> {
    (0..num)
        .map(|i| {
            let salt = i as u32;
            let prompt: Vec<u32> = (0..PROMPT_LEN)
                .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
                .collect();
            Request::new(i as u64, prompt, GenerationConfig::new(GEN_TOKENS))
        })
        .collect()
}

/// Runs the paging comparison and returns both the rendered table and the
/// per-configuration summaries.
pub fn paging_report(samples: usize) -> (Table, Vec<PagingSummary>) {
    let samples = samples.max(1);
    let num_requests = 16 * samples;
    let step_budget = 3 * GEN_TOKENS * samples;
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    // Same pool as the serving-throughput experiment: two full-attention
    // steady-state requests plus one token of slack.
    let pool_bytes = crate::sizing::steady_pool_bytes(&model, PROMPT_LEN, GEN_TOKENS, KvDtype::F32);

    let mut table = Table::new(
        format!(
            "Paged KV allocator at a fixed {pool_bytes}-byte pool (Keyformer@50%, \
             {num_requests} requests, {step_budget}-step budget): block size vs. \
             throughput, utilization and overshoot"
        ),
        &[
            "config",
            "completed",
            "requests_per_step",
            "utilization",
            "peak_blocks",
            "capacity",
            "overshoot",
            "allocs",
            "stalls",
            "peak_concurrency",
        ],
    );
    let mut summaries = Vec::new();
    for (label, config) in lineup() {
        let config = ServerConfig {
            pool_bytes,
            ..config
        };
        let mut server = Server::new(&model, config).expect("paging config is valid");
        for request in request_stream(num_requests) {
            server
                .submit(request)
                .expect("synthetic requests carry no overrides");
        }
        server.run(step_budget);
        let stats = *server.stats();
        let pool = server.pool_stats();
        let completed = server.completions().len();
        let summary = PagingSummary {
            config: label,
            block_size: config.block_size,
            strict: config.strict_pool,
            prefill_chunk: config.prefill_chunk,
            submitted: num_requests,
            completed,
            steps: stats.steps,
            requests_per_step: completed as f64 / stats.steps.max(1) as f64,
            utilization: stats.mean_pool_utilization(),
            capacity_blocks: server.total_blocks(),
            peak_blocks: pool.peak_in_use,
            overshoot_blocks: pool.peak_overshoot(),
            block_allocs: pool.total_allocs,
            block_frees: pool.total_frees,
            shared_blocks_peak: pool.peak_shared_blocks,
            prefill_stalls: stats.prefill_stalls,
            peak_concurrency: stats.peak_concurrency,
        };
        table.push_row(vec![
            summary.config.clone(),
            summary.completed.to_string(),
            fmt(summary.requests_per_step),
            format!("{:.1}%", summary.utilization * 100.0),
            summary.peak_blocks.to_string(),
            summary.capacity_blocks.to_string(),
            summary.overshoot_blocks.to_string(),
            summary.block_allocs.to_string(),
            summary.prefill_stalls.to_string(),
            summary.peak_concurrency.to_string(),
        ]);
        summaries.push(summary);
    }
    (table, summaries)
}

/// Table-only entry point used by the experiment registry.
pub fn paging(samples: usize) -> Table {
    paging_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_prefix<'a>(summaries: &'a [PagingSummary], needle: &str) -> &'a PagingSummary {
        summaries
            .iter()
            .find(|s| s.config.starts_with(needle))
            .unwrap_or_else(|| panic!("{needle} missing"))
    }

    #[test]
    fn paged_blocks_beat_the_contiguous_baseline_at_a_fixed_pool() {
        let (table, summaries) = paging_report(1);
        assert_eq!(table.rows.len(), summaries.len());
        let contiguous = by_prefix(&summaries, "contiguous");
        let paged = by_prefix(&summaries, "paged(bs=8)");
        assert!(
            paged.requests_per_step >= contiguous.requests_per_step,
            "paged {} vs contiguous {} requests/step",
            paged.requests_per_step,
            contiguous.requests_per_step
        );
        assert!(
            paged.peak_concurrency > contiguous.peak_concurrency,
            "fine blocks should convert the pool into more concurrency"
        );
        assert!(
            paged.utilization >= 0.9,
            "steady-state pool utilization {:.3} below the 90% target",
            paged.utilization
        );
        assert!(
            contiguous.utilization < paged.utilization,
            "sequence-granular blocks must show the fragmentation cost"
        );
    }

    #[test]
    fn strict_pools_trade_throughput_for_zero_overshoot() {
        let (_, summaries) = paging_report(1);
        let strict = by_prefix(&summaries, "paged(bs=8)+strict");
        assert_eq!(strict.overshoot_blocks, 0);
        assert!(strict.peak_blocks <= strict.capacity_blocks);
        assert!(strict.completed > 0, "strict pool must still make progress");
        // The overcommitting default absorbs the prefill transient instead.
        let paged = by_prefix(&summaries, "paged(bs=8)");
        assert!(paged.overshoot_blocks > 0 || paged.peak_blocks <= paged.capacity_blocks);
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let (_, summaries) = paging_report(1);
        assert_eq!(summaries.len(), 6);
        let json = serde_json::to_string(&summaries).unwrap();
        let back: Vec<PagingSummary> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, summaries);
    }
}

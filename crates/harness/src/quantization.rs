//! Quantization experiment: what u8 KV block storage buys a fixed byte pool,
//! across the policy zoo and cache budgets.
//!
//! Every row serves the *same* oversubscribed workload through the *same*
//! KV-byte pool (sized in f32 terms, exactly like the serving-throughput
//! experiment) and varies the storage dtype, the eviction policy and the
//! cache-budget fraction. Quantizing sealed blocks to u8 with per-block
//! affine scale/zero-point cuts `bytes_per_slot` to a quarter, so the same
//! byte pool converts to 4x the blocks — and with iteration-level batching
//! that capacity converts into concurrency and completed requests, exactly
//! the mechanism the paper exploits via eviction. The two levers compose:
//! Keyformer@50% in u8 stacks a ~2x footprint cut on top of a 4x one.
//!
//! Each (dtype, policy, budget) point reports the serving leg — completed
//! requests, steady-state pool utilization, peak concurrency — plus a
//! standalone accuracy leg (ROUGE-2 on the synthetic summarization task at
//! that dtype/policy/budget, via [`InferenceEngine`]); u8 rows carry their
//! completed-requests multiplier and ROUGE-2 delta against the matching f32
//! row. The headline: at least one policy/budget point completes >= 2x the
//! requests in u8 at (near-)matched ROUGE, from the same byte pool.

use crate::report::{fmt, Table};
use crate::serving::MODEL_SEED;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::engine::InferenceEngine;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_model::model::TransformerModel;
use keyformer_serve::{Request, Server, ServerConfig};
use keyformer_text::datasets::summarization::{SummarizationDataset, SummarizationSpec};
use keyformer_text::datasets::Sample;
use keyformer_text::rouge::{rouge_scores, RougeScores};
use serde::{Deserialize, Serialize};

/// Prompt length of every synthetic serving request (matches the serving
/// experiment so the byte pools are directly comparable).
const PROMPT_LEN: usize = 48;
/// Tokens generated per request.
const GEN_TOKENS: usize = 8;
/// Budget fractions swept for the budgeted policies.
const BUDGET_FRACTIONS: [f64; 2] = [0.3, 0.5];
/// Weight seed of the accuracy leg's model (the accuracy experiments' seed).
const ACCURACY_MODEL_SEED: u64 = 3;

/// Machine-readable summary of one (dtype, policy, budget) point, emitted as
/// `BENCH_quant.json` by `kf_experiments`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantSummary {
    /// Storage dtype label (`f32` or `u8`).
    pub dtype: String,
    /// Policy label (e.g. `Keyformer`).
    pub policy: String,
    /// Cache-budget fraction; `None` = full attention (no eviction).
    pub budget_fraction: Option<f64>,
    /// The fixed byte pool every row serves from.
    pub pool_bytes: usize,
    /// Block capacity that byte pool converts to at this dtype.
    pub capacity_blocks: usize,
    /// Requests submitted (oversubscribed relative to the step budget).
    pub submitted: usize,
    /// Requests completed within the step budget — the headline quantity.
    pub completed: usize,
    /// Scheduler steps executed.
    pub steps: usize,
    /// Requests completed per scheduler step.
    pub requests_per_step: f64,
    /// Mean live-slots / allocated-slots at end-of-step steady state.
    pub utilization: f64,
    /// Peak concurrently running sessions.
    pub peak_concurrency: usize,
    /// ROUGE-2 F1 of this dtype/policy/budget on the summarization task
    /// (standalone [`InferenceEngine`] leg, not the serving workload).
    pub rouge2: f64,
    /// `completed / completed(f32)` at the same policy/budget; 1.0 on f32
    /// rows by construction.
    pub completed_multiplier_vs_f32: f64,
    /// `rouge2 - rouge2(f32)` at the same policy/budget; 0.0 on f32 rows.
    pub rouge2_delta_vs_f32: f64,
}

/// The (policy, budget) grid: full attention plus the three main reduced-cache
/// policies at each swept budget fraction.
fn policy_budget_grid() -> Vec<(String, PolicySpec, Option<CacheBudgetSpec>, Option<f64>)> {
    let mut grid = vec![("Full".to_string(), PolicySpec::Full, None, None)];
    for &fraction in &BUDGET_FRACTIONS {
        let budget = CacheBudgetSpec::with_fraction(fraction).expect("valid fraction");
        let pct = (fraction * 100.0) as usize;
        for (label, policy) in [
            ("Window", PolicySpec::Window),
            ("H2O", PolicySpec::h2o_default()),
            ("Keyformer", PolicySpec::keyformer_default()),
        ] {
            grid.push((
                format!("{label}@{pct}%"),
                policy,
                Some(budget),
                Some(fraction),
            ));
        }
    }
    grid
}

/// Deterministic synthetic request stream (same token pattern as the serving
/// experiment).
fn request_stream(num: usize) -> Vec<Request> {
    (0..num)
        .map(|i| {
            let salt = i as u32;
            let prompt: Vec<u32> = (0..PROMPT_LEN)
                .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
                .collect();
            Request::new(i as u64, prompt, GenerationConfig::new(GEN_TOKENS))
        })
        .collect()
}

/// One serving run at a (dtype, policy, budget) point: completed requests and
/// pool behaviour inside a fixed step budget.
fn serve_point(
    model: &TransformerModel,
    policy: PolicySpec,
    budget: Option<CacheBudgetSpec>,
    dtype: KvDtype,
    pool_bytes: usize,
    num_requests: usize,
    step_budget: usize,
) -> (usize, usize, f64, usize, usize) {
    // Two prefills per step so the u8 rows can actually ramp to their 4x
    // concurrency inside the step budget; both dtypes get the same schedule.
    let config = ServerConfig::new(policy, budget, pool_bytes)
        .with_prefills_per_step(2)
        .with_kv_dtype(dtype);
    let mut server = Server::new(model, config).expect("quantization config is valid");
    let capacity_blocks = server.total_blocks();
    for request in request_stream(num_requests) {
        server
            .submit(request)
            .expect("synthetic requests carry no overrides");
    }
    server.run(step_budget);
    let stats = *server.stats();
    (
        server.completions().len(),
        stats.steps,
        stats.mean_pool_utilization(),
        stats.peak_concurrency,
        capacity_blocks,
    )
}

/// Mean ROUGE-2 F1 of greedy generation at a (dtype, policy, budget) point on
/// the synthetic summarization task — the accuracy leg of each row.
fn rouge2_point(
    model: &TransformerModel,
    policy: PolicySpec,
    budget: Option<CacheBudgetSpec>,
    dtype: KvDtype,
    samples: &[Sample],
) -> f64 {
    let mut scores = Vec::with_capacity(samples.len());
    for sample in samples {
        let built = policy.build().expect("policy spec must be valid");
        let mut engine = InferenceEngine::new_dtype(model, built, budget, dtype);
        let config = GenerationConfig::new(sample.target_generation_len());
        let output = engine.generate(&sample.prompt, &config);
        scores.push(rouge_scores(&output.generated, &sample.reference));
    }
    RougeScores::mean(&scores).rouge2.f1
}

/// Runs the quantization sweep and returns both the rendered table and the
/// per-point summaries.
///
/// `samples` scales the request count, the step budget and the accuracy leg's
/// dataset size, exactly like the sibling serving experiments.
pub fn quantization_report(samples: usize) -> (Table, Vec<QuantSummary>) {
    let samples = samples.max(1);
    // Heavily oversubscribed: even the u8 rows (4x the block capacity) must
    // stay queue-bound, so completions measure capacity, not workload size.
    let num_requests = 64 * samples;
    let step_budget = 3 * GEN_TOKENS * samples;
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    // The *same* byte pool for every row, sized in f32 terms: the tight
    // steady-state pool the serving/paging/prefix/streaming experiments use.
    let pool_bytes = crate::sizing::steady_pool_bytes(&model, PROMPT_LEN, GEN_TOKENS, KvDtype::F32);
    // The accuracy leg needs the full synthetic vocabulary the summarization
    // task generates over; Tiny's 128-token vocab is serving-only.
    let accuracy_model = ModelFamily::CerebrasLike.build(ACCURACY_MODEL_SEED);
    let eval_samples =
        SummarizationDataset::generate(&SummarizationSpec::paper_default(), samples.max(2))
            .samples()
            .to_vec();

    let mut table = Table::new(
        format!(
            "Quantized KV storage at a fixed {pool_bytes}-byte pool: u8 blocks \
             (per-block affine scale/zero-point) vs f32 across policies and \
             budgets ({num_requests} requests, {step_budget}-step budget)"
        ),
        &[
            "dtype",
            "policy",
            "blocks",
            "completed",
            "requests_per_step",
            "utilization",
            "peak_concurrency",
            "rouge2",
            "completed_x_vs_f32",
            "rouge2_delta",
        ],
    );

    let mut summaries = Vec::new();
    for (label, policy, budget, fraction) in policy_budget_grid() {
        let mut f32_completed = 0usize;
        let mut f32_rouge2 = 0.0f64;
        for dtype in [KvDtype::F32, KvDtype::U8] {
            let (completed, steps, utilization, peak_concurrency, capacity_blocks) = serve_point(
                &model,
                policy,
                budget,
                dtype,
                pool_bytes,
                num_requests,
                step_budget,
            );
            let rouge2 = rouge2_point(&accuracy_model, policy, budget, dtype, &eval_samples);
            let (multiplier, delta) = match dtype {
                KvDtype::F32 => {
                    f32_completed = completed;
                    f32_rouge2 = rouge2;
                    (1.0, 0.0)
                }
                KvDtype::U8 => (
                    completed as f64 / f32_completed.max(1) as f64,
                    rouge2 - f32_rouge2,
                ),
            };
            let summary = QuantSummary {
                dtype: dtype.label().to_string(),
                policy: label.clone(),
                budget_fraction: fraction,
                pool_bytes,
                capacity_blocks,
                submitted: num_requests,
                completed,
                steps,
                requests_per_step: completed as f64 / steps.max(1) as f64,
                utilization,
                peak_concurrency,
                rouge2,
                completed_multiplier_vs_f32: multiplier,
                rouge2_delta_vs_f32: delta,
            };
            table.push_row(vec![
                summary.dtype.clone(),
                summary.policy.clone(),
                summary.capacity_blocks.to_string(),
                summary.completed.to_string(),
                fmt(summary.requests_per_step),
                fmt(summary.utilization),
                summary.peak_concurrency.to_string(),
                fmt(summary.rouge2),
                fmt(summary.completed_multiplier_vs_f32),
                fmt(summary.rouge2_delta_vs_f32),
            ]);
            summaries.push(summary);
        }
    }
    (table, summaries)
}

/// Table-only entry point used by the experiment registry.
pub fn quantization(samples: usize) -> Table {
    quantization_report(samples).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance headline: at the same byte pool, at least one
    /// policy/budget point completes >= 2x the requests in u8 — and every
    /// point's u8 capacity is exactly 4x its f32 capacity.
    #[test]
    fn u8_doubles_completed_requests_at_some_point() {
        let (_, summaries) = quantization_report(1);
        assert_eq!(summaries.len(), 2 * policy_budget_grid().len());
        for pair in summaries.chunks(2) {
            let (f32_row, u8_row) = (&pair[0], &pair[1]);
            assert_eq!(f32_row.dtype, "f32");
            assert_eq!(u8_row.dtype, "u8");
            assert_eq!(f32_row.policy, u8_row.policy);
            assert_eq!(f32_row.pool_bytes, u8_row.pool_bytes, "fixed byte pool");
            // u8 quarters bytes_per_slot, so the same pool holds 4x the
            // blocks — up to the flooring of pool_bytes / bytes_per_block,
            // which the u8 conversion performs at a 4x finer granularity.
            assert!(
                u8_row.capacity_blocks >= 4 * f32_row.capacity_blocks
                    && u8_row.capacity_blocks < 4 * (f32_row.capacity_blocks + 1),
                "u8 capacity {} vs f32 {}",
                u8_row.capacity_blocks,
                f32_row.capacity_blocks
            );
            assert!(
                u8_row.completed >= f32_row.completed,
                "{}: u8 completed {} < f32 {}",
                u8_row.policy,
                u8_row.completed,
                f32_row.completed
            );
        }
        let best = summaries
            .iter()
            .filter(|s| s.dtype == "u8")
            .map(|s| s.completed_multiplier_vs_f32)
            .fold(0.0f64, f64::max);
        assert!(
            best >= 2.0,
            "headline requires >= 2x completed requests at some policy/budget point, best {best:.2}x"
        );
    }
}

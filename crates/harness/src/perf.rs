//! Performance experiments on the analytic accelerator model (Figures 1, 9, 10 and
//! Table 1).

use crate::report::{fmt, Table};
use keyformer_perf::{CachePolicyCost, PerfModel, Workload};

/// Figure 1: normalized inference latency and KV-cache size vs. sequence length for
/// MPT-7B (50% context + 50% generation, batch 1, beam 4).
pub fn figure1() -> Table {
    let mut table = Table::new(
        "Figure 1: latency and memory vs sequence length (MPT-7B, A100-80GB)",
        &[
            "seq_len",
            "norm_latency",
            "kv_movement_share",
            "kv_cache_gb",
            "model_gb",
        ],
    );
    let model = PerfModel::paper_default();
    let policy = CachePolicyCost::full_attention();
    let base = model
        .estimate(&Workload::figure1(512), &policy)
        .total_latency_s();
    for seq in [512usize, 2048, 8192] {
        let workload = Workload::figure1(seq);
        let est = model.estimate(&workload, &policy);
        let kv_share = est.generation.kv_cache_data_movement_s / est.total_latency_s();
        let kv_gb = model.model.kv_cache_bytes(seq, 1, 4) as f64 / 1e9;
        let weight_gb = model.model.weight_bytes() as f64 / 1e9;
        table.push_row(vec![
            seq.to_string(),
            fmt(est.total_latency_s() / base),
            fmt(kv_share),
            fmt(kv_gb),
            fmt(weight_gb),
        ]);
    }
    table
}

/// Figure 9: iso-accuracy speedup for 1k/2k/4k (+ equal generation) workloads:
/// Full attention vs. H2O at 90% cache vs. Keyformer at 50% cache.
pub fn figure9() -> Table {
    let mut table = Table::new(
        "Figure 9: inference speedup at iso-accuracy (MPT-7B, beam 4)",
        &["workload", "full", "h2o_90pct", "keyformer_50pct"],
    );
    let model = PerfModel::paper_default();
    for len in [1024usize, 2048, 4096] {
        let workload = Workload::symmetric(len).with_beam_size(4);
        let full = model
            .estimate(&workload, &CachePolicyCost::full_attention())
            .total_latency_s();
        let h2o = model
            .estimate(&workload, &CachePolicyCost::h2o(0.9))
            .total_latency_s();
        let keyformer = model
            .estimate(&workload, &CachePolicyCost::keyformer(0.5))
            .total_latency_s();
        table.push_row(vec![
            format!("{len}+{len}"),
            fmt(1.0),
            fmt(full / h2o),
            fmt(full / keyformer),
        ]);
    }
    table
}

/// Figure 10: normalized KV-cache data movement and scaled-dot-product time for
/// Keyformer at 50% cache, including the Gumbel-softmax scoring overhead.
pub fn figure10() -> Table {
    let mut table = Table::new(
        "Figure 10: KV data movement and scaled dot product, Keyformer 50% cache",
        &[
            "seq_len",
            "kv_movement_full",
            "kv_movement_keyformer",
            "sdp_full",
            "sdp_keyformer",
            "gumbel_overhead",
        ],
    );
    let model = PerfModel::paper_default();
    for len in [512usize, 1024, 2048, 4096] {
        let workload = Workload::symmetric(len).with_beam_size(4);
        let full = model.estimate(&workload, &CachePolicyCost::full_attention());
        let kf = model.estimate(&workload, &CachePolicyCost::keyformer(0.5));
        let norm = full.generation.kv_cache_data_movement_s.max(1e-12);
        let sdp_norm = full.generation.scaled_dot_product_s.max(1e-12);
        table.push_row(vec![
            len.to_string(),
            fmt(1.0),
            fmt(kf.generation.kv_cache_data_movement_s / norm),
            fmt(1.0),
            fmt(kf.generation.scaled_dot_product_s / sdp_norm),
            fmt(kf.generation.scoring_overhead_s / norm),
        ]);
    }
    table
}

/// Table 1: generation throughput (tokens/s) for MPT-7B across sequence lengths,
/// including the out-of-memory row and the larger batch Keyformer enables.
pub fn table1() -> Table {
    let mut table = Table::new(
        "Table 1: generation throughput (tokens/s), MPT-7B on A100-80GB",
        &["workload", "full", "h2o_90pct", "keyformer_50pct"],
    );
    let model = PerfModel::paper_default();
    let policies = [
        CachePolicyCost::full_attention(),
        CachePolicyCost::h2o(0.9),
        CachePolicyCost::keyformer(0.5),
    ];
    let mut row = |label: String, workload: Workload| {
        let mut cells = vec![label];
        for policy in &policies {
            let est = model.estimate(&workload, policy);
            cells.push(if est.fits_in_memory {
                format!("{:.1}", est.tokens_per_second)
            } else {
                "OOM".into()
            });
        }
        table.push_row(cells);
    };
    for len in [1024usize, 2048] {
        row(
            format!("{len}+{len}"),
            Workload::symmetric(len).with_beam_size(4),
        );
    }
    row(
        "4096+4096 (BS=1)".into(),
        Workload::symmetric(4096).with_beam_size(4),
    );
    row(
        "4096+4096 (BS=8)".into(),
        Workload::symmetric(4096)
            .with_beam_size(4)
            .with_batch_size(8),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_latency_grows_with_sequence_length() {
        let t = figure1();
        assert_eq!(t.rows.len(), 3);
        let l512: f64 = t.cell(0, "norm_latency").unwrap().parse().unwrap();
        let l8k: f64 = t.cell(2, "norm_latency").unwrap().parse().unwrap();
        assert!((l512 - 1.0).abs() < 1e-6);
        assert!(
            l8k > 20.0,
            "8k latency should be >20x the 512 latency, got {l8k}"
        );
    }

    #[test]
    fn figure9_keyformer_wins_and_speedup_grows_with_length() {
        let t = figure9();
        let kf_1k: f64 = t.cell(0, "keyformer_50pct").unwrap().parse().unwrap();
        let kf_4k: f64 = t.cell(2, "keyformer_50pct").unwrap().parse().unwrap();
        let h2o_4k: f64 = t.cell(2, "h2o_90pct").unwrap().parse().unwrap();
        assert!(kf_4k > kf_1k);
        assert!(kf_4k > h2o_4k);
        assert!(kf_4k > 1.3);
    }

    #[test]
    fn figure10_keyformer_moves_less_data() {
        let t = figure10();
        for r in 0..t.rows.len() {
            let kv: f64 = t.cell(r, "kv_movement_keyformer").unwrap().parse().unwrap();
            let sdp: f64 = t.cell(r, "sdp_keyformer").unwrap().parse().unwrap();
            assert!(kv < 1.0);
            assert!(sdp < 1.0);
        }
    }

    #[test]
    fn table1_shows_oom_for_full_attention_at_large_batch() {
        let t = table1();
        assert_eq!(t.cell(3, "full"), Some("OOM"));
        // Keyformer throughput at the same batch/seq must beat full attention where
        // both fit.
        let full: f64 = t.cell(2, "full").unwrap().parse().unwrap();
        let kf: f64 = t.cell(2, "keyformer_50pct").unwrap().parse().unwrap();
        assert!(kf > full);
    }
}

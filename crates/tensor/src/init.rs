//! Seeded, deterministic weight initialisation.
//!
//! Every model in the reproduction is built from these initialisers so that a single
//! `u64` seed fully determines all weights, making every experiment reproducible.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a matrix with entries drawn i.i.d. from a uniform distribution on
/// `[-scale, scale]`, using a dedicated PRNG seeded with `seed`.
pub fn uniform_matrix(rows: usize, cols: usize, scale: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = rng.gen_range(-scale..=scale);
    }
    m
}

/// Creates a matrix with entries drawn i.i.d. from `N(0, std^2)` using Box–Muller,
/// seeded with `seed`.
pub fn gaussian_matrix(rows: usize, cols: usize, std: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = std * gaussian_sample(&mut rng);
    }
    m
}

/// Xavier/Glorot uniform initialisation: scale `sqrt(6 / (fan_in + fan_out))`.
///
/// This is the default initialiser for the projection matrices in the substrate
/// transformer; it keeps activations in a range where attention logits stay
/// well-conditioned without training.
pub fn xavier_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let scale = (6.0 / (rows + cols) as f32).sqrt();
    uniform_matrix(rows, cols, scale, seed)
}

/// Draws a single standard-normal sample from `rng` via the Box–Muller transform.
pub fn gaussian_sample<R: Rng>(rng: &mut R) -> f32 {
    // Avoid u1 == 0 which would make ln(0) = -inf.
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws a single sample from the standard Gumbel distribution (location 0, scale 1)
/// using inverse-transform sampling: `-ln(-ln(u))`.
///
/// The standard Gumbel distribution has mean `γ ≈ 0.5772` (the Euler–Mascheroni
/// constant) and standard deviation `π/√6 ≈ 1.2825`, the exact values the paper
/// reuses for its Gaussian/constant ablations (Table 4).
pub fn gumbel_sample<R: Rng>(rng: &mut R) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// Mean of the standard Gumbel distribution (Euler–Mascheroni constant).
pub const GUMBEL_MEAN: f32 = 0.577_215_7;

/// Standard deviation of the standard Gumbel distribution (`π / sqrt(6)`).
pub const GUMBEL_STD: f32 = 1.282_549_8;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_matrix_is_deterministic_and_bounded() {
        let a = uniform_matrix(8, 8, 0.5, 42);
        let b = uniform_matrix(8, 8, 0.5, 42);
        let c = uniform_matrix(8, 8, 0.5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| x.abs() <= 0.5));
    }

    #[test]
    fn gaussian_matrix_has_roughly_correct_moments() {
        let m = gaussian_matrix(64, 64, 2.0, 7);
        let mean = crate::vector::mean(m.as_slice());
        let var = crate::vector::variance(m.as_slice());
        assert!(mean.abs() < 0.15, "mean {mean}");
        assert!((var - 4.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn xavier_scale_shrinks_with_size() {
        let small = xavier_matrix(4, 4, 1);
        let large = xavier_matrix(256, 256, 1);
        let small_max = small.as_slice().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        let large_max = large.as_slice().iter().fold(0.0f32, |a, &x| a.max(x.abs()));
        assert!(large_max < small_max);
    }

    #[test]
    fn gumbel_sample_moments_match_theory() {
        let mut rng = StdRng::seed_from_u64(123);
        let samples: Vec<f32> = (0..20_000).map(|_| gumbel_sample(&mut rng)).collect();
        let mean = crate::vector::mean(&samples);
        let std = crate::vector::variance(&samples).sqrt();
        assert!((mean - GUMBEL_MEAN).abs() < 0.05, "mean {mean}");
        assert!((std - GUMBEL_STD).abs() < 0.08, "std {std}");
    }

    #[test]
    fn gumbel_is_right_skewed() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f32> = (0..20_000).map(|_| gumbel_sample(&mut rng)).collect();
        let mean = crate::vector::mean(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Right skew: mean exceeds median.
        assert!(mean > median);
    }

    #[test]
    fn gaussian_sample_is_finite() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert!(gaussian_sample(&mut rng).is_finite());
        }
    }
}

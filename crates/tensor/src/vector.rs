//! Small free functions over `f32` slices used throughout the workspace.

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Element-wise sum of two slices into a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Multiplies every element of a slice by `factor`, returning a new vector.
pub fn scale(a: &[f32], factor: f32) -> Vec<f32> {
    a.iter().map(|x| x * factor).collect()
}

/// Euclidean norm of a slice.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(a: &[f32]) -> f32 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f32>() / a.len() as f32
    }
}

/// Population variance; returns 0 for an empty slice.
pub fn variance(a: &[f32]) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / a.len() as f32
}

/// Index of the maximum element, breaking ties towards the lowest index.
///
/// Returns `None` for an empty slice or if every element is NaN.
pub fn argmax(a: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if x <= bx => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_value() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn add_and_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(scale(&[1.0, 2.0], 3.0), vec![3.0, 6.0]);
    }

    #[test]
    fn l2_norm_known_value() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[f32::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f32::NAN]), None);
    }
}

//! # keyformer-tensor
//!
//! A minimal, dependency-light dense `f32` tensor substrate used by the Keyformer
//! reproduction. It provides exactly the operations a decoder-only transformer and
//! its KV-cache policies need:
//!
//! * a row-major [`Matrix`] type with matrix multiplication and transposition,
//! * numerically stable [`ops::softmax`] / [`ops::log_softmax`],
//! * [`ops::layer_norm`], [`ops::gelu`] and friends,
//! * top-k selection ([`topk`]) used by every eviction policy,
//! * seeded weight initialisation ([`init`]) so that every experiment is
//!   reproducible from a single `u64` seed.
//!
//! The crate intentionally avoids SIMD/BLAS: the reproduction runs laptop-scale
//! models where clarity and determinism matter more than peak FLOPs.
//!
//! ```
//! use keyformer_tensor::{Matrix, ops};
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.get(1, 0), 3.0);
//!
//! let probs = ops::softmax(&[1.0, 2.0, 3.0]);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod matrix;
pub mod ops;
pub mod topk;
pub mod vector;

pub use matrix::Matrix;
pub use topk::{top_k_indices, top_k_indices_by, ArgMax};
pub use vector::{add, argmax, dot, l2_norm, mean, scale, variance};

/// Crate-wide error type for shape mismatches and invalid arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An argument was structurally invalid (empty input, zero dimension, ...).
    InvalidArgument(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs {}x{}, rhs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}

//! Row-major dense `f32` matrix.

use crate::TensorError;
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// This is the workhorse type of the reproduction: model weights, per-head key/value
/// blocks and attention-logit rows are all `Matrix` values. The API mirrors the small
/// subset of BLAS a decoder-only transformer needs.
///
/// ```
/// use keyformer_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Register-tile height of the GEMM micro-kernel: rows of the left operand
/// processed per tile.
const GEMM_MR: usize = 4;
/// Register-tile width of the GEMM micro-kernel: columns of the right operand
/// processed per tile. `GEMM_MR * GEMM_NR` accumulators fit in registers.
const GEMM_NR: usize = 16;

/// GEMM micro-kernel: computes an `mr x nr` output tile whose element
/// `(i0 + mi, jo + ni)` is the dot product of row `i0 + mi` of `a` (stride
/// `lda`) with column `jb + ni` of `b` (stride `ldb`), written to `out` at
/// stride `ldo`.
///
/// Every output element accumulates its `k` products through a **single chain
/// in ascending-`k` order**, which makes the tile bit-identical to the
/// `row.iter().zip(v).map(|(a, b)| a * b).sum::<f32>()` reduction used by
/// [`Matrix::matvec`] — the contract that lets the chunk-batched prefill path
/// reproduce the sequential path's tokens exactly. Register blocking only
/// reorders *independent* chains, never splits one.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_tile(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    lda: usize,
    ldb: usize,
    ldo: usize,
    i0: usize,
    jb: usize,
    jo: usize,
    mr: usize,
    nr: usize,
    k: usize,
) {
    debug_assert!(mr <= GEMM_MR && nr <= GEMM_NR);
    let mut acc = [[0.0f32; GEMM_NR]; GEMM_MR];
    if nr == GEMM_NR {
        // Full-width tile: fixed-length inner loop, so the adds vectorize.
        for kk in 0..k {
            let brow = &b[kk * ldb + jb..kk * ldb + jb + GEMM_NR];
            for (mi, accrow) in acc[..mr].iter_mut().enumerate() {
                let a_val = a[(i0 + mi) * lda + kk];
                for (o, &bv) in accrow.iter_mut().zip(brow) {
                    *o += a_val * bv;
                }
            }
        }
    } else {
        // Ragged right/bottom edge: same arithmetic at runtime width.
        for kk in 0..k {
            let brow = &b[kk * ldb + jb..kk * ldb + jb + nr];
            for (mi, accrow) in acc[..mr].iter_mut().enumerate() {
                let a_val = a[(i0 + mi) * lda + kk];
                for (o, &bv) in accrow[..nr].iter_mut().zip(brow) {
                    *o += a_val * bv;
                }
            }
        }
    }
    for (mi, accrow) in acc[..mr].iter().enumerate() {
        let dst = (i0 + mi) * ldo + jo;
        out[dst..dst + nr].copy_from_slice(&accrow[..nr]);
    }
}

/// Tiled row-major GEMM `out = a * b` with `a` of shape `m x k`, `b` of shape
/// `k x n` and `out` of shape `m x n`, all row-major and fully overwritten.
fn gemm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut i0 = 0;
    while i0 < m {
        let mr = (m - i0).min(GEMM_MR);
        let mut j0 = 0;
        while j0 < n {
            let nr = (n - j0).min(GEMM_NR);
            gemm_tile(a, b, out, k, n, n, i0, j0, j0, mr, nr, k);
            j0 += nr;
        }
        i0 += mr;
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::InvalidArgument(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Appends a row to the bottom of the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols` (unless the matrix is empty, in which case the
    /// column count is adopted from the row).
    pub fn push_row(&mut self, row: &[f32]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row length must match column count");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Shrinks the matrix to its first `rows` rows, dropping the rest in place.
    ///
    /// This is the primitive the paged KV cache uses to give freed block tails
    /// back to the allocator without reallocating the surviving rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows > self.rows()`.
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(
            rows <= self.rows,
            "cannot truncate {} rows to {rows}",
            self.rows
        );
        self.data.truncate(rows * self.cols);
        self.rows = rows;
    }

    /// Returns a new matrix containing only the rows whose indices are listed in
    /// `indices`, in the order given. Indices may repeat.
    ///
    /// This is the primitive every eviction policy uses to rebuild a compacted KV
    /// cache from the set of retained token slots.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "gather index {src} out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix multiplication `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`. Use [`Matrix::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.try_matmul(other)
            .expect("matmul shape mismatch: inner dimensions must agree")
    }

    /// Fallible matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn try_matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm_nn(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix multiplication `self * other` written into a caller-owned flat
    /// row-major buffer (`self.rows() * other.cols()` elements).
    ///
    /// Same tiled kernel as [`Matrix::matmul`]; performs no heap allocation
    /// when `out` already has sufficient capacity.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`. Use
    /// [`Matrix::try_matmul_into`] for a fallible variant.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Vec<f32>) {
        self.try_matmul_into(other, out)
            .expect("matmul shape mismatch: inner dimensions must agree")
    }

    /// Fallible [`Matrix::matmul_into`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the inner dimensions disagree.
    pub fn try_matmul_into(&self, other: &Matrix, out: &mut Vec<f32>) -> Result<(), TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        out.clear();
        out.resize(self.rows * other.cols, 0.0);
        gemm_nn(
            &self.data,
            &other.data,
            self.rows,
            self.cols,
            other.cols,
            out,
        );
        Ok(())
    }

    /// Batched matrix-vector product: applies `self * x` to `count` input
    /// vectors stored back to back in `xs` (each of length `cols`), writing
    /// the `count` output vectors (each of length `rows`) back to back into
    /// `out`.
    ///
    /// Bit-identical to calling [`Matrix::matvec_into`] once per input vector
    /// — every output element accumulates its products through a single
    /// ascending-column chain — but streams the weight matrix through the
    /// cache once per register tile of inputs instead of once per vector, and
    /// transposes weight panels into `pack` so the inner loop reads
    /// unit-stride memory. This is the GEMM behind chunk-batched prefill's
    /// QKV/FFN projections.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `xs.len() != count * cols`.
    pub fn matvec_batch_into(
        &self,
        xs: &[f32],
        count: usize,
        out: &mut Vec<f32>,
        pack: &mut Vec<f32>,
    ) -> Result<(), TensorError> {
        if xs.len() != count * self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_batch",
                lhs: self.shape(),
                rhs: (count, xs.len().checked_div(count).unwrap_or(0)),
            });
        }
        out.clear();
        if count == 1 {
            // A single vector gains nothing from panel packing; use the plain
            // dot-product reduction (identical bits, no packing traffic).
            out.extend(
                self.iter_rows()
                    .map(|row| row.iter().zip(xs).map(|(a, b)| a * b).sum::<f32>()),
            );
            return Ok(());
        }
        let (rows, cols) = (self.rows, self.cols);
        out.resize(count * rows, 0.0);
        pack.clear();
        pack.resize(cols * GEMM_NR, 0.0);
        let mut r0 = 0;
        while r0 < rows {
            let nr = (rows - r0).min(GEMM_NR);
            // Transpose the panel of `nr` weight rows into `pack`
            // (`cols x nr`, padded to stride `GEMM_NR`) — pure data movement,
            // no arithmetic, so bit-compatibility is untouched.
            for (ri, wrow) in self.data[r0 * cols..(r0 + nr) * cols]
                .chunks_exact(cols.max(1))
                .enumerate()
            {
                for (kk, &w) in wrow.iter().enumerate() {
                    pack[kk * GEMM_NR + ri] = w;
                }
            }
            let mut i0 = 0;
            while i0 < count {
                let mr = (count - i0).min(GEMM_MR);
                gemm_tile(xs, pack, out, cols, GEMM_NR, rows, i0, 0, r0, mr, nr, cols);
                i0 += mr;
            }
            r0 += nr;
        }
        Ok(())
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != cols`.
    pub fn matvec(&self, v: &[f32]) -> Result<Vec<f32>, TensorError> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Matrix-vector product `self * v` written into a caller-owned buffer.
    ///
    /// Bit-identical to [`Matrix::matvec`] (same per-row `zip`/`sum` reduction
    /// order); performs no heap allocation when `out` already has capacity for
    /// `rows` elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != cols`.
    pub fn matvec_into(&self, v: &[f32], out: &mut Vec<f32>) -> Result<(), TensorError> {
        if v.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        out.clear();
        out.extend(
            self.iter_rows()
                .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum::<f32>()),
        );
        Ok(())
    }

    /// Reserves capacity for at least `additional` more rows without changing
    /// the matrix contents.
    ///
    /// The paged KV cache calls this when a fresh block is allocated so the
    /// per-token [`Matrix::push_row`] appends that fill the block never touch
    /// the allocator.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols.max(1));
    }

    /// Vector-matrix product `v * self` (treats `v` as a row vector).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v.len() != rows`.
    pub fn vecmat(&self, v: &[f32]) -> Result<Vec<f32>, TensorError> {
        if v.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "vecmat",
                lhs: (1, v.len()),
                rhs: self.shape(),
            });
        }
        let mut out = vec![0.0f32; self.cols];
        for (r, &coeff) in v.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += coeff * x;
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_in_place(&mut self, factor: f32) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Approximate memory footprint of the matrix payload in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.try_matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    /// Deterministic pseudo-random matrix for kernel edge-case coverage.
    fn lcg_matrix(rows: usize, cols: usize, seed: &mut u64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for x in m.as_mut_slice() {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map the top bits to [-1, 1).
            *x = ((*seed >> 40) as f32) / ((1u64 << 23) as f32) - 1.0;
        }
        m
    }

    /// Scalar reference with the same per-element ascending-`k` single-chain
    /// accumulation the tiled kernel promises.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_is_bit_identical_to_scalar_reference() {
        // Shapes chosen to exercise full tiles, ragged right/bottom edges and
        // degenerate dimensions of the register-blocked kernel.
        let shapes = [
            (1, 1, 1),
            (4, 8, 16),
            (5, 3, 17),
            (7, 13, 19),
            (3, 1, 33),
            (16, 16, 16),
            (2, 5, 1),
            (1, 7, 16),
        ];
        let mut seed = 0x5eed_cafe;
        for (m, k, n) in shapes {
            let a = lcg_matrix(m, k, &mut seed);
            let b = lcg_matrix(k, n, &mut seed);
            let tiled = a.matmul(&b);
            let reference = matmul_reference(&a, &b);
            assert_eq!(tiled, reference, "diverged at shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn matmul_into_known_values_and_shape_mismatch() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let mut out = vec![99.0; 2];
        a.matmul_into(&b, &mut out);
        assert_eq!(out, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(out, a.matmul(&b).into_vec(), "into variant matches matmul");
        assert!(matches!(
            a.try_matmul_into(&a, &mut out),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matvec_batch_into_is_bit_identical_to_matvec_into() {
        let mut seed = 0xbead_f00d;
        // Odd row/column counts exercise ragged weight panels; counts cover
        // the single-vector fast path and partial register tiles.
        for (rows, cols) in [(1, 1), (19, 13), (16, 32), (33, 7)] {
            let w = lcg_matrix(rows, cols, &mut seed);
            for count in [1usize, 2, 4, 5, 9] {
                let xs = lcg_matrix(count, cols, &mut seed);
                let mut batched = Vec::new();
                let mut pack = Vec::new();
                w.matvec_batch_into(xs.as_slice(), count, &mut batched, &mut pack)
                    .unwrap();
                assert_eq!(batched.len(), count * rows);
                let mut single = Vec::new();
                for i in 0..count {
                    w.matvec_into(xs.row(i), &mut single).unwrap();
                    assert_eq!(
                        &batched[i * rows..(i + 1) * rows],
                        single.as_slice(),
                        "diverged at {rows}x{cols}, count {count}, vector {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_batch_into_shape_mismatch_errors() {
        let w = Matrix::zeros(3, 4);
        let mut out = Vec::new();
        let mut pack = Vec::new();
        assert!(matches!(
            w.matvec_batch_into(&[0.0; 7], 2, &mut out, &mut pack),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().row(0), &[1.0, 4.0]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(a.vecmat(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.5, -3.0], vec![0.125, 4.0, 6.0]]);
        let v = [1.5f32, -2.0, 0.25];
        let mut out = vec![7.0; 5];
        a.matvec_into(&v, &mut out).unwrap();
        assert_eq!(out, a.matvec(&v).unwrap());
        assert!(a.matvec_into(&[1.0], &mut out).is_err());
    }

    #[test]
    fn reserve_rows_preallocates_for_push_row() {
        let mut m = Matrix::zeros(0, 3);
        m.reserve_rows(4);
        let cap = m.data.capacity();
        for _ in 0..4 {
            m.push_row(&[1.0, 2.0, 3.0]);
        }
        assert_eq!(m.data.capacity(), cap, "push_row must not reallocate");
        assert_eq!(m.shape(), (4, 3));
    }

    #[test]
    fn gather_rows_selects_and_reorders() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.shape(), (2, 2));
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::default();
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row length must match")]
    fn push_row_wrong_width_panics() {
        let mut m = Matrix::zeros(1, 3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn truncate_rows_drops_tail_in_place() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        m.truncate_rows(1);
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.row(0), &[1.0, 2.0]);
        m.truncate_rows(1); // no-op at the same size
        assert_eq!(m.shape(), (1, 2));
        m.truncate_rows(0);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn truncate_rows_rejects_growth() {
        let mut m = Matrix::zeros(2, 2);
        m.truncate_rows(3);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 5]).is_err());
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        let mut c = a.add(&b).unwrap();
        c.scale_in_place(2.0);
        assert!(c.as_slice().iter().all(|&x| x == 6.0));
        assert!(a.add(&Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn frobenius_norm_known_value() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn byte_size_counts_payload() {
        let a = Matrix::zeros(4, 8);
        assert_eq!(a.byte_size(), 4 * 8 * 4);
    }

    #[test]
    fn col_extracts_column() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.col(1), vec![2.0, 4.0]);
    }
}

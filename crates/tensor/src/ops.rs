//! Numerically stable activation and normalisation primitives.

use crate::Matrix;

/// Numerically stable softmax over a slice of logits.
///
/// Returns a probability vector that sums to 1 (up to floating-point error). An empty
/// input yields an empty output.
///
/// ```
/// let p = keyformer_tensor::ops::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 || !sum.is_finite() {
        // All logits were -inf (fully masked) or overflowed: fall back to uniform.
        let uniform = 1.0 / logits.len() as f32;
        return vec![uniform; logits.len()];
    }
    exps.iter().map(|&e| e / sum).collect()
}

/// [`softmax`] writing into a caller-provided buffer, so a hot loop can reuse
/// one allocation across calls.
///
/// `out` is cleared and refilled; with sufficient capacity the call performs no
/// heap allocation. The arithmetic (max-subtraction, exponentiation order,
/// single sum, per-element divide, uniform fallback) is exactly [`softmax`]'s,
/// so the two produce bit-identical results.
pub fn softmax_into(logits: &[f32], out: &mut Vec<f32>) {
    out.clear();
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    out.extend(logits.iter().map(|&x| (x - max).exp()));
    let sum: f32 = out.iter().sum();
    if sum == 0.0 || !sum.is_finite() {
        // All logits were -inf (fully masked) or overflowed: fall back to uniform.
        let uniform = 1.0 / logits.len() as f32;
        out.fill(uniform);
        return;
    }
    for e in out.iter_mut() {
        *e /= sum;
    }
}

/// Softmax with a temperature parameter `tau`.
///
/// `tau -> 0` sharpens the distribution towards an argmax, `tau -> inf` flattens it
/// towards uniform. This is the primitive behind the Keyformer score function
/// (Equation 9 of the paper).
///
/// # Panics
///
/// Panics if `tau <= 0`.
pub fn softmax_with_temperature(logits: &[f32], tau: f32) -> Vec<f32> {
    assert!(tau > 0.0, "temperature must be strictly positive");
    let scaled: Vec<f32> = logits.iter().map(|&x| x / tau).collect();
    softmax(&scaled)
}

/// Numerically stable log-softmax.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
    logits.iter().map(|&x| x - log_sum).collect()
}

/// Shannon entropy (in nats) of a probability vector.
///
/// Zero-probability entries contribute zero, matching the usual convention
/// `0 * ln(0) = 0`. Used to verify the paper's Equation 8 claim that Gumbel logit
/// adjustment increases post-softmax entropy.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Gaussian error linear unit, using the tanh approximation used by GPT-style models.
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// Applies [`gelu`] element-wise to a slice, in place.
pub fn gelu_in_place(xs: &mut [f32]) {
    for x in xs {
        *x = gelu(*x);
    }
}

/// Layer normalisation with learnable gain/bias.
///
/// # Panics
///
/// Panics if `gain` or `bias` length differs from `x`.
pub fn layer_norm(x: &[f32], gain: &[f32], bias: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(x.len(), gain.len(), "gain length must match input");
    assert_eq!(x.len(), bias.len(), "bias length must match input");
    if x.is_empty() {
        return Vec::new();
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let denom = (var + eps).sqrt();
    x.iter()
        .zip(gain.iter().zip(bias.iter()))
        .map(|(&v, (&g, &b))| g * (v - mean) / denom + b)
        .collect()
}

/// [`layer_norm`] writing into a caller-provided buffer.
///
/// `out` is cleared and refilled; with sufficient capacity the call performs no
/// heap allocation. The arithmetic (mean, biased variance, shared denominator,
/// per-element affine) is exactly [`layer_norm`]'s, so the two produce
/// bit-identical results.
///
/// # Panics
///
/// Panics if `gain` or `bias` length differs from `x`.
pub fn layer_norm_into(x: &[f32], gain: &[f32], bias: &[f32], eps: f32, out: &mut Vec<f32>) {
    assert_eq!(x.len(), gain.len(), "gain length must match input");
    assert_eq!(x.len(), bias.len(), "bias length must match input");
    out.clear();
    if x.is_empty() {
        return;
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let denom = (var + eps).sqrt();
    out.extend(
        x.iter()
            .zip(gain.iter().zip(bias.iter()))
            .map(|(&v, (&g, &b))| g * (v - mean) / denom + b),
    );
}

/// [`layer_norm`] writing into a caller-provided slice of exactly the input's
/// length — the variant chunk-batched prefill uses to normalise one row of a
/// flat `chunk x d_model` buffer without touching a `Vec`.
///
/// The arithmetic (mean, biased variance, shared denominator, per-element
/// affine) is exactly [`layer_norm`]'s, so the two produce bit-identical
/// results.
///
/// # Panics
///
/// Panics if `gain`, `bias` or `out` length differs from `x`.
pub fn layer_norm_slice(x: &[f32], gain: &[f32], bias: &[f32], eps: f32, out: &mut [f32]) {
    assert_eq!(x.len(), gain.len(), "gain length must match input");
    assert_eq!(x.len(), bias.len(), "bias length must match input");
    assert_eq!(x.len(), out.len(), "output length must match input");
    if x.is_empty() {
        return;
    }
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let denom = (var + eps).sqrt();
    for (o, (&v, (&g, &b))) in out
        .iter_mut()
        .zip(x.iter().zip(gain.iter().zip(bias.iter())))
    {
        *o = g * (v - mean) / denom + b;
    }
}

/// Row-wise softmax over a matrix of logits.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let probs = softmax(logits.row(r));
        out.row_mut(r).copy_from_slice(&probs);
    }
    out
}

/// Cross-entropy (in nats) of the target index under a logit vector.
///
/// # Panics
///
/// Panics if `target` is out of bounds.
pub fn cross_entropy(logits: &[f32], target: usize) -> f32 {
    assert!(target < logits.len(), "target index out of bounds");
    -log_softmax(logits)[target]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32, tol: f32) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_close(p.iter().sum::<f32>(), 1.0, 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert_close(*x, *y, 1e-5);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[-1.0e30, 0.0]);
        assert_close(p[1], 1.0, 1e-6);
        let masked = softmax(&[f32::NEG_INFINITY, f32::NEG_INFINITY]);
        assert_close(masked[0], 0.5, 1e-6);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn temperature_sharpens_and_flattens() {
        let logits = [1.0, 2.0, 3.0];
        let sharp = softmax_with_temperature(&logits, 0.1);
        let flat = softmax_with_temperature(&logits, 100.0);
        assert!(sharp[2] > 0.99);
        assert!((flat[0] - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn zero_temperature_panics() {
        softmax_with_temperature(&[1.0], 0.0);
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let logits = [0.5, -1.0, 2.0, 0.0];
        let p = softmax(&logits);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert_close(a.ln(), *b, 1e-5);
        }
    }

    #[test]
    fn entropy_of_uniform_is_ln_n() {
        let p = vec![0.25; 4];
        assert_close(entropy(&p), (4.0f32).ln(), 1e-5);
        assert_close(entropy(&[1.0, 0.0]), 0.0, 1e-6);
    }

    #[test]
    fn higher_temperature_increases_entropy() {
        let logits = [3.0, 1.0, 0.2, -1.0];
        let h1 = entropy(&softmax_with_temperature(&logits, 1.0));
        let h2 = entropy(&softmax_with_temperature(&logits, 2.0));
        assert!(h2 > h1);
    }

    #[test]
    fn gelu_known_values() {
        assert_close(gelu(0.0), 0.0, 1e-6);
        assert!(gelu(1.0) > 0.8 && gelu(1.0) < 0.9);
        assert!(gelu(-10.0).abs() < 1e-3);
        let mut xs = [0.0, 1.0];
        gelu_in_place(&mut xs);
        assert_close(xs[1], gelu(1.0), 1e-6);
    }

    #[test]
    fn layer_norm_normalises() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let gain = [1.0; 4];
        let bias = [0.0; 4];
        let y = layer_norm(&x, &gain, &bias, 1e-5);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert_close(mean, 0.0, 1e-5);
        assert_close(var, 1.0, 1e-2);
    }

    #[test]
    fn layer_norm_applies_gain_and_bias() {
        let x = [1.0, 2.0];
        let y = layer_norm(&x, &[2.0, 2.0], &[1.0, 1.0], 1e-5);
        assert_close(y[0] + y[1], 2.0, 1e-4);
    }

    #[test]
    fn softmax_into_is_bit_identical_to_softmax() {
        let cases: &[&[f32]] = &[
            &[1.0, 2.0, 3.0],
            &[-1.0e30, 0.0],
            &[f32::NEG_INFINITY, f32::NEG_INFINITY],
            &[],
            &[0.25, -7.5, 3.125, 3.125, 0.0],
        ];
        let mut out = Vec::new();
        for logits in cases {
            softmax_into(logits, &mut out);
            assert_eq!(out, softmax(logits), "diverged on {logits:?}");
        }
    }

    #[test]
    fn layer_norm_into_is_bit_identical_to_layer_norm() {
        let x = [1.0f32, -2.0, 3.5, 0.125];
        let gain = [2.0f32, 1.0, 0.5, -1.0];
        let bias = [0.1f32, 0.0, -0.5, 1.0];
        let mut out = vec![99.0; 7];
        layer_norm_into(&x, &gain, &bias, 1e-5, &mut out);
        assert_eq!(out, layer_norm(&x, &gain, &bias, 1e-5));
        layer_norm_into(&[], &[], &[], 1e-5, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn layer_norm_slice_is_bit_identical_to_layer_norm() {
        let x = [1.0f32, -2.0, 3.5, 0.125];
        let gain = [2.0f32, 1.0, 0.5, -1.0];
        let bias = [0.1f32, 0.0, -0.5, 1.0];
        let mut out = [99.0; 4];
        layer_norm_slice(&x, &gain, &bias, 1e-5, &mut out);
        assert_eq!(out.to_vec(), layer_norm(&x, &gain, &bias, 1e-5));
        layer_norm_slice(&[], &[], &[], 1e-5, &mut []);
    }

    #[test]
    fn softmax_rows_normalises_each_row() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 10.0]]);
        let p = softmax_rows(&m);
        assert_close(p.row(0).iter().sum::<f32>(), 1.0, 1e-6);
        assert_close(p.row(1).iter().sum::<f32>(), 1.0, 1e-6);
        assert!(p.get(1, 1) > 0.99);
    }

    #[test]
    fn cross_entropy_prefers_correct_target() {
        let logits = [0.0, 5.0, 0.0];
        assert!(cross_entropy(&logits, 1) < cross_entropy(&logits, 0));
    }
}

//! Top-k index selection.
//!
//! Every eviction policy in the reproduction ultimately calls [`top_k_indices`] to
//! pick which token slots survive a cache-reduction step, so the selection semantics
//! (deterministic tie-breaking, NaN handling) are centralised here.

use std::cmp::Ordering;

/// A `(score, index)` pair tracked while scanning for maxima.
///
/// Exposed so that callers who need the winning score alongside the index (e.g. the
/// harness when reporting which token won a slot) can reuse the comparison semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArgMax {
    /// Score of the winning element.
    pub score: f32,
    /// Index of the winning element in the original slice.
    pub index: usize,
}

fn cmp_score(a: f32, b: f32) -> Ordering {
    // NaN scores sort below everything so they are never selected.
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

/// Returns the indices of the `k` largest scores, sorted by ascending index.
///
/// Ties are broken towards the *earlier* index, matching the paper's bias towards
/// initial tokens when scores are equal. If `k >= scores.len()` every index is
/// returned. NaN scores are never selected unless there are not enough finite scores
/// to fill `k` slots.
///
/// ```
/// let idx = keyformer_tensor::top_k_indices(&[0.1, 0.9, 0.5, 0.9], 2);
/// assert_eq!(idx, vec![1, 3]);
/// ```
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    top_k_indices_by(scores, k, |&s| s)
}

/// Like [`top_k_indices`] but extracts the score through a key function, allowing
/// selection over arbitrary per-token records.
pub fn top_k_indices_by<T, F>(items: &[T], k: usize, mut key: F) -> Vec<usize>
where
    F: FnMut(&T) -> f32,
{
    if k == 0 || items.is_empty() {
        return Vec::new();
    }
    let k = k.min(items.len());
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Sort by descending score; ties by ascending index (stable ordering on index).
    order.sort_by(|&a, &b| cmp_score(key(&items[b]), key(&items[a])).then_with(|| a.cmp(&b)));
    let mut selected: Vec<usize> = order.into_iter().take(k).collect();
    selected.sort_unstable();
    selected
}

/// Returns the single best `(score, index)` pair, or `None` for an empty slice.
pub fn arg_max(scores: &[f32]) -> Option<ArgMax> {
    let mut best: Option<ArgMax> = None;
    for (index, &score) in scores.iter().enumerate() {
        if score.is_nan() {
            continue;
        }
        match best {
            Some(b) if cmp_score(score, b.score) != Ordering::Greater => {}
            _ => best = Some(ArgMax { score, index }),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_k() {
        let scores = [0.2, 0.9, 0.1, 0.8, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, 3), vec![1, 3, 4]);
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let scores = [1.0, 2.0];
        assert!(top_k_indices(&scores, 0).is_empty());
        assert_eq!(top_k_indices(&scores, 10), vec![0, 1]);
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn ties_prefer_earlier_index() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn nan_scores_are_avoided() {
        let scores = [f32::NAN, 1.0, f32::NAN, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
    }

    #[test]
    fn output_is_sorted_by_index() {
        let scores = [0.1, 0.9, 0.2, 0.8, 0.3];
        let idx = top_k_indices(&scores, 4);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(idx, sorted);
    }

    #[test]
    fn top_k_by_key_function() {
        #[derive(Debug)]
        struct Tok {
            score: f32,
        }
        let toks = vec![Tok { score: 0.1 }, Tok { score: 0.7 }, Tok { score: 0.3 }];
        assert_eq!(top_k_indices_by(&toks, 2, |t| t.score), vec![1, 2]);
    }

    #[test]
    fn arg_max_behaviour() {
        assert_eq!(arg_max(&[]), None);
        let best = arg_max(&[0.1, 0.9, 0.4]).unwrap();
        assert_eq!(best.index, 1);
        assert!((best.score - 0.9).abs() < 1e-6);
        assert_eq!(arg_max(&[f32::NAN]), None);
    }
}

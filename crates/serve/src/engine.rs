//! The event-driven streaming engine: the continuous-batching scheduler over a
//! paged KV block pool, with per-token events, cancellation, deadlines and
//! priority-aware admission.
//!
//! [`Engine`] owns an admission queue, a shared [`SharedBlockPool`] sized from
//! [`ServerConfig::pool_bytes`], and a set of running [`Session`]s that all
//! decode against one shared [`TransformerModel`] and all allocate their KV
//! blocks from that one pool. Scheduling is iteration-level (Orca-style):
//! every call to [`Engine::step`] is one *batched decode iteration* —
//!
//! 1. **Deadline expiry.** Requests (queued or running) whose
//!    [`SubmitOptions::deadline_steps`] budget has elapsed are retired as
//!    [`FailureReason::DeadlineExceeded`], releasing their blocks and
//!    reservations before any work is spent on them.
//! 2. **Prefill continuation.** In-flight chunked prefills advance by one chunk
//!    each, up to [`ServerConfig::prefills_per_step`] chunk executions per
//!    step. A prefill that a strict pool has starved of blocks pauses
//!    (consuming no budget) and resumes once eviction or retirement frees
//!    blocks.
//! 3. **Admission.** The queued request with the highest *effective priority*
//!    ([`SubmitOptions::priority`] plus one level per
//!    [`PRIORITY_AGING_STEPS`] steps spent queued) is considered first,
//!    tie-broken by the configured [`AdmissionOrder`]; it is admitted while
//!    the pool can *reserve* its steady-state block count. The chosen
//!    candidate blocks the queue when its reservation does not fit — no
//!    lower-priority request may jump it, which keeps admission deterministic
//!    and, together with aging, starvation-free. A request whose reservation
//!    can never fit is retired as [`FailureReason::TooLargeForPool`].
//! 4. **Decode.** Every running session past its prefill advances by exactly
//!    one token, in priority-then-admission order. Finished sessions are
//!    retired into [`Completion`]s; failing sessions are retired into
//!    [`FailedRequest`]s — the scheduler never panics on a bad request.
//!
//! ## Events and handles
//!
//! [`Engine::submit`] returns a [`RequestHandle`], and every observable state
//! transition emits a typed [`Event`]: `Queued`, `PrefillStarted`,
//! `FirstToken`, `Token`, `Preempted`, `Resumed`, `Completed`, `Failed`,
//! `Cancelled`. Events are buffered in submission order and drained either
//! globally ([`Engine::drain_events`]) or per request
//! ([`Engine::drain_events_for`]) — this is what makes the paper's
//! latency-facing quantities (time-to-first-token, inter-token latency)
//! observable *as they happen* instead of retrospectively from
//! [`Engine::completions`]. The buffer grows until drained; a driver that
//! never drains should disable recording with [`Engine::record_events`]
//! (which is exactly what the batch-oriented [`crate::Server`] facade does).
//!
//! A request preempted mid-decode is recomputed token-identically on
//! re-admission; tokens that were already surfaced before the preemption are
//! *not* re-emitted (the stream stays duplicate-free), so each request's event
//! stream carries exactly one `FirstToken` and exactly one terminal event.
//!
//! ## Cancellation
//!
//! [`Engine::cancel`] retires a request *immediately*, wherever it is:
//! in-queue, mid-prefill, mid-decode or preempted-and-requeued. Its admission
//! reservation is returned, its private blocks go back to the pool and its
//! references on shared prefix blocks are dropped the moment the session is
//! released. Prefix blocks the request *registered* during its prefill stay
//! cached in the [`SharedPrefixRegistry`] — they are valid, reusable state
//! pinned by the registry (trimmed by LRU under pressure or
//! [`SharedPrefixRegistry::clear`]), not a per-request leak; with sharing off,
//! cancellation returns the pool exactly to its pre-submit state.
//!
//! The admission *reservation* of a request is its steady-state decode
//! footprint in blocks, exactly as documented on [`crate::Server`]; the
//! engine and the facade share this code path, so batch behaviour is
//! bit-identical between the two.
//!
//! ## Parallel decode (plan → execute → commit)
//!
//! With [`ServerConfig::decode_workers`] above 1, the decode round of each
//! step fans its per-session forward passes out over a scoped worker pool
//! while every *scheduling decision* stays on the calling thread:
//!
//! 1. **Plan** (serial): decide which running sessions take a decode token
//!    this round — a pure read of scheduler state.
//! 2. **Execute** (parallel): run [`Session::step`] for every planned session
//!    on up to `decode_workers` scoped threads. Sessions are mutually
//!    independent here: each owns its policy, RNG and private KV blocks, and
//!    the shared block pool is a mutex-guarded allocator whose *counts* do not
//!    depend on allocation order.
//! 3. **Commit** (serial): replay the results in plan order — surface tokens,
//!    retire completions and failures, return reservations — so the event
//!    stream, completions and stats are byte-identical to `decode_workers =
//!    1`.
//!
//! Copy-on-write forks are safe under this fan-out with no sequential
//! fallback: a writer's fork decision is a single atomic
//! [`SharedBlockPool::fork_block`] probe under the pool lock
//! (probe-allocate-release in one acquisition), so racing writers to the same
//! shared block each fork exactly once, allocation *counts* and the free-list
//! evolution match the sequential engine, and a forker still copying a
//! payload is waited out by the other side rather than raced. Budgeted
//! sessions that still map shared prefix blocks therefore decode in parallel
//! too. The only quantities that may legitimately differ from the sequential
//! engine are the pool's transient high-water marks (`peak_in_use`,
//! `peak_reserved`, `peak_shared_blocks`): parallel execution genuinely holds
//! more blocks at once mid-round. Everything observable at end-of-step —
//! tokens, events, completions, live pool state, allocation totals — is
//! identical, which `tests/parallel_decode_properties.rs` proves across the
//! policy zoo, shared-prefix CoW included.

use crate::request::{Completion, FailedRequest, FailureReason, Request, RequestId, SubmitOptions};
use keyformer_core::block::{
    blocks_for_slots, BlockId, BlockPoolStats, OvercommitPolicy, SharedBlockPool,
};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::prefix::{policy_context, PrefixRegistryStats, SharedPrefixRegistry};
use keyformer_core::spec::PolicySpec;
use keyformer_core::CoreError;
use keyformer_model::model::TransformerModel;
use keyformer_model::session::{Session, SessionStep};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default token slots per block used by the serving layer.
///
/// Smaller than the core default so that admission quantisation stays tight at
/// the pool sizes the experiments use: each sequence wastes at most
/// `block_size - 1` slots per layer to internal fragmentation.
pub const DEFAULT_SERVE_BLOCK_SIZE: usize = 8;

/// Consecutive zero-progress stalled steps after which a starved prefill
/// triggers preemption of the youngest lowest-priority running session
/// (registry pins are reclaimed one step earlier).
const PREEMPT_AFTER_STALLS: usize = 2;

/// Scheduler steps a request must wait in the queue to gain one *effective*
/// priority level. Aging is what makes priority scheduling starvation-free: a
/// steady stream of high-priority arrivals delays low-priority work but an old
/// enough request eventually outranks any fresh submission.
pub const PRIORITY_AGING_STEPS: usize = 16;

/// Prefill-token credit per queued scheduler step under
/// [`AdmissionOrder::ShortestPrefillFirst`]: each step spent waiting shrinks a
/// request's *effective* remaining-prefill key by this many tokens, so a
/// long-prompt request aged `prompt_len` steps competes like a fresh
/// zero-token one and cannot be starved indefinitely by a stream of short
/// prompts (the PR 4 SPF-starvation follow-up).
pub const SPF_AGING_TOKENS_PER_STEP: usize = 1;

/// Mixes a KV storage dtype into a prefix-registry context key. Sessions may
/// only attach to prefix entries published at their own dtype (the cache
/// rejects shared blocks of a foreign dtype), so the dtype must partition the
/// registry namespace exactly as the policy does. [`KvDtype::F32`] maps to 0
/// so the default configuration's context values — and therefore its whole
/// sharing behaviour — are bit-identical to the pre-quantization engine.
fn dtype_context(dtype: KvDtype) -> u64 {
    match dtype {
        KvDtype::F32 => 0,
        KvDtype::U8 => 0x9e37_79b9_7f4a_7c15,
    }
}

/// In which order queued requests are considered for admission (the tie-break
/// *within* an effective-priority level; higher priorities always go first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionOrder {
    /// Strict first-in-first-out (the default): the oldest request of the
    /// highest effective-priority level blocks the queue until its reservation
    /// fits, keeping completion order deterministic and starvation-free.
    #[default]
    Fifo,
    /// Latency-aware: admit the queued request with the fewest prompt tokens
    /// left to prefill — prompt length minus whatever a prefix-cache hit would
    /// reuse, minus [`SPF_AGING_TOKENS_PER_STEP`] per step spent queued — tie-
    /// broken by submission order. Short interactive requests overtake long
    /// ones at admission (running sessions are never reordered); aging bounds
    /// how long a stream of short prompts can delay a long one.
    ShortestPrefillFirst,
}

/// Static configuration of an [`Engine`] (and of the [`crate::Server`]
/// facade over it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Cache policy every admitted session runs (unless a request overrides it).
    pub policy: PolicySpec,
    /// Relative KV budget applied per session (`None` = never evict), unless a
    /// request overrides it.
    pub budget: Option<CacheBudgetSpec>,
    /// KV-byte pool shared by all running sessions; converted to a block pool
    /// of `pool_bytes / (block_size * per-layer slot bytes)` blocks.
    pub pool_bytes: usize,
    /// Hard cap on concurrently running sessions (defaults to unlimited).
    pub max_concurrency: usize,
    /// Prefill work units (whole prompts, or chunks when chunked) executed per
    /// scheduler step (defaults to 1). Zero is rejected by
    /// [`ServerConfig::validate`].
    pub prefills_per_step: usize,
    /// Token slots per block (defaults to [`DEFAULT_SERVE_BLOCK_SIZE`]).
    pub block_size: usize,
    /// Prompt tokens forwarded per prefill work unit. `None` (the default) runs
    /// each prompt one-shot inside its admission step; `Some(n)` spreads it
    /// over `ceil(prompt_len / n)` steps, resumable mid-prompt.
    pub prefill_chunk: Option<usize>,
    /// When `true`, the block pool hard-enforces its capacity: allocations past
    /// it fail and chunked prefills pause instead. Requires `prefill_chunk`.
    pub strict_pool: bool,
    /// When `true`, the engine keeps a [`SharedPrefixRegistry`] over the pool:
    /// prompt blocks are registered as prefills run, admissions attach to the
    /// longest cached prefix of their prompt (skipping those prefill chunks and
    /// reporting [`Completion::prefix_tokens_reused`]), and admission reserves
    /// only the non-shared suffix blocks of unbudgeted requests on
    /// non-strict pools. Defaults to `false`, which reproduces the
    /// sharing-free scheduler bit for bit.
    pub prefix_sharing: bool,
    /// Order in which queued requests are admitted (default FIFO).
    pub admission_order: AdmissionOrder,
    /// Worker threads the decode round fans per-session forward passes over
    /// (default 1 = fully sequential, today's behaviour). Scheduling stays
    /// serialized at any setting, so results are token-identical across
    /// worker counts; see the [module docs](self) for the
    /// plan → execute → commit pipeline. Zero is rejected by
    /// [`ServerConfig::validate`].
    pub decode_workers: usize,
    /// Storage precision of sealed KV blocks (default [`KvDtype::F32`], which
    /// is bit-identical to the pre-quantization engine). The byte pool is
    /// converted to blocks at this dtype, so [`KvDtype::U8`] quadruples the
    /// block capacity of the same `pool_bytes`. Requests may override it per
    /// submission ([`SubmitOptions::with_kv_dtype`]) towards *smaller* bytes
    /// per value only.
    pub kv_dtype: KvDtype,
    /// When `true`, a queued arrival whose block reservation does not fit may
    /// immediately preempt running sessions of *strictly lower* submitted
    /// priority (youngest lowest-priority first, the same victim order as
    /// starved-prefill preemption) instead of waiting for them to retire.
    /// Preempted work is re-queued at the head of the queue and recomputed
    /// token-identically on re-admission, exactly like pressure preemption.
    /// Defaults to `false`, which preserves the wait-for-retirement behaviour
    /// (and the event streams of every existing configuration) bit for bit.
    pub preempt_on_arrival: bool,
}

impl ServerConfig {
    /// A configuration with the given policy, per-session budget and byte pool,
    /// unlimited concurrency, one prefill per step, the default block size and
    /// one-shot prefill.
    pub fn new(policy: PolicySpec, budget: Option<CacheBudgetSpec>, pool_bytes: usize) -> Self {
        ServerConfig {
            policy,
            budget,
            pool_bytes,
            max_concurrency: usize::MAX,
            prefills_per_step: 1,
            block_size: DEFAULT_SERVE_BLOCK_SIZE,
            prefill_chunk: None,
            strict_pool: false,
            prefix_sharing: false,
            admission_order: AdmissionOrder::Fifo,
            decode_workers: 1,
            kv_dtype: KvDtype::F32,
            preempt_on_arrival: false,
        }
    }

    /// Lets high-priority arrivals preempt lower-priority running sessions;
    /// see [`ServerConfig::preempt_on_arrival`].
    pub fn with_preempt_on_arrival(mut self, enabled: bool) -> Self {
        self.preempt_on_arrival = enabled;
        self
    }

    /// Sets the sealed-block storage precision; see [`ServerConfig::kv_dtype`].
    pub fn with_kv_dtype(mut self, dtype: KvDtype) -> Self {
        self.kv_dtype = dtype;
        self
    }

    /// Sets how many worker threads the decode round may use; see
    /// [`ServerConfig::decode_workers`]. Zero is not clamped — it fails
    /// [`ServerConfig::validate`].
    pub fn with_decode_workers(mut self, workers: usize) -> Self {
        self.decode_workers = workers;
        self
    }

    /// The `KF_DECODE_WORKERS` environment override, when set and parsable as
    /// a positive integer. The test suites apply it via
    /// [`ServerConfig::with_decode_workers`] so CI can run the whole property
    /// surface twice — sequential and parallel — without code changes. The
    /// engine itself never reads the environment: configuration stays
    /// explicit.
    pub fn decode_workers_from_env() -> Option<usize> {
        std::env::var("KF_DECODE_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&w| w > 0)
    }

    /// Caps the number of concurrently running sessions.
    pub fn with_max_concurrency(mut self, max: usize) -> Self {
        self.max_concurrency = max.max(1);
        self
    }

    /// Sets how many prefill work units may run per scheduler step. Zero is
    /// not clamped — it fails [`ServerConfig::validate`].
    pub fn with_prefills_per_step(mut self, prefills: usize) -> Self {
        self.prefills_per_step = prefills;
        self
    }

    /// Sets the token slots per block.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Enables chunked prefill at `chunk` prompt tokens per scheduler step.
    pub fn with_prefill_chunk(mut self, chunk: usize) -> Self {
        self.prefill_chunk = Some(chunk);
        self
    }

    /// Switches the pool's capacity discipline; see [`ServerConfig::strict_pool`].
    pub fn with_strict_pool(mut self, strict: bool) -> Self {
        self.strict_pool = strict;
        self
    }

    /// Enables or disables prefix sharing; see [`ServerConfig::prefix_sharing`].
    pub fn with_prefix_sharing(mut self, sharing: bool) -> Self {
        self.prefix_sharing = sharing;
        self
    }

    /// Sets the admission order; see [`AdmissionOrder`].
    pub fn with_admission_order(mut self, order: AdmissionOrder) -> Self {
        self.admission_order = order;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the pool is empty, the block
    /// size or prefill chunk is zero, `prefills_per_step` is zero, a strict
    /// pool lacks chunked prefill, or the policy spec itself does not build.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.pool_bytes == 0 {
            return Err(CoreError::InvalidConfig(
                "serving pool must be at least 1 byte".into(),
            ));
        }
        if self.block_size == 0 {
            return Err(CoreError::InvalidConfig(
                "block size must be at least 1 token slot".into(),
            ));
        }
        if self.prefills_per_step == 0 {
            return Err(CoreError::InvalidConfig(
                "prefills_per_step must be at least 1; a zero-prefill server could never \
                 admit a request"
                    .into(),
            ));
        }
        if self.prefill_chunk == Some(0) {
            return Err(CoreError::InvalidConfig(
                "prefill chunk must be at least 1 token".into(),
            ));
        }
        if self.strict_pool && self.prefill_chunk.is_none() {
            return Err(CoreError::InvalidConfig(
                "a strict pool requires chunked prefill, so prefills pause instead of \
                 failing when the pool runs dry"
                    .into(),
            ));
        }
        if self.decode_workers == 0 {
            return Err(CoreError::InvalidConfig(
                "decode_workers must be at least 1; use 1 for fully sequential decode".into(),
            ));
        }
        self.policy.build().map(|_| ())
    }
}

/// Alias for [`ServerConfig`] under the engine-first API: the engine and the
/// batch facade are configured identically.
pub type EngineConfig = ServerConfig;

/// Opaque handle returned by [`Engine::submit`], naming one in-flight request.
///
/// The handle is a lightweight token (the engine is driven from one thread,
/// so it carries no channel): pass it — or its [`RequestHandle::id`] — back
/// into [`Engine::drain_events_for`] to stream the request's events and into
/// [`Engine::cancel`] to retire it early. To cancel from *another* thread,
/// pair the id with a [`CancelSignal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    id: RequestId,
}

impl RequestHandle {
    /// The id of the request this handle names.
    pub fn id(self) -> RequestId {
        self.id
    }
}

impl std::fmt::Display for RequestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A clonable, thread-safe cancellation mailbox for an [`Engine`].
///
/// [`Engine::cancel`] needs `&mut Engine`, so it can only run between steps
/// on the driving thread. A `CancelSignal` (from [`Engine::cancel_signal`])
/// can be handed to *any* thread — a client timeout task, a worker — and
/// fired at any moment, including while a parallel decode step is executing.
/// The engine drains the mailbox at its two serialization points:
///
/// * at the top of every [`Engine::step`], before deadline expiry, and
/// * between the execute and commit phases of a parallel decode round.
///
/// A cancellation that lands between plan and commit retires the request
/// *before* its freshly computed token is surfaced: the request retires
/// exactly once, its blocks and reservation return to the pool, and no event
/// follows the terminal [`EventKind::Cancelled`]. Signals naming unknown or
/// already-retired requests are ignored, exactly like [`Engine::cancel`]
/// returning `false`.
#[derive(Debug, Clone, Default)]
pub struct CancelSignal {
    inner: Arc<Mutex<Vec<RequestId>>>,
}

impl CancelSignal {
    /// Requests cancellation of `id` at the engine's next serialization
    /// point. Callable from any thread; never blocks on engine work.
    pub fn cancel(&self, id: RequestId) {
        self.inner
            .lock()
            .expect("cancel signal lock poisoned")
            .push(id);
    }

    /// Number of signalled cancellations not yet applied by the engine.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .expect("cancel signal lock poisoned")
            .len()
    }

    /// Takes every signalled id, in signalling order.
    fn take(&self) -> Vec<RequestId> {
        std::mem::take(&mut *self.inner.lock().expect("cancel signal lock poisoned"))
    }
}

/// One observable state transition of one request; see [`EventKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The request this event belongs to.
    pub id: RequestId,
    /// Scheduler step at which the transition happened (0 = before the first
    /// step, e.g. a submission or a cancellation ahead of any stepping).
    pub step: usize,
    /// What happened.
    pub kind: EventKind,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {:>4}  {}: {}", self.step, self.id, self.kind)
    }
}

/// What one [`Event`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The request entered the admission queue ([`Engine::submit`]).
    Queued,
    /// The request was admitted and its prefill started (first admission
    /// only; re-admissions after preemption emit [`EventKind::Resumed`]).
    PrefillStarted,
    /// The first generated token was surfaced. Emitted exactly once per
    /// request, before any [`EventKind::Token`]; its step minus the
    /// submission step is the request's time-to-first-token.
    FirstToken {
        /// The token produced.
        token: u32,
    },
    /// A subsequent generated token was surfaced. Replays after a preemption
    /// recompute are suppressed — each index is emitted at most once.
    Token {
        /// The token produced.
        token: u32,
        /// 0-based index of this token in the request's output.
        index: usize,
    },
    /// The running session was swapped out under pool pressure; its request
    /// went back to the queue head and will re-emit [`EventKind::Resumed`].
    Preempted,
    /// A preempted request was re-admitted and its (token-identical) recompute
    /// started.
    Resumed,
    /// Terminal: the request finished and its [`Completion`] is available.
    Completed {
        /// Number of generated tokens.
        tokens: usize,
    },
    /// Terminal: the request was retired without completing.
    Failed {
        /// Why it was retired.
        reason: FailureReason,
    },
    /// Terminal: the caller cancelled the request ([`Engine::cancel`]).
    Cancelled,
}

impl EventKind {
    /// `true` for the three terminal kinds ([`EventKind::Completed`],
    /// [`EventKind::Failed`], [`EventKind::Cancelled`]); every request's event
    /// stream carries exactly one terminal event, and nothing after it.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Completed { .. } | EventKind::Failed { .. } | EventKind::Cancelled
        )
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Queued => write!(f, "queued"),
            EventKind::PrefillStarted => write!(f, "prefill started"),
            EventKind::FirstToken { token } => write!(f, "first token {token}"),
            EventKind::Token { token, index } => write!(f, "token[{index}] {token}"),
            EventKind::Preempted => write!(f, "preempted"),
            EventKind::Resumed => write!(f, "resumed"),
            EventKind::Completed { tokens } => write!(f, "completed ({tokens} tokens)"),
            EventKind::Failed { reason } => write!(f, "failed: {reason}"),
            EventKind::Cancelled => write!(f, "cancelled"),
        }
    }
}

struct Pending {
    request: Request,
    options: SubmitOptions,
    submitted_step: usize,
    /// `true` when this entry is a preempted request awaiting re-admission
    /// (its re-admission emits [`EventKind::Resumed`]).
    preempted: bool,
    /// Steps at which already-surfaced tokens were emitted, carried across
    /// preemption so the recompute does not re-emit them.
    token_steps: Vec<usize>,
}

struct Running<'m> {
    /// The original request, kept whole so preemption can re-queue it.
    request: Request,
    options: SubmitOptions,
    session: Session<'m>,
    /// Blocks reserved against the pool at admission, returned at retirement.
    reserved_blocks: usize,
    submitted_step: usize,
    admitted_step: usize,
    /// Consecutive steps this session's prefill stalled with zero progress.
    stall_streak: usize,
    /// Scheduler step at which each surfaced token was emitted (survives
    /// preemption via [`Pending::token_steps`]).
    token_steps: Vec<usize>,
}

impl Running<'_> {
    fn id(&self) -> RequestId {
        self.request.id
    }
}

/// Aggregate counters of one engine's lifetime, used by the throughput,
/// paging and latency experiments and the serving bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerStats {
    /// Scheduler steps executed.
    pub steps: usize,
    /// Token-level decode steps executed (sum of batch sizes over steps).
    pub decode_steps: usize,
    /// Prefills completed (one per admitted request, however many chunks).
    pub prefills: usize,
    /// Prefill work units executed (chunk advances; equals `prefills` for
    /// one-shot prefill).
    pub prefill_chunks: usize,
    /// Times a chunked prefill paused because a strict pool had no block.
    pub prefill_stalls: usize,
    /// Sum over steps of the live KV bytes at the end of the step (for means).
    pub live_kv_byte_steps: u64,
    /// Largest live KV byte footprint observed at the end of any step.
    pub peak_live_kv_bytes: usize,
    /// Largest number of concurrently running sessions observed.
    pub peak_concurrency: usize,
    /// Sum over steps of live (occupied) token slots at the end of the step.
    pub live_slot_steps: u64,
    /// Sum over steps of slots covered by allocated blocks at the end of the
    /// step. With `live_slot_steps`, this yields the pool-utilization metric
    /// the paging experiment reports.
    pub allocated_slot_steps: u64,
    /// Running sessions swapped out (blocks released, request re-queued)
    /// because a starved prefill could not otherwise make progress.
    pub preemptions: usize,
    /// Prompt tokens served from shared prefix-cache blocks, summed over
    /// admissions (including re-admissions after preemption).
    pub prefix_tokens_reused: u64,
    /// Requests retired by [`Engine::cancel`].
    pub cancelled: usize,
    /// Requests retired as [`FailureReason::DeadlineExceeded`].
    pub deadline_expired: usize,
}

impl ServerStats {
    /// Mean live KV bytes at the end of a scheduler step.
    pub fn mean_live_kv_bytes(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.live_kv_byte_steps as f64 / self.steps as f64
        }
    }

    /// Mean decode batch size (token steps per scheduler step).
    pub fn mean_batch_size(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.decode_steps as f64 / self.steps as f64
        }
    }

    /// Mean fraction of allocated block slots actually holding live tokens —
    /// 1.0 minus internal fragmentation. Measured at end-of-step, i.e. at
    /// steady state (after evictions and retirements of the step).
    pub fn mean_pool_utilization(&self) -> f64 {
        if self.allocated_slot_steps == 0 {
            0.0
        } else {
            self.live_slot_steps as f64 / self.allocated_slot_steps as f64
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps, {} decode steps (mean batch {:.2}), {} prefills, \
             {} preemptions, {} cancelled, {} expired",
            self.steps,
            self.decode_steps,
            self.mean_batch_size(),
            self.prefills,
            self.preemptions,
            self.cancelled,
            self.deadline_expired
        )
    }
}

/// What one [`Engine::step`] did, with an end-of-step snapshot of the memory
/// state: pool accounting (including shared-block counts), occupancy-level
/// fragmentation, and the prefix registry's counters when sharing is on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// 1-based index of the step this report describes.
    pub step: usize,
    /// Token-level decode steps executed (the old `step()` return value).
    pub decode_steps: usize,
    /// Prefill work units (chunks or whole prompts) executed.
    pub prefill_chunks: usize,
    /// Requests admitted into running sessions.
    pub admitted: usize,
    /// Requests retired into completions.
    pub completed: usize,
    /// Requests retired as failures (including deadline expiries).
    pub failed: usize,
    /// Requests among `failed` that were retired as
    /// [`FailureReason::DeadlineExceeded`] at the top of this step.
    pub expired: usize,
    /// Running sessions swapped out under pool pressure.
    pub preempted: usize,
    /// Live token slots in physical blocks at end of step — shared blocks
    /// counted once, registry-pinned blocks included (see
    /// [`Engine::physical_live_slots`]).
    pub live_slots: usize,
    /// Token slots covered by allocated blocks at end of step.
    pub allocated_slots: usize,
    /// Pool accounting snapshot (in-use/reserved/peaks/churn/shared blocks).
    pub pool: BlockPoolStats,
    /// Prefix-registry counters (`None` unless
    /// [`ServerConfig::prefix_sharing`] is on).
    pub registry: Option<PrefixRegistryStats>,
}

impl StepReport {
    /// Live slots over allocated slots at end of step (1.0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        if self.allocated_slots == 0 {
            1.0
        } else {
            self.live_slots as f64 / self.allocated_slots as f64
        }
    }

    /// Fraction of allocated slots holding no live token — the pool's internal
    /// fragmentation right now.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.utilization()
    }
}

impl std::fmt::Display for StepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: +{} admitted, {} decode steps, {} completed, {} failed \
             ({} expired), {} preempted, utilization {:.2}",
            self.step,
            self.admitted,
            self.decode_steps,
            self.completed,
            self.failed,
            self.expired,
            self.preempted,
            self.utilization()
        )
    }
}

/// An event-driven continuous-batching engine over one shared model and one
/// shared block pool. See the [module docs](self) for the scheduling contract.
pub struct Engine<'m> {
    model: &'m TransformerModel,
    config: ServerConfig,
    bytes_per_token: usize,
    /// Bytes one block (of one layer) occupies.
    bytes_per_block: usize,
    total_blocks: usize,
    num_layers: usize,
    pool: SharedBlockPool,
    /// Prefix registry over `pool` (`Some` iff `config.prefix_sharing`).
    registry: Option<SharedPrefixRegistry>,
    queue: VecDeque<Pending>,
    running: Vec<Running<'m>>,
    completed: Vec<Completion>,
    failed: Vec<FailedRequest>,
    step: usize,
    stats: ServerStats,
    events: VecDeque<Event>,
    record_events: bool,
    /// Cap on *buffered* (undrained) events per request (`None` = unbounded).
    event_buffer_limit: Option<usize>,
    /// Events dropped to the per-request buffer cap, total.
    events_dropped: usize,
    /// Events dropped per request, cumulative over the engine's lifetime.
    events_dropped_by_request: HashMap<RequestId, usize>,
    /// Cross-thread cancellation mailbox; see [`CancelSignal`].
    cancel_signal: CancelSignal,
}

impl<'m> Engine<'m> {
    /// Creates an engine over `model` with the given scheduling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid or
    /// the byte pool is smaller than a single block.
    pub fn new(model: &'m TransformerModel, config: ServerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let cache = model.empty_cache_dtype(config.kv_dtype);
        let bytes_per_token = cache.bytes_per_token();
        let num_layers = cache.num_layers();
        let bytes_per_layer_slot = cache.layer(0).bytes_per_slot();
        let bytes_per_block = config.block_size * bytes_per_layer_slot;
        let total_blocks = config.pool_bytes / bytes_per_block;
        if total_blocks == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "pool of {} bytes is smaller than one {}-slot block ({} bytes)",
                config.pool_bytes, config.block_size, bytes_per_block
            )));
        }
        let overcommit = if config.strict_pool {
            OvercommitPolicy::Strict
        } else {
            OvercommitPolicy::AllowTransient
        };
        let pool = SharedBlockPool::bounded(config.block_size, total_blocks, overcommit)?;
        let registry = config
            .prefix_sharing
            .then(|| SharedPrefixRegistry::new(&pool));
        Ok(Engine {
            model,
            config,
            bytes_per_token,
            bytes_per_block,
            total_blocks,
            num_layers,
            pool,
            registry,
            queue: VecDeque::new(),
            running: Vec::new(),
            completed: Vec::new(),
            failed: Vec::new(),
            step: 0,
            stats: ServerStats::default(),
            events: VecDeque::new(),
            record_events: true,
            event_buffer_limit: None,
            events_dropped: 0,
            events_dropped_by_request: HashMap::new(),
            cancel_signal: CancelSignal::default(),
        })
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Bytes one cached token occupies across the model's layers.
    pub fn bytes_per_token(&self) -> usize {
        self.bytes_per_token
    }

    /// Bytes one block (of one layer) occupies.
    pub fn bytes_per_block(&self) -> usize {
        self.bytes_per_block
    }

    /// The block capacity the byte pool converts to.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// The shared block pool every running session allocates from.
    pub fn pool(&self) -> &SharedBlockPool {
        &self.pool
    }

    /// Snapshot of the pool's allocator accounting.
    pub fn pool_stats(&self) -> BlockPoolStats {
        self.pool.stats()
    }

    /// The prefix registry, when [`ServerConfig::prefix_sharing`] is enabled.
    pub fn prefix_registry(&self) -> Option<&SharedPrefixRegistry> {
        self.registry.as_ref()
    }

    /// The registry's counters, when prefix sharing is enabled.
    pub fn registry_stats(&self) -> Option<PrefixRegistryStats> {
        self.registry.as_ref().map(SharedPrefixRegistry::stats)
    }

    /// Prompt tokens of `request` a prefix-cache attach would reuse right now
    /// (full blocks only, and never the final prompt token). 0 without prefix
    /// sharing.
    pub fn reusable_prefix_tokens(&self, request: &Request) -> usize {
        let Some(registry) = &self.registry else {
            return 0;
        };
        if request.prompt.len() <= 1 {
            return 0;
        }
        let bs = self.config.block_size;
        let cap = (request.prompt.len() - 1) / bs * bs;
        // Matches at the engine's default dtype; a per-submission dtype
        // override lives in `SubmitOptions`, which this request-only probe
        // cannot see. Admission itself mixes the effective dtype in.
        let context = policy_context(&request.effective_policy(self.config.policy))
            ^ dtype_context(self.config.kv_dtype);
        registry.match_tokens(context, &request.prompt[..cap])
    }

    /// Prompt tokens `request` would still have to forward at admission, after
    /// any prefix-cache reuse — the quantity
    /// [`AdmissionOrder::ShortestPrefillFirst`] orders by (before aging).
    pub fn remaining_prefill_tokens(&self, request: &Request) -> usize {
        request.prompt.len() - self.reusable_prefix_tokens(request)
    }

    /// Per-layer steady-state slot count of `request` under its effective
    /// budget: the capacity a running decode settles at after the end-of-prompt
    /// eviction, or the full sequence when unbudgeted.
    fn steady_state_slots(&self, request: &Request) -> usize {
        match request.effective_budget(self.config.budget) {
            Some(spec) => {
                let capacity = spec.for_prompt_len(request.prompt.len()).capacity();
                if self.config.strict_pool {
                    // Each decode step transiently holds capacity + 1 slots
                    // between the append and the eviction; a strict pool must
                    // reserve that slot, an overcommitting pool absorbs it.
                    capacity + 1
                } else {
                    capacity
                }
            }
            // Unbudgeted caches grow to the full sequence (the final generated
            // token is never fed back, hence the saturating decrement).
            None => request.prompt.len() + request.config.max_new_tokens.saturating_sub(1),
        }
    }

    /// Blocks reserved for `request` at admission: its steady-state slots
    /// rounded up to whole blocks, per layer.
    pub fn reserved_blocks_for(&self, request: &Request) -> usize {
        self.num_layers * blocks_for_slots(self.steady_state_slots(request), self.config.block_size)
    }

    /// Worst-case blocks `request` ever holds, including the prefill transient
    /// (the whole prompt is live just before the end-of-prompt eviction).
    pub fn peak_blocks_for(&self, request: &Request) -> usize {
        let peak_slots = self.steady_state_slots(request).max(request.prompt.len());
        self.num_layers * blocks_for_slots(peak_slots, self.config.block_size)
    }

    /// Blocks admission actually reserves for `request`: the steady-state
    /// count, minus — for *unbudgeted* requests on a *non-strict* pool — the
    /// full blocks a prefix-cache attach will serve from shared storage.
    /// Unbudgeted sequences never write into attached blocks (appends only
    /// ever touch blocks past the attached prefix), so those blocks stay
    /// shared for the request's whole life and are already allocated.
    /// Budgeted requests keep their full reservation: the end-of-prompt
    /// eviction compacts *inside* the prefix, CoW-forking it into private
    /// blocks that the reservation must cover. Strict pools also keep the full
    /// reservation, because their no-overshoot guarantee is proven against
    /// reservations covering every private block a session can hold.
    pub fn admission_reservation(&self, request: &Request) -> usize {
        let full = self.reserved_blocks_for(request);
        if self.config.strict_pool || request.effective_budget(self.config.budget).is_some() {
            return full;
        }
        let shared_blocks =
            self.num_layers * (self.reusable_prefix_tokens(request) / self.config.block_size);
        full.saturating_sub(shared_blocks)
    }

    /// Steady-state byte reservation of `request` at block granularity — the
    /// quantity admission holds below the pool.
    pub fn projected_kv_bytes(&self, request: &Request) -> usize {
        self.reserved_blocks_for(request) * self.bytes_per_block
    }

    /// Bytes currently reserved by admitted requests, at block granularity.
    pub fn reserved_bytes(&self) -> usize {
        self.pool.blocks_reserved() * self.bytes_per_block
    }

    /// Actual live KV bytes across running sessions right now.
    pub fn live_kv_bytes(&self) -> usize {
        self.running.iter().map(|r| r.session.cache_bytes()).sum()
    }

    /// Live token slots in *physical* blocks right now: every block counted
    /// once however many sessions map it (CoW sharing would otherwise inflate
    /// a per-session sum past the allocated total), plus the registry's pinned
    /// blocks, which hold a full block of valid cached rows each. This is the
    /// numerator of the pool-utilization metric.
    pub fn physical_live_slots(&self) -> usize {
        let mut seen: std::collections::HashSet<BlockId> = std::collections::HashSet::new();
        let mut live = 0;
        for r in &self.running {
            for layer in r.session.cache().iter() {
                for (id, rows) in layer.block_rows() {
                    if seen.insert(id) {
                        live += rows;
                    }
                }
            }
        }
        if let Some(registry) = &self.registry {
            for id in registry.pinned_block_ids() {
                if seen.insert(id) {
                    live += self.config.block_size;
                }
            }
        }
        live
    }

    /// Number of requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of running sessions.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// `true` once no work remains (queue empty, nothing running).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Scheduler steps executed so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Completed requests, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completed
    }

    /// Requests retired without completing (failures, cancellations and
    /// deadline expiries), in retirement order.
    pub fn failures(&self) -> &[FailedRequest] {
        &self.failed
    }

    /// Enables or disables event recording. Recording is on by default;
    /// turning it off clears the buffer and makes [`Engine::drain_events`]
    /// return nothing — the mode the batch-oriented [`crate::Server`] facade
    /// runs in, so an undrained buffer can never grow without bound.
    pub fn record_events(&mut self, record: bool) {
        self.record_events = record;
        if !record {
            self.events.clear();
        }
    }

    /// `true` while events are being recorded.
    pub fn is_recording_events(&self) -> bool {
        self.record_events
    }

    /// Number of buffered (undrained) events.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Caps how many events may sit *buffered* (undrained) per request
    /// (`None`, the default, is unbounded). When a request's buffer is full,
    /// emitting a new event drops that request's **oldest non-terminal**
    /// buffered event first — a slow or absent reader loses the oldest
    /// tokens, never the terminal — and the drop is counted in
    /// [`Engine::events_dropped`] / [`Engine::events_dropped_for`]. This is
    /// the backpressure story for long-lived streams: without a cap, a
    /// never-drained handle grows the buffer by one event per token forever.
    ///
    /// A cap of 0 is treated as 1: the terminal event is always retained.
    pub fn set_event_buffer_limit(&mut self, limit: Option<usize>) {
        self.event_buffer_limit = limit.map(|cap| cap.max(1));
    }

    /// The per-request buffered-event cap, when one is set.
    pub fn event_buffer_limit(&self) -> Option<usize> {
        self.event_buffer_limit
    }

    /// Events dropped to the per-request buffer cap over the engine's
    /// lifetime (0 unless [`Engine::set_event_buffer_limit`] was used and a
    /// reader fell behind).
    pub fn events_dropped(&self) -> usize {
        self.events_dropped
    }

    /// Events of `id` dropped to the per-request buffer cap, cumulative.
    pub fn events_dropped_for(&self, id: RequestId) -> usize {
        self.events_dropped_by_request
            .get(&id)
            .copied()
            .unwrap_or(0)
    }

    /// A clonable, thread-safe cancellation mailbox for this engine; see
    /// [`CancelSignal`].
    pub fn cancel_signal(&self) -> CancelSignal {
        self.cancel_signal.clone()
    }

    /// Drains every buffered event, in emission order.
    pub fn drain_events(&mut self) -> Vec<Event> {
        self.events.drain(..).collect()
    }

    /// Drains the buffered events of one request (in emission order), leaving
    /// every other request's events in place.
    pub fn drain_events_for(&mut self, id: RequestId) -> Vec<Event> {
        let mut taken = Vec::new();
        self.events.retain(|e| {
            if e.id == id {
                taken.push(e.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    fn emit(&mut self, id: RequestId, kind: EventKind) {
        if !self.record_events {
            return;
        }
        if let Some(cap) = self.event_buffer_limit {
            let buffered = self.events.iter().filter(|e| e.id == id).count();
            if buffered >= cap {
                // Overflow: make room by dropping this request's oldest
                // non-terminal buffered event (terminals are never dropped;
                // at most one exists, so room can always be made).
                if let Some(pos) = self
                    .events
                    .iter()
                    .position(|e| e.id == id && !e.kind.is_terminal())
                {
                    self.events.remove(pos);
                    self.events_dropped += 1;
                    *self.events_dropped_by_request.entry(id).or_insert(0) += 1;
                }
            }
        }
        self.events.push_back(Event {
            id,
            step: self.step,
            kind,
        });
    }

    /// Enqueues a request with default [`SubmitOptions`] (priority 0, no
    /// deadline), validating its per-request overrides.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the request's overrides are
    /// invalid (a policy spec that does not build, or a budget override
    /// combined with `unbudgeted`); the request is not enqueued.
    pub fn submit(&mut self, request: Request) -> Result<RequestHandle, CoreError> {
        self.submit_with(request, SubmitOptions::default())
    }

    /// Enqueues a request with explicit scheduling options and returns its
    /// [`RequestHandle`]. Request ids are caller-chosen and should be unique;
    /// the engine does not deduplicate them ([`Engine::cancel`] and
    /// [`Engine::drain_events_for`] address the oldest match).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the request's overrides are
    /// invalid, or if [`SubmitOptions::kv_dtype`] asks for *more* bytes per
    /// value than the engine's [`ServerConfig::kv_dtype`] — the pool was
    /// sized at the config dtype, so wider requests would silently overcommit
    /// it; the request is not enqueued.
    pub fn submit_with(
        &mut self,
        request: Request,
        options: SubmitOptions,
    ) -> Result<RequestHandle, CoreError> {
        request.overrides.validate()?;
        if let Some(dtype) = options.kv_dtype {
            if dtype.bytes_per_value() > self.config.kv_dtype.bytes_per_value() {
                return Err(CoreError::InvalidConfig(format!(
                    "request kv_dtype {} is wider than the engine pool's {}; \
                     a pool sized for quantized blocks cannot hold wider ones",
                    dtype.label(),
                    self.config.kv_dtype.label()
                )));
            }
        }
        let id = request.id;
        self.queue.push_back(Pending {
            request,
            options,
            submitted_step: self.step,
            preempted: false,
            token_steps: Vec::new(),
        });
        self.emit(id, EventKind::Queued);
        Ok(RequestHandle { id })
    }

    /// Cancels an in-flight request *immediately*, wherever it is: removed
    /// from the queue, or — if running — its session is dropped on the spot,
    /// returning its admission reservation and private blocks to the pool and
    /// releasing its references on shared prefix blocks. The request is
    /// retired as [`FailureReason::Cancelled`] (visible in
    /// [`Engine::failures`]) and its terminal [`EventKind::Cancelled`] event
    /// is emitted.
    ///
    /// Returns `false` when no queued or running request carries `id` (it
    /// already completed, failed, was cancelled, or was never submitted).
    pub fn cancel(&mut self, id: RequestId) -> bool {
        if let Some(pos) = self.queue.iter().position(|p| p.request.id == id) {
            self.queue.remove(pos);
        } else if let Some(pos) = self.running.iter().position(|r| r.id() == id) {
            let running = self.running.remove(pos);
            self.pool.unreserve(running.reserved_blocks);
            // Dropping the session releases its private blocks and its own
            // references on shared prefix blocks.
            drop(running);
        } else {
            return false;
        }
        self.stats.cancelled += 1;
        self.failed.push(FailedRequest {
            id,
            reason: FailureReason::Cancelled,
            step: self.step,
        });
        self.emit(id, EventKind::Cancelled);
        true
    }

    fn fail(&mut self, id: RequestId, reason: FailureReason) {
        self.emit(
            id,
            EventKind::Failed {
                reason: reason.clone(),
            },
        );
        self.failed.push(FailedRequest {
            id,
            reason,
            step: self.step,
        });
    }

    /// `true` when a request submitted at `submitted_step` with `deadline`
    /// has missed it by scheduler step `now`.
    fn deadline_blown(now: usize, submitted_step: usize, deadline: Option<usize>) -> bool {
        deadline.is_some_and(|d| now > submitted_step + d)
    }

    /// Retires every queued or running request whose deadline has elapsed
    /// (submitted more than `deadline_steps` steps ago without completing),
    /// returning how many were expired.
    fn expire_deadlines(&mut self) -> usize {
        let now = self.step;
        let mut blown: Vec<(RequestId, usize)> = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            let p = &self.queue[i];
            if Self::deadline_blown(now, p.submitted_step, p.options.deadline_steps) {
                let p = self.queue.remove(i).expect("index in bounds");
                blown.push((p.request.id, p.options.deadline_steps.expect("blown")));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.running.len() {
            let r = &self.running[i];
            if Self::deadline_blown(now, r.submitted_step, r.options.deadline_steps) {
                let r = self.running.remove(i);
                self.pool.unreserve(r.reserved_blocks);
                blown.push((r.id(), r.options.deadline_steps.expect("blown")));
                // Dropping the session releases its blocks.
            } else {
                i += 1;
            }
        }
        let expired = blown.len();
        for (id, deadline_steps) in blown {
            self.fail(id, FailureReason::DeadlineExceeded { deadline_steps });
        }
        self.stats.deadline_expired += expired;
        expired
    }

    /// Advances every in-flight chunked prefill by one chunk, in
    /// priority-then-admission order, consuming `budget` prefill work units.
    /// Stalled prefills (strict pool out of blocks) consume no budget and stay
    /// resumable.
    fn continue_prefills(&mut self, budget: &mut usize) {
        let mut i = 0;
        while i < self.running.len() && *budget > 0 {
            if !self.running[i].session.is_prefilling() {
                i += 1;
                continue;
            }
            match self.running[i].session.advance_prefill() {
                Ok(progress) => {
                    if progress.stalled {
                        self.stats.prefill_stalls += 1;
                    }
                    if progress.processed > 0 {
                        *budget -= 1;
                        self.stats.prefill_chunks += 1;
                        self.running[i].stall_streak = 0;
                    } else if progress.stalled {
                        self.running[i].stall_streak += 1;
                    }
                    if progress.ready {
                        self.stats.prefills += 1;
                    }
                    i += 1;
                }
                Err(e) => {
                    let running = self.running.remove(i);
                    self.pool.unreserve(running.reserved_blocks);
                    self.fail(running.id(), FailureReason::Engine(e));
                }
            }
        }
    }

    /// `true` while the running session at `idx` could not make prefill
    /// progress — mirroring exactly the reservation-aware pre-flight
    /// [`Session::advance_prefill`] stalls on: the next token's block need
    /// while prompt tokens remain, or the worst-case copy-on-write fork count
    /// once only the end-of-prompt eviction is pending. (Using the wrong
    /// `needed` here would let relief stop while the session's own gate still
    /// fails, stalling it forever.)
    fn prefill_starved(&self, idx: usize) -> bool {
        let r = &self.running[idx];
        let cache = r.session.cache();
        let needed = if r.session.prefill_remaining() == 0 {
            cache.shared_block_count()
        } else {
            cache.blocks_needed_for_next_token()
        };
        if needed == 0 {
            return false;
        }
        !self
            .pool
            .can_allocate_transient(needed, cache.total_blocks(), r.reserved_blocks)
    }

    /// Frees memory for a prefill that is starving on a dry pool: first
    /// reclaims prefix-registry pins (least-recently-used first; attached
    /// sequences keep their own refcounts and are unaffected), and once the
    /// stall has persisted for [`PREEMPT_AFTER_STALLS`] whole steps, swaps out
    /// the *lowest-priority youngest* other running session — its private
    /// blocks return to the pool, its shared blocks stay pinned for whoever
    /// still maps them, and its request goes back to the head of the queue to
    /// be re-admitted later (the resumable-prefill machinery plus prefix
    /// re-attachment make the redo cheap, and per-request seeding makes it
    /// token-identical; already-surfaced tokens are not re-emitted).
    ///
    /// Only sessions at or below the stalled request's priority are eligible
    /// victims: a background prefill must never evict a more urgent session's
    /// blocks (the priority-inversion [`SubmitOptions::priority`] rules out).
    /// If every other session outranks the stalled one, it simply keeps
    /// stalling — resumable as ever — until one of them retires.
    fn relieve_pressure(&mut self) {
        let stalled = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.session.is_prefilling() && r.stall_streak > 0)
            .max_by_key(|(_, r)| r.stall_streak)
            .map(|(i, r)| (i, r.stall_streak));
        let Some((stalled_idx, streak)) = stalled else {
            return;
        };
        while self.prefill_starved(stalled_idx) {
            let evicted = self
                .registry
                .as_ref()
                .is_some_and(SharedPrefixRegistry::evict_lru);
            if !evicted {
                break;
            }
        }
        if streak < PREEMPT_AFTER_STALLS || !self.prefill_starved(stalled_idx) {
            return;
        }
        let stalled_priority = self.running[stalled_idx].options.priority;
        let victim_idx = self
            .running
            .iter()
            .enumerate()
            .filter(|&(i, r)| i != stalled_idx && r.options.priority <= stalled_priority)
            .max_by_key(|&(i, r)| (Reverse(r.options.priority), r.admitted_step, i))
            .map(|(i, _)| i);
        if let Some(idx) = victim_idx {
            self.preempt_running(idx);
        }
    }

    /// Swaps the running session at `idx` out: emits
    /// [`EventKind::Preempted`], returns its reservation to the pool, and
    /// re-queues the request at the head of the queue (flagged `preempted`, so
    /// re-admission emits [`EventKind::Resumed`] and replays of
    /// already-surfaced tokens are suppressed). Dropping the session releases
    /// its private blocks — and its own refs on shared ones.
    fn preempt_running(&mut self, idx: usize) {
        let victim = self.running.remove(idx);
        self.pool.unreserve(victim.reserved_blocks);
        self.emit(victim.id(), EventKind::Preempted);
        self.queue.push_front(Pending {
            submitted_step: victim.submitted_step,
            options: victim.options,
            preempted: true,
            token_steps: victim.token_steps,
            request: victim.request,
        });
        self.stats.preemptions += 1;
    }

    /// The youngest running session of the lowest priority *strictly below*
    /// `priority` — the victim an arriving request may preempt when
    /// [`ServerConfig::preempt_on_arrival`] is on. Strictness is what rules
    /// out livelock between equal-priority requests: an arrival can never
    /// evict a peer, so two same-priority requests cannot take turns swapping
    /// each other out.
    fn arrival_victim(&self, priority: u8) -> Option<usize> {
        self.running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.options.priority < priority)
            .max_by_key(|&(i, r)| (Reverse(r.options.priority), r.admitted_step, i))
            .map(|(i, _)| i)
    }

    /// Effective priority of a queued request: its submitted priority plus one
    /// level per [`PRIORITY_AGING_STEPS`] scheduler steps spent in the queue.
    fn effective_priority(&self, p: &Pending) -> usize {
        p.options.priority as usize + (self.step - p.submitted_step) / PRIORITY_AGING_STEPS
    }

    /// Index of the next queued request to consider for admission: the
    /// highest effective-priority level first, tie-broken by the configured
    /// [`AdmissionOrder`].
    ///
    /// Priority aging mediates *between* submitted priority levels; when every
    /// queued request sits at one level the plain order is already
    /// starvation-free, so the aged scan is skipped entirely — which also
    /// keeps the [`crate::Server`] facade (whose submissions all carry the
    /// default priority) admission-identical to the pre-engine scheduler even
    /// across preemption re-queues and arbitrarily long waits.
    ///
    /// The shortest-prefill-first scan walks the registry chain of every
    /// queued prompt, so it costs O(queue × prompt) hashing per admission —
    /// fine at batch-queue depths; a deeper queue would want the match length
    /// cached on `Pending`.
    fn admission_candidate(&self) -> Option<usize> {
        let first = self.queue.front()?;
        let uniform = self
            .queue
            .iter()
            .all(|p| p.options.priority == first.options.priority);
        // With mixed levels, only requests at the best effective priority are
        // eligible; with one level, everything is.
        let best = if uniform {
            None
        } else {
            self.queue.iter().map(|p| self.effective_priority(p)).max()
        };
        let eligible = |p: &Pending| best.is_none_or(|best| self.effective_priority(p) == best);
        match self.config.admission_order {
            AdmissionOrder::Fifo => self.queue.iter().position(eligible),
            AdmissionOrder::ShortestPrefillFirst => self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, p)| eligible(p))
                .min_by_key(|(i, p)| {
                    let aged = (self.step - p.submitted_step) * SPF_AGING_TOKENS_PER_STEP;
                    (
                        self.remaining_prefill_tokens(&p.request)
                            .saturating_sub(aged),
                        p.submitted_step,
                        *i,
                    )
                })
                .map(|(i, _)| i),
        }
    }

    fn admit(&mut self, budget: &mut usize) -> usize {
        let mut admitted = 0;
        while *budget > 0 && self.running.len() < self.config.max_concurrency {
            if self.config.strict_pool && self.running.iter().any(|r| r.session.is_prefilling()) {
                // Strict pools serialize prefills: concurrent half-done
                // prefills could each hold blocks the others need and stall
                // each other forever. One at a time is deadlock-free, because
                // decoding sessions always retire eventually.
                break;
            }
            let Some(mut candidate) = self.admission_candidate() else {
                break;
            };
            let reserved = self.admission_reservation(&self.queue[candidate].request);
            let peak = self.peak_blocks_for(&self.queue[candidate].request);
            let impossible = reserved > self.total_blocks
                || (self.config.strict_pool && peak > self.total_blocks);
            if impossible {
                // Can never fit, even alone: retire instead of deadlocking the
                // queue behind it.
                let pending = self.queue.remove(candidate).expect("candidate exists");
                let blocks = if self.config.strict_pool {
                    peak
                } else {
                    reserved
                };
                self.fail(
                    pending.request.id,
                    FailureReason::TooLargeForPool {
                        projected_bytes: blocks * self.bytes_per_block,
                        pool_bytes: self.config.pool_bytes,
                    },
                );
                continue;
            }
            if !self.pool.try_reserve(reserved) {
                // On a strict pool the registry's pins hold reservations of
                // their own; peel least-recently-used entries until the
                // candidate fits or the registry is dry.
                let mut fits = false;
                if self.config.strict_pool {
                    while let Some(registry) = &self.registry {
                        if !registry.evict_lru() {
                            break;
                        }
                        if self.pool.try_reserve(reserved) {
                            fits = true;
                            break;
                        }
                    }
                }
                if !fits && self.config.preempt_on_arrival {
                    // Arrival preemption: swap out strictly-lower-priority
                    // running sessions (youngest lowest first) until the
                    // arrival's reservation fits or no eligible victim is
                    // left. Victims re-queue at the head of the queue and
                    // recompute token-identically on re-admission.
                    let arriving = self.queue[candidate].options.priority;
                    while let Some(idx) = self.arrival_victim(arriving) {
                        self.preempt_running(idx);
                        // The victim's push_front shifted every queued index —
                        // the candidate's included — up by one.
                        candidate += 1;
                        if self.pool.try_reserve(reserved) {
                            fits = true;
                            break;
                        }
                    }
                }
                if !fits {
                    // The chosen candidate waits for blocks; nothing else may
                    // jump it (under FIFO that is the oldest highest-priority
                    // request, preserving submission order exactly when
                    // priorities are level).
                    break;
                }
            }
            let pending = self.queue.remove(candidate).expect("candidate exists");
            self.emit(
                pending.request.id,
                if pending.preempted {
                    EventKind::Resumed
                } else {
                    EventKind::PrefillStarted
                },
            );
            let policy_spec = pending.request.effective_policy(self.config.policy);
            let budget_spec = pending.request.effective_budget(self.config.budget);
            let policy = match policy_spec.build() {
                Ok(policy) => policy,
                Err(e) => {
                    // Unreachable after validate()/submit(), but a config error
                    // must not take the server down.
                    self.pool.unreserve(reserved);
                    self.fail(pending.request.id, FailureReason::Engine(e));
                    continue;
                }
            };
            let dtype = pending.options.kv_dtype.unwrap_or(self.config.kv_dtype);
            let mut session =
                Session::with_pool_dtype(self.model, policy, budget_spec, self.pool.clone(), dtype);
            session.set_prefill_chunk(self.config.prefill_chunk);
            session.set_block_reservation(reserved);
            let begun = match &self.registry {
                Some(registry) => {
                    // Prefix entries are only shareable between sessions that
                    // store blocks at the same dtype: mixing the dtype into
                    // the context keys u8 and f32 prefixes apart.
                    session.set_prefix_registry(
                        registry.clone(),
                        policy_context(&policy_spec) ^ dtype_context(dtype),
                    );
                    session
                        .begin_with_prefix(&pending.request.prompt, &pending.request.config)
                        .map(|_| ())
                }
                None => session.begin(&pending.request.prompt, &pending.request.config),
            };
            match begun {
                Ok(()) => {
                    self.stats.prefix_tokens_reused += session.prefix_tokens_reused() as u64;
                    let mut stall_streak = 0;
                    if session.is_prefilling() {
                        // Chunked: the first chunk runs in this step's prefill
                        // budget, right here at admission.
                        match session.advance_prefill() {
                            Ok(progress) => {
                                *budget -= 1;
                                self.stats.prefill_chunks += 1;
                                if progress.stalled {
                                    self.stats.prefill_stalls += 1;
                                    if progress.processed == 0 {
                                        stall_streak = 1;
                                    }
                                }
                                if progress.ready {
                                    self.stats.prefills += 1;
                                }
                            }
                            Err(e) => {
                                self.pool.unreserve(reserved);
                                self.fail(pending.request.id, FailureReason::Engine(e));
                                continue;
                            }
                        }
                    } else {
                        // One-shot: the whole prompt ran inside begin(), so
                        // only a successful begin consumes the prefill slot.
                        *budget -= 1;
                        self.stats.prefills += 1;
                        self.stats.prefill_chunks += 1;
                    }
                    admitted += 1;
                    let running = Running {
                        request: pending.request,
                        options: pending.options,
                        session,
                        reserved_blocks: reserved,
                        submitted_step: pending.submitted_step,
                        admitted_step: self.step,
                        stall_streak,
                        token_steps: pending.token_steps,
                    };
                    // Keep `running` ordered by descending priority (stable in
                    // admission order within a level), so prefill continuation
                    // and the decode round serve urgent sessions first. With
                    // level priorities this is exactly a push to the back.
                    let at = self
                        .running
                        .iter()
                        .rposition(|r| r.options.priority >= running.options.priority)
                        .map_or(0, |p| p + 1);
                    self.running.insert(at, running);
                }
                Err(e) => {
                    self.pool.unreserve(reserved);
                    self.fail(pending.request.id, FailureReason::Engine(e));
                }
            }
        }
        admitted
    }

    /// Surfaces the token `produced` by the running session at `idx`: records
    /// its step and emits [`EventKind::FirstToken`]/[`EventKind::Token`] —
    /// unless the token was already surfaced before a preemption, in which
    /// case the (token-identical) replay is suppressed.
    fn surface_token(&mut self, idx: usize, produced: SessionStep) {
        let already = self.running[idx].token_steps.len();
        if produced.index < already {
            return;
        }
        debug_assert_eq!(
            produced.index, already,
            "decode produced tokens out of order"
        );
        let step = self.step;
        self.running[idx].token_steps.push(step);
        let id = self.running[idx].id();
        let kind = if already == 0 {
            EventKind::FirstToken {
                token: produced.token,
            }
        } else {
            EventKind::Token {
                token: produced.token,
                index: produced.index,
            }
        };
        self.emit(id, kind);
    }

    /// Retires the finished running session at `idx` into a [`Completion`],
    /// returning its reservation (its blocks return when the session drops).
    fn retire_completed(&mut self, idx: usize) {
        let mut done = self.running.remove(idx);
        self.pool.unreserve(done.reserved_blocks);
        let output = done
            .session
            .take_output()
            .expect("finished session has an output");
        let id = done.id();
        self.emit(
            id,
            EventKind::Completed {
                tokens: output.generated.len(),
            },
        );
        // Dropping the session below returns its blocks to the pool.
        self.completed.push(Completion {
            id,
            prefix_tokens_reused: done.session.prefix_tokens_reused(),
            first_token_step: done.token_steps.first().copied(),
            token_steps: std::mem::take(&mut done.token_steps),
            output,
            submitted_step: done.submitted_step,
            admitted_step: done.admitted_step,
            completed_step: self.step,
        });
    }

    /// The sequential decode round: each session steps, surfaces and (when
    /// finished) retires in turn, exactly the `decode_workers = 1` semantics
    /// every parallel round must reproduce observably.
    fn decode_round_sequential(&mut self) -> usize {
        let mut executed = 0;
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].session.is_prefilling() {
                // Mid-prompt: nothing to decode yet.
                i += 1;
                continue;
            }
            if self.running[i].session.is_decoding() {
                match self.running[i].session.step() {
                    Ok(produced) => {
                        executed += 1;
                        self.stats.decode_steps += 1;
                        self.surface_token(i, produced);
                    }
                    Err(e) => {
                        let running = self.running.remove(i);
                        self.pool.unreserve(running.reserved_blocks);
                        self.fail(running.id(), FailureReason::Engine(e));
                        continue;
                    }
                }
            }
            if self.running[i].session.is_decoding() {
                i += 1;
            } else {
                self.retire_completed(i);
            }
        }
        executed
    }

    /// **Plan** phase of a parallel decode round: which running sessions take
    /// a decode token, decided serially before any forward pass runs. A
    /// session mid-prefill (or already drained) is skipped, exactly as in the
    /// sequential round; a session cannot change phase under it because
    /// execution only ever calls [`Session::step`] on planned entries.
    fn plan_decode(&self) -> Vec<bool> {
        self.running
            .iter()
            .map(|r| r.session.is_decoding())
            .collect()
    }

    /// Workers the planned round may actually use: simply the configured
    /// count. Copy-on-write writes need no sequential fallback — the fork
    /// decision is one atomic [`SharedBlockPool::fork_block`] probe under the
    /// pool lock, so sessions that may CoW-fork shared prefix blocks this very
    /// step (budgeted sessions still mapping them) parallelize like everyone
    /// else, with identical aggregate allocation counts.
    fn decode_parallelism(&self, plan: &[bool]) -> usize {
        let workers = self.config.decode_workers;
        if workers <= 1 || plan.is_empty() {
            return 1;
        }
        workers
    }

    /// **Execute** phase: runs [`Session::step`] for every planned session on
    /// up to `workers` scoped threads, returning one result slot per running
    /// session (`None` for unplanned entries). Threads pull jobs off a shared
    /// cursor — work-stealing over a mutex-per-job, no unsafe — and nothing
    /// here touches scheduler state: sessions only race on the block pool's
    /// internal mutex, whose counts are allocation-order-independent.
    #[allow(clippy::type_complexity)]
    fn execute_decode(
        &mut self,
        plan: &[bool],
        workers: usize,
    ) -> Vec<Option<Result<SessionStep, CoreError>>> {
        struct Job<'a, 'm> {
            slot: usize,
            session: &'a mut Session<'m>,
            result: Option<Result<SessionStep, CoreError>>,
        }
        let mut results: Vec<Option<Result<SessionStep, CoreError>>> =
            plan.iter().map(|_| None).collect();
        let jobs: Vec<Mutex<Job<'_, 'm>>> = self
            .running
            .iter_mut()
            .enumerate()
            .filter(|&(i, _)| plan[i])
            .map(|(i, r)| {
                Mutex::new(Job {
                    slot: i,
                    session: &mut r.session,
                    result: None,
                })
            })
            .collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers.min(jobs.len()) {
                scope.spawn(|| loop {
                    let next = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(next) else { break };
                    let mut job = job.lock().expect("decode job lock poisoned");
                    let result = job.session.step();
                    job.result = Some(result);
                });
            }
        });
        for job in jobs {
            let job = job.into_inner().expect("decode job lock poisoned");
            results[job.slot] = job.result;
        }
        results
    }

    /// **Commit** phase: replays the executed results in plan order —
    /// surfacing tokens, retiring completions and failures — so events and
    /// retirement order are byte-identical to the sequential round. `doomed`
    /// carries cancellations signalled between plan and commit: such a
    /// request retires as [`EventKind::Cancelled`] *before* its freshly
    /// computed token would surface (the result is discarded and not counted
    /// as a decode step), its blocks and reservation return, and nothing
    /// follows the terminal event.
    fn commit_decode(
        &mut self,
        results: Vec<Option<Result<SessionStep, CoreError>>>,
        doomed: &[RequestId],
    ) -> usize {
        let mut executed = 0;
        let mut handled: Vec<RequestId> = Vec::new();
        let mut i = 0;
        for result in results {
            let Some(result) = result else {
                i += 1;
                continue;
            };
            let id = self.running[i].id();
            if doomed.contains(&id) && !handled.contains(&id) {
                let running = self.running.remove(i);
                self.pool.unreserve(running.reserved_blocks);
                // Dropping the session releases its blocks; the computed
                // token is discarded unsurfaced.
                drop(running);
                self.stats.cancelled += 1;
                self.failed.push(FailedRequest {
                    id,
                    reason: FailureReason::Cancelled,
                    step: self.step,
                });
                self.emit(id, EventKind::Cancelled);
                handled.push(id);
                continue;
            }
            match result {
                Ok(produced) => {
                    executed += 1;
                    self.stats.decode_steps += 1;
                    self.surface_token(i, produced);
                    if self.running[i].session.is_decoding() {
                        i += 1;
                    } else {
                        self.retire_completed(i);
                    }
                }
                Err(e) => {
                    let running = self.running.remove(i);
                    self.pool.unreserve(running.reserved_blocks);
                    self.fail(running.id(), FailureReason::Engine(e));
                }
            }
        }
        // Signalled ids not caught mid-round (queued, prefilling, or already
        // past this round's plan) cancel through the ordinary path.
        for &id in doomed {
            if !handled.contains(&id) && self.cancel(id) {
                handled.push(id);
            }
        }
        executed
    }

    /// One decode round: sequential when `decode_workers` is 1, otherwise
    /// plan → parallel-execute → serialized-commit. Both paths drain
    /// [`CancelSignal`] mailbox entries at their serialization points.
    fn decode_round(&mut self) -> usize {
        let plan = self.plan_decode();
        let workers = self.decode_parallelism(&plan);
        if workers <= 1 {
            let executed = self.decode_round_sequential();
            for id in self.cancel_signal.take() {
                self.cancel(id);
            }
            return executed;
        }
        let results = self.execute_decode(&plan, workers);
        let doomed = self.cancel_signal.take();
        self.commit_decode(results, &doomed)
    }

    /// Runs one batched scheduler step — deadline expiry, prefill
    /// continuation, pressure relief (registry trim / preemption), admission,
    /// and one decode token for every running session past its prefill — and
    /// reports what happened plus an end-of-step memory snapshot. Events for
    /// every transition are buffered for [`Engine::drain_events`].
    pub fn step(&mut self) -> StepReport {
        self.step += 1;
        // Cancellations signalled since the last serialization point apply
        // before any scheduling work (the other drain point sits between a
        // parallel round's execute and commit phases).
        for id in self.cancel_signal.take() {
            self.cancel(id);
        }
        let completed_before = self.completed.len();
        let failed_before = self.failed.len();
        let preempted_before = self.stats.preemptions;
        let chunks_before = self.stats.prefill_chunks;
        let expired = self.expire_deadlines();
        let mut prefill_budget = self.config.prefills_per_step;
        self.continue_prefills(&mut prefill_budget);
        self.relieve_pressure();
        let admitted = self.admit(&mut prefill_budget);
        let executed = self.decode_round();
        self.stats.steps += 1;
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(self.running.len());
        let live = self.live_kv_bytes();
        self.stats.live_kv_byte_steps += live as u64;
        self.stats.peak_live_kv_bytes = self.stats.peak_live_kv_bytes.max(live);
        let live_slots = self.physical_live_slots();
        let allocated_slots = self.pool.blocks_in_use() * self.config.block_size;
        self.stats.live_slot_steps += live_slots as u64;
        self.stats.allocated_slot_steps += allocated_slots as u64;
        StepReport {
            step: self.step,
            decode_steps: executed,
            prefill_chunks: self.stats.prefill_chunks - chunks_before,
            admitted,
            completed: self.completed.len() - completed_before,
            failed: self.failed.len() - failed_before,
            expired,
            preempted: self.stats.preemptions - preempted_before,
            live_slots,
            allocated_slots,
            pool: self.pool.stats(),
            registry: self.registry_stats(),
        }
    }

    /// Runs up to `max_steps` scheduler steps, stopping early once idle.
    /// Returns the number of steps actually executed.
    pub fn run(&mut self, max_steps: usize) -> usize {
        let mut executed = 0;
        while executed < max_steps && !self.is_idle() {
            self.step();
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_model::engine::InferenceEngine;
    use keyformer_model::families::ModelFamily;
    use keyformer_model::generation::GenerationConfig;

    fn prompt(len: usize, salt: u32) -> Vec<u32> {
        (0..len)
            .map(|i| (i as u32 * 13 + 5 + salt * 17) % 120)
            .collect()
    }

    fn keyformer_engine(model: &TransformerModel, pool_tokens: usize) -> Engine<'_> {
        let bytes = model.empty_cache().bytes_per_token();
        Engine::new(
            model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool_tokens * bytes,
            )
            .with_block_size(4),
        )
        .unwrap()
    }

    /// Splits a request's events into (pre-terminal, terminal) and asserts
    /// stream well-formedness: Queued first, exactly one terminal event and
    /// nothing after it, FirstToken before any Token, token indices 1, 2, ...
    fn check_well_formed(events: &[Event]) -> &Event {
        assert!(!events.is_empty(), "request has no events");
        assert_eq!(events[0].kind, EventKind::Queued, "{events:?}");
        let terminals: Vec<usize> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind.is_terminal())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(terminals.len(), 1, "exactly one terminal: {events:?}");
        assert_eq!(terminals[0], events.len() - 1, "terminal last: {events:?}");
        let mut first_token_seen = false;
        let mut next_index = 1;
        for e in events {
            match &e.kind {
                EventKind::FirstToken { .. } => {
                    assert!(!first_token_seen, "duplicate FirstToken: {events:?}");
                    first_token_seen = true;
                }
                EventKind::Token { index, .. } => {
                    assert!(first_token_seen, "Token before FirstToken: {events:?}");
                    assert_eq!(*index, next_index, "{events:?}");
                    next_index += 1;
                }
                _ => {}
            }
        }
        events.last().unwrap()
    }

    /// The tokens a request's event stream surfaced, in order.
    fn streamed_tokens(events: &[Event]) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::FirstToken { token } => Some(token),
                EventKind::Token { token, .. } => Some(token),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn events_stream_per_token_and_match_the_completion() {
        let model = ModelFamily::Tiny.build(21);
        let mut engine = keyformer_engine(&model, 256);
        let config = GenerationConfig::new(5);
        let handle = engine
            .submit(Request::new(7, prompt(20, 0), config))
            .unwrap();
        assert_eq!(handle.id().raw(), 7);
        engine.run(64);
        assert!(engine.is_idle());
        let events = engine.drain_events_for(handle.id());
        let terminal = check_well_formed(&events);
        assert_eq!(terminal.kind, EventKind::Completed { tokens: 5 });
        assert!(
            events.iter().any(|e| e.kind == EventKind::PrefillStarted),
            "{events:?}"
        );
        let completion = engine.completions()[0].clone();
        assert_eq!(streamed_tokens(&events), completion.output.generated);
        // Latency accounting is consistent between events and the completion.
        assert_eq!(completion.token_steps.len(), 5);
        let first_event_step = events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::FirstToken { .. } => Some(e.step),
                _ => None,
            })
            .unwrap();
        assert_eq!(completion.first_token_step, Some(first_event_step));
        assert!(completion.ttft_steps().unwrap() >= 1);
        assert!(completion.token_steps.windows(2).all(|w| w[0] < w[1]));
        // Everything drained; nothing left globally.
        assert_eq!(engine.pending_events(), 0);
        assert!(engine.drain_events().is_empty());
        // Solo run matches the streamed tokens bit for bit.
        let mut solo = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        assert_eq!(completion.output, solo.generate(&prompt(20, 0), &config));
    }

    #[test]
    fn global_drain_interleaves_requests_in_emission_order() {
        let model = ModelFamily::Tiny.build(22);
        let mut engine = keyformer_engine(&model, 256);
        for i in 0..3 {
            engine
                .submit(Request::new(
                    i,
                    prompt(16, i as u32),
                    GenerationConfig::new(3),
                ))
                .unwrap();
        }
        engine.run(64);
        let all = engine.drain_events();
        assert_eq!(engine.pending_events(), 0);
        for id in 0..3u64 {
            let per: Vec<Event> = all.iter().filter(|e| e.id.raw() == id).cloned().collect();
            check_well_formed(&per);
        }
        // Steps are non-decreasing across the global stream.
        assert!(all.windows(2).all(|w| w[0].step <= w[1].step));
    }

    #[test]
    fn cancel_works_in_queue_mid_prefill_and_mid_decode() {
        let model = ModelFamily::Tiny.build(23);
        let bytes = model.empty_cache().bytes_per_token();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                256 * bytes,
            )
            .with_block_size(4)
            .with_prefill_chunk(6),
        )
        .unwrap();
        // In-queue: cancelled before any step ran.
        let queued = engine
            .submit(Request::new(0, prompt(20, 0), GenerationConfig::new(4)))
            .unwrap();
        assert!(engine.cancel(queued.id()));
        assert!(!engine.cancel(queued.id()), "already retired");
        assert!(engine.is_idle());
        // Mid-prefill: one step into a 20-token prompt at 6 tokens per chunk.
        let prefilling = engine
            .submit(Request::new(1, prompt(20, 1), GenerationConfig::new(4)))
            .unwrap();
        engine.step();
        assert_eq!(engine.running(), 1);
        assert!(engine.pool().blocks_in_use() > 0);
        assert!(engine.cancel(prefilling.id()));
        assert_eq!(engine.pool().blocks_in_use(), 0, "prefill blocks leaked");
        assert_eq!(engine.pool().blocks_reserved(), 0, "reservation leaked");
        // Mid-decode: cancel after the second token streamed.
        let decoding = engine
            .submit(Request::new(2, prompt(20, 2), GenerationConfig::new(8)))
            .unwrap();
        let mut tokens_seen = 0;
        for _ in 0..64 {
            engine.step();
            tokens_seen += engine
                .drain_events_for(decoding.id())
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        EventKind::FirstToken { .. } | EventKind::Token { .. }
                    )
                })
                .count();
            if tokens_seen >= 2 {
                break;
            }
        }
        assert!(tokens_seen >= 2, "decode never surfaced two tokens");
        assert!(engine.cancel(decoding.id()));
        assert!(engine.is_idle());
        assert_eq!(engine.pool().blocks_in_use(), 0, "decode blocks leaked");
        assert_eq!(engine.pool().blocks_reserved(), 0);
        // All three retired as Cancelled, visible in failures().
        assert_eq!(engine.failures().len(), 3);
        assert!(engine
            .failures()
            .iter()
            .all(|f| matches!(f.reason, FailureReason::Cancelled)));
        assert_eq!(engine.stats().cancelled, 3);
        // Each cancelled stream ends in the Cancelled terminal.
        for id in [queued.id(), decoding.id()] {
            let events = engine.drain_events_for(id);
            assert_eq!(events.last().unwrap().kind, EventKind::Cancelled);
        }
        assert!(!engine.cancel(RequestId::new(99)), "unknown id");
    }

    #[test]
    fn deadlines_expire_queued_and_running_requests() {
        let model = ModelFamily::Tiny.build(24);
        // Pool fits one request at a time, so the second queues behind the
        // first's long decode and blows its deadline in the queue.
        let mut engine = keyformer_engine(&model, 12);
        let hog = engine
            .submit(Request::new(0, prompt(20, 0), GenerationConfig::new(12)))
            .unwrap();
        let starved = engine
            .submit_with(
                Request::new(1, prompt(20, 1), GenerationConfig::new(2)),
                SubmitOptions::new().with_deadline_steps(3),
            )
            .unwrap();
        engine.run(64);
        assert!(engine.is_idle());
        assert_eq!(engine.completions().len(), 1);
        assert_eq!(engine.completions()[0].id, hog.id());
        assert_eq!(engine.failures().len(), 1);
        assert_eq!(engine.failures()[0].id, starved.id());
        assert!(matches!(
            engine.failures()[0].reason,
            FailureReason::DeadlineExceeded { deadline_steps: 3 }
        ));
        // The failure step is the first step past the deadline.
        assert_eq!(engine.failures()[0].step, 4);
        let events = engine.drain_events_for(starved.id());
        assert!(matches!(
            events.last().unwrap().kind,
            EventKind::Failed {
                reason: FailureReason::DeadlineExceeded { .. }
            }
        ));
        assert_eq!(engine.stats().deadline_expired, 1);
        assert_eq!(engine.pool().blocks_reserved(), 0);

        // A *running* request is expired mid-decode too, releasing its blocks.
        let mut engine = keyformer_engine(&model, 64);
        engine
            .submit_with(
                Request::new(2, prompt(20, 2), GenerationConfig::new(30)),
                SubmitOptions::new().with_deadline_steps(4),
            )
            .unwrap();
        let mut expired_total = 0;
        for _ in 0..16 {
            let report = engine.step();
            expired_total += report.expired;
            if engine.is_idle() {
                break;
            }
        }
        assert_eq!(expired_total, 1);
        assert!(engine.is_idle());
        assert_eq!(engine.completions().len(), 0);
        assert!(matches!(
            engine.failures()[0].reason,
            FailureReason::DeadlineExceeded { deadline_steps: 4 }
        ));
        assert_eq!(engine.pool().blocks_in_use(), 0, "expired decode leaked");
        assert_eq!(engine.pool().blocks_reserved(), 0);
    }

    #[test]
    fn higher_priority_jumps_the_admission_queue() {
        let model = ModelFamily::Tiny.build(25);
        // Pool fits one request at a time, so admission order == completion
        // order.
        let mut engine = keyformer_engine(&model, 12);
        engine
            .submit(Request::new(0, prompt(20, 0), GenerationConfig::new(2)))
            .unwrap();
        engine
            .submit(Request::new(1, prompt(20, 1), GenerationConfig::new(2)))
            .unwrap();
        engine
            .submit_with(
                Request::new(2, prompt(20, 2), GenerationConfig::new(2)),
                SubmitOptions::new().with_priority(5),
            )
            .unwrap();
        engine.run(256);
        assert!(engine.is_idle());
        let ids: Vec<u64> = engine.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![2, 0, 1], "priority 5 overtakes both normals");
        // Outputs are still bit-identical to solo runs — priority only
        // reorders, it never perturbs decoding.
        for c in engine.completions() {
            let mut solo = InferenceEngine::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            );
            let alone = solo
                .try_generate(&prompt(20, c.id.raw() as u32), &GenerationConfig::new(2))
                .unwrap();
            assert_eq!(c.output, alone, "request {}", c.id);
        }
    }

    #[test]
    fn aging_rescues_low_priority_work_from_a_high_priority_stream() {
        let model = ModelFamily::Tiny.build(26);
        // Pool fits one request at a time. A steady stream of fresh
        // priority-1 arrivals would starve a priority-0 request forever
        // without aging; with one level gained per PRIORITY_AGING_STEPS
        // queued steps the old request eventually outranks every fresh one.
        let mut engine = keyformer_engine(&model, 12);
        let low = engine
            .submit(Request::new(0, prompt(20, 0), GenerationConfig::new(2)))
            .unwrap();
        let mut next_id = 1;
        let mut low_completed_at = None;
        for step in 0..400 {
            // Two fresh high-priority arrivals per admission opportunity.
            if step % 2 == 0 {
                engine
                    .submit_with(
                        Request::new(
                            next_id,
                            prompt(20, next_id as u32),
                            GenerationConfig::new(2),
                        ),
                        SubmitOptions::new().with_priority(1),
                    )
                    .unwrap();
                next_id += 1;
            }
            engine.step();
            engine.drain_events();
            if low_completed_at.is_none() && engine.completions().iter().any(|c| c.id == low.id()) {
                low_completed_at = Some(engine.steps());
                break;
            }
        }
        let completed_at = low_completed_at.expect("aging failed: low-priority request starved");
        assert!(
            completed_at > PRIORITY_AGING_STEPS,
            "the stream must actually have delayed the low-priority request \
             (completed at step {completed_at})"
        );
        // High-priority requests genuinely overtook it first.
        let position = engine
            .completions()
            .iter()
            .position(|c| c.id == low.id())
            .unwrap();
        assert!(position > 0, "nothing overtook the low-priority request");
    }

    #[test]
    fn spf_aging_admits_a_long_prefill_despite_a_stream_of_short_ones() {
        let model = ModelFamily::Tiny.build(27);
        let bytes = model.empty_cache().bytes_per_token();
        // Pool fits one request at a time under SPF: a 24-token prompt
        // competes with fresh 8-token prompts arriving every other step. Its
        // effective key shrinks by SPF_AGING_TOKENS_PER_STEP per queued step,
        // so it must be admitted once its aged key undercuts a fresh short's.
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                12 * bytes,
            )
            .with_block_size(4)
            .with_admission_order(AdmissionOrder::ShortestPrefillFirst),
        )
        .unwrap();
        let long = engine
            .submit(Request::new(0, prompt(24, 0), GenerationConfig::new(2)))
            .unwrap();
        let mut next_id = 1;
        let mut long_completed_at = None;
        for step in 0..300 {
            if step % 2 == 0 {
                engine
                    .submit(Request::new(
                        next_id,
                        prompt(8, next_id as u32),
                        GenerationConfig::new(2),
                    ))
                    .unwrap();
                next_id += 1;
            }
            engine.step();
            engine.drain_events();
            if long_completed_at.is_none() && engine.completions().iter().any(|c| c.id == long.id())
            {
                long_completed_at = Some(engine.steps());
                break;
            }
        }
        let completed_at =
            long_completed_at.expect("SPF aging failed: long-prefill request starved");
        // Shorts overtook it first (SPF at work), but it was not starved.
        let position = engine
            .completions()
            .iter()
            .position(|c| c.id == long.id())
            .unwrap();
        assert!(position > 0, "no short overtook the long prompt");
        assert!(
            completed_at >= 16,
            "aging should take effect only after real queueing delay \
             (completed at {completed_at})"
        );
    }

    #[test]
    fn preemption_streams_resume_without_duplicate_tokens() {
        let model = ModelFamily::Tiny.build(17);
        let bytes = model.empty_cache().bytes_per_token();
        // The dry-strict-pool preemption scenario from the facade tests, with
        // events on: the long decoder is preempted mid-decode and recomputed.
        let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(PolicySpec::keyformer_default(), Some(budget), 28 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(4)
                .with_strict_pool(true),
        )
        .unwrap();
        engine
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(24)))
            .unwrap();
        engine
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        for _ in 0..2_000 {
            if engine.is_idle() {
                break;
            }
            engine.step();
        }
        assert!(engine.is_idle());
        assert_eq!(engine.completions().len(), 2);
        assert!(engine.stats().preemptions > 0, "no preemption exercised");
        let all = engine.drain_events();
        let preempted_id = all
            .iter()
            .find(|e| e.kind == EventKind::Preempted)
            .expect("a Preempted event exists")
            .id;
        let events: Vec<Event> = all
            .iter()
            .filter(|e| e.id == preempted_id)
            .cloned()
            .collect();
        let terminal = check_well_formed(&events);
        assert!(matches!(terminal.kind, EventKind::Completed { .. }));
        assert!(
            events.iter().any(|e| e.kind == EventKind::Resumed),
            "preempted request must resume: {events:?}"
        );
        // The streamed tokens match the completion exactly — no replays.
        let completion = engine
            .completions()
            .iter()
            .find(|c| c.id == preempted_id)
            .unwrap();
        assert_eq!(streamed_tokens(&events), completion.output.generated);
        assert!(completion.token_steps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn preemption_never_evicts_a_higher_priority_session() {
        let model = ModelFamily::Tiny.build(17);
        let bytes = model.empty_cache().bytes_per_token();
        // Same dry-strict-pool scenario as the preemption tests, but the
        // long decoder is submitted at priority 5: the stalled priority-0
        // prefill must NOT evict it (priority inversion) — it waits, resumes
        // once the decoder retires, and both still complete.
        let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(PolicySpec::keyformer_default(), Some(budget), 28 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(4)
                .with_strict_pool(true),
        )
        .unwrap();
        engine
            .submit_with(
                Request::new(0, prompt(16, 0), GenerationConfig::new(24)),
                SubmitOptions::new().with_priority(5),
            )
            .unwrap();
        engine
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        for _ in 0..2_000 {
            if engine.is_idle() {
                break;
            }
            engine.step();
            engine.drain_events();
        }
        assert!(engine.is_idle(), "scheduler failed to drain");
        assert_eq!(engine.completions().len(), 2, "{:?}", engine.failures());
        assert_eq!(
            engine.stats().preemptions,
            0,
            "a low-priority prefill evicted a higher-priority session"
        );
        assert!(
            engine.stats().prefill_stalls > 0,
            "the prefill must genuinely have waited on the dry pool"
        );
        // The urgent request finished first, undisturbed.
        assert_eq!(engine.completions()[0].id.raw(), 0);
    }

    #[test]
    fn decode_workers_zero_is_rejected_and_defaults_to_sequential() {
        let model = ModelFamily::Tiny.build(29);
        let bytes = model.empty_cache().bytes_per_token();
        let config = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            64 * bytes,
        )
        .with_decode_workers(0);
        assert!(Engine::new(&model, config).is_err());
        let default = ServerConfig::new(PolicySpec::keyformer_default(), None, 64 * bytes);
        assert_eq!(default.decode_workers, 1);
    }

    #[test]
    fn parallel_engine_matches_sequential_token_for_token() {
        let model = ModelFamily::Tiny.build(41);
        let bytes = model.empty_cache().bytes_per_token();
        let base = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            256 * bytes,
        )
        .with_block_size(4)
        .with_prefill_chunk(5);
        let run = |workers: usize| {
            let mut engine = Engine::new(&model, base.with_decode_workers(workers)).unwrap();
            for i in 0..4u64 {
                engine
                    .submit(Request::new(
                        i,
                        prompt(18, i as u32),
                        GenerationConfig::new(6),
                    ))
                    .unwrap();
            }
            engine.run(10_000);
            assert!(engine.is_idle());
            (
                engine.completions().to_vec(),
                engine.drain_events(),
                *engine.stats(),
                engine.pool_stats(),
            )
        };
        let (seq_done, seq_events, seq_stats, seq_pool) = run(1);
        for workers in [2, 4, 8] {
            let (done, events, stats, pool) = run(workers);
            assert_eq!(done, seq_done, "{workers} workers: completions diverged");
            assert_eq!(events, seq_events, "{workers} workers: events diverged");
            assert_eq!(stats, seq_stats, "{workers} workers: stats diverged");
            // Live allocator state and churn totals are deterministic; only
            // the transient high-water marks may differ under parallelism.
            assert_eq!(pool.in_use, seq_pool.in_use);
            assert_eq!(pool.reserved, seq_pool.reserved);
            assert_eq!(pool.total_allocs, seq_pool.total_allocs);
            assert_eq!(pool.total_frees, seq_pool.total_frees);
        }
    }

    /// The PR 6 worker pool fell back to sequential decode whenever a
    /// budgeted session still mapped shared blocks. The pool-level atomic
    /// fork probe (`BlockPool::fork_block`) removed that fallback: the round
    /// fans out even while the plan contains budgeted sessions whose prefix
    /// blocks are still shared, and the round's own evictions CoW-fork those
    /// blocks under the fanned-out workers.
    #[test]
    fn budgeted_sessions_still_sharing_blocks_decode_in_parallel() {
        let model = ModelFamily::Tiny.build(46);
        let bytes = model.empty_cache().bytes_per_token();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                // Budget exactly the prompt: the sessions enter their first
                // decode round before any eviction, so every prefix block is
                // still shared when the round fans out.
                Some(CacheBudgetSpec::with_fraction(1.0).unwrap()),
                256 * bytes,
            )
            .with_block_size(4)
            .with_prefix_sharing(true)
            .with_decode_workers(4),
        )
        .unwrap();
        let shared = prompt(16, 9);
        engine
            .submit(Request::new(0, shared.clone(), GenerationConfig::new(8)))
            .unwrap();
        engine
            .submit(Request::new(1, shared, GenerationConfig::new(8)))
            .unwrap();
        engine.step();
        engine.step();
        assert_eq!(engine.running(), 2);
        assert!(
            engine.stats().prefix_tokens_reused > 0,
            "second request attached to the shared prefix"
        );
        assert!(
            engine.pool_stats().shared_blocks > 0,
            "prefix blocks still shared entering the decode round"
        );

        engine.step += 1;
        let plan = engine.plan_decode();
        assert_eq!(plan, vec![true, true]);
        assert_eq!(
            engine.decode_parallelism(&plan),
            4,
            "budgeted-but-shared sessions must not force a sequential fallback"
        );
        let results = engine.execute_decode(&plan, 4);
        assert!(results.iter().all(|r| matches!(r, Some(Ok(_)))));
        let taken = engine.cancel_signal.take();
        engine.commit_decode(results, &taken);

        engine.run(10_000);
        assert!(engine.is_idle());
        assert_eq!(engine.completions().len(), 2);
    }

    /// The cancel-races-parallel-step contract, deterministically: a
    /// cancellation signalled *between* the execute and commit phases retires
    /// the request exactly once, returns its blocks and reservation, and
    /// emits nothing after the terminal `Cancelled` — the freshly computed
    /// token is discarded unsurfaced.
    #[test]
    fn cancel_signalled_between_plan_and_commit_retires_exactly_once() {
        let model = ModelFamily::Tiny.build(43);
        let bytes = model.empty_cache().bytes_per_token();
        let mut engine = Engine::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                256 * bytes,
            )
            .with_block_size(4)
            .with_decode_workers(4),
        )
        .unwrap();
        let doomed = engine
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(12)))
            .unwrap();
        let survivor = engine
            .submit(Request::new(1, prompt(16, 1), GenerationConfig::new(12)))
            .unwrap();
        // Admit both and surface their first tokens.
        engine.step();
        engine.step();
        assert_eq!(engine.running(), 2);
        let signal = engine.cancel_signal();

        // Drive the round stage by stage: plan, execute, *then* signal the
        // cancellation, then commit — the exact window the signal exists for.
        engine.step += 1;
        let plan = engine.plan_decode();
        assert_eq!(plan, vec![true, true]);
        let workers = engine.decode_parallelism(&plan);
        assert!(workers > 1, "a 2-session plan fans out at 4 workers");
        let results = engine.execute_decode(&plan, workers);
        assert!(results.iter().all(|r| matches!(r, Some(Ok(_)))));
        signal.cancel(doomed.id());
        let taken = engine.cancel_signal.take();
        let executed = engine.commit_decode(results, &taken);

        // Only the survivor's token was surfaced or counted.
        assert_eq!(executed, 1);
        assert_eq!(engine.running(), 1);
        assert_eq!(engine.failures().len(), 1);
        assert_eq!(engine.failures()[0].id, doomed.id());
        assert!(matches!(
            engine.failures()[0].reason,
            FailureReason::Cancelled
        ));
        assert_eq!(engine.stats().cancelled, 1);
        let events = engine.drain_events_for(doomed.id());
        let terminal = check_well_formed(&events);
        assert_eq!(terminal.kind, EventKind::Cancelled);
        // A second cancel (signalled or direct) is a no-op: retired once.
        signal.cancel(doomed.id());
        engine.step();
        assert_eq!(engine.stats().cancelled, 1, "double retirement");
        assert!(!engine.cancel(doomed.id()));
        // The survivor still drains to completion and nothing leaked.
        engine.run(10_000);
        assert!(engine.is_idle());
        assert_eq!(engine.completions().len(), 1);
        assert_eq!(engine.completions()[0].id, survivor.id());
        assert_eq!(engine.pool().blocks_in_use(), 0, "cancelled blocks leaked");
        assert_eq!(engine.pool().blocks_reserved(), 0, "reservation leaked");
    }

    #[test]
    fn cancel_signal_applies_at_the_top_of_the_next_step() {
        let model = ModelFamily::Tiny.build(44);
        let mut engine = keyformer_engine(&model, 256);
        let handle = engine
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(8)))
            .unwrap();
        let signal = engine.cancel_signal();
        engine.step();
        // Signalled from "elsewhere" between steps (same thread here; the
        // mailbox is Send + Sync and the property suite exercises the real
        // cross-thread race).
        signal.cancel(handle.id());
        assert_eq!(signal.pending(), 1);
        engine.step();
        assert_eq!(signal.pending(), 0);
        assert!(engine.is_idle());
        let events = engine.drain_events_for(handle.id());
        assert_eq!(events.last().unwrap().kind, EventKind::Cancelled);
        assert_eq!(engine.pool().blocks_in_use(), 0);
    }

    /// PR 5 follow-up regression: with a per-request buffer cap, a reader
    /// that never drains loses the *oldest* non-terminal events — counted,
    /// never silently — and always keeps the terminal.
    #[test]
    fn bounded_event_buffers_drop_oldest_and_account_for_overflow() {
        let model = ModelFamily::Tiny.build(45);
        let mut engine = keyformer_engine(&model, 256);
        engine.set_event_buffer_limit(Some(4));
        assert_eq!(engine.event_buffer_limit(), Some(4));
        let gen = 12;
        let handle = engine
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(gen)))
            .unwrap();
        engine.run(10_000);
        assert!(engine.is_idle());
        let events = engine.drain_events_for(handle.id());
        assert_eq!(events.len(), 4, "buffer respected the cap");
        assert_eq!(
            events.last().unwrap().kind,
            EventKind::Completed { tokens: gen },
            "the terminal is never dropped"
        );
        // Accounting closes the books: emitted = buffered + dropped.
        // Emitted: Queued, PrefillStarted, FirstToken, gen-1 Tokens, Completed.
        let emitted = 3 + (gen - 1) + 1;
        let dropped = engine.events_dropped_for(handle.id());
        assert_eq!(events.len() + dropped, emitted);
        assert_eq!(engine.events_dropped(), dropped);
        // The survivors are the *newest* events: the tail of the token
        // stream, in order, capped by the terminal.
        let tokens: Vec<usize> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Token { index, .. } => Some(index),
                _ => None,
            })
            .collect();
        assert_eq!(tokens, vec![gen - 3, gen - 2, gen - 1]);

        // An unbounded engine drops nothing (the pre-cap behaviour).
        let mut unbounded = keyformer_engine(&model, 256);
        let h = unbounded
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(gen)))
            .unwrap();
        unbounded.run(10_000);
        assert_eq!(unbounded.events_dropped(), 0);
        assert_eq!(unbounded.drain_events_for(h.id()).len(), emitted);
    }

    #[test]
    fn reports_and_events_render() {
        let model = ModelFamily::Tiny.build(28);
        let mut engine = keyformer_engine(&model, 64);
        engine
            .submit(Request::new(3, prompt(12, 0), GenerationConfig::new(2)))
            .unwrap();
        let report = engine.step();
        let rendered = report.to_string();
        assert!(rendered.contains("step 1"), "{rendered}");
        assert!(rendered.contains("admitted"), "{rendered}");
        engine.run(64);
        let stats = engine.stats().to_string();
        assert!(stats.contains("decode steps"), "{stats}");
        for event in engine.drain_events() {
            let line = event.to_string();
            assert!(line.contains("req-3"), "{line}");
        }
        let kinds = [
            EventKind::Queued,
            EventKind::PrefillStarted,
            EventKind::FirstToken { token: 1 },
            EventKind::Token { token: 2, index: 1 },
            EventKind::Preempted,
            EventKind::Resumed,
            EventKind::Completed { tokens: 2 },
            EventKind::Failed {
                reason: FailureReason::Cancelled,
            },
            EventKind::Cancelled,
        ];
        // Terminal classification and Display cover every kind.
        assert_eq!(kinds.iter().filter(|k| k.is_terminal()).count(), 3);
        for kind in kinds {
            assert!(!kind.to_string().is_empty());
        }
    }

    /// The tentpole's capacity mechanism: the same byte pool converts to 4x
    /// the blocks when the engine stores sealed KV blocks as u8, because
    /// `bytes_per_slot` accounts in quantized bytes.
    #[test]
    fn u8_pool_holds_four_times_the_blocks_of_f32() {
        let model = ModelFamily::Tiny.build(31);
        let pool_bytes = model.empty_cache().bytes_per_token() * 128;
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let config = ServerConfig::new(PolicySpec::keyformer_default(), budget, pool_bytes)
            .with_block_size(4);
        let f32_engine = Engine::new(&model, config).unwrap();
        let u8_engine = Engine::new(&model, config.with_kv_dtype(KvDtype::U8)).unwrap();
        assert_eq!(u8_engine.total_blocks(), 4 * f32_engine.total_blocks());
        assert_eq!(
            u8_engine.bytes_per_block() * 4,
            f32_engine.bytes_per_block()
        );
        assert_eq!(
            u8_engine.bytes_per_token() * 4,
            f32_engine.bytes_per_token()
        );
    }

    /// A u8-configured engine serves requests end to end, and a u8 override
    /// on an f32 engine narrows without error; only widening (f32 requests
    /// into a u8-sized pool) is rejected at submission.
    #[test]
    fn kv_dtype_overrides_narrow_but_never_widen() {
        let model = ModelFamily::Tiny.build(32);
        let pool_bytes = model.empty_cache().bytes_per_token() * 256;
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let base = ServerConfig::new(PolicySpec::keyformer_default(), budget, pool_bytes)
            .with_block_size(4);

        let mut u8_engine = Engine::new(&model, base.with_kv_dtype(KvDtype::U8)).unwrap();
        let err = u8_engine
            .submit_with(
                Request::new(0, prompt(12, 0), GenerationConfig::new(3)),
                SubmitOptions::new().with_kv_dtype(KvDtype::F32),
            )
            .unwrap_err();
        assert!(
            err.to_string().contains("wider"),
            "widening must be rejected: {err}"
        );
        u8_engine
            .submit(Request::new(1, prompt(12, 1), GenerationConfig::new(3)))
            .unwrap();
        u8_engine.run(10_000);
        assert_eq!(u8_engine.completions().len(), 1);
        assert_eq!(u8_engine.completions()[0].output.generated.len(), 3);

        let mut f32_engine = Engine::new(&model, base).unwrap();
        f32_engine
            .submit_with(
                Request::new(2, prompt(12, 2), GenerationConfig::new(3)),
                SubmitOptions::new().with_kv_dtype(KvDtype::U8),
            )
            .unwrap();
        f32_engine.run(10_000);
        assert_eq!(f32_engine.completions().len(), 1);
    }

    /// Prefix entries are keyed by (policy, dtype): requests of different
    /// dtypes never attach to each other's prefixes, while same-dtype
    /// requests still share.
    #[test]
    fn kv_dtype_partitions_the_prefix_registry() {
        let model = ModelFamily::Tiny.build(33);
        let pool_bytes = model.empty_cache().bytes_per_token() * 512;
        let budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let config = ServerConfig::new(PolicySpec::keyformer_default(), budget, pool_bytes)
            .with_block_size(4)
            .with_prefix_sharing(true);
        let mut engine = Engine::new(&model, config).unwrap();
        let shared = prompt(16, 7);

        engine
            .submit_with(
                Request::new(0, shared.clone(), GenerationConfig::new(2)),
                SubmitOptions::new().with_kv_dtype(KvDtype::U8),
            )
            .unwrap();
        engine.run(10_000);
        assert_eq!(engine.stats().prefix_tokens_reused, 0);

        // Same prompt at the engine-default f32 dtype: no cross-dtype reuse.
        engine
            .submit(Request::new(1, shared.clone(), GenerationConfig::new(2)))
            .unwrap();
        engine.run(10_000);
        assert_eq!(
            engine.stats().prefix_tokens_reused,
            0,
            "prefixes must not cross dtypes"
        );

        // Same prompt at u8 again: same-dtype reuse still works.
        engine
            .submit_with(
                Request::new(2, shared, GenerationConfig::new(2)),
                SubmitOptions::new().with_kv_dtype(KvDtype::U8),
            )
            .unwrap();
        engine.run(10_000);
        assert!(
            engine.stats().prefix_tokens_reused > 0,
            "same-dtype prefixes share"
        );
        assert_eq!(engine.completions().len(), 3);
    }
}

//! # keyformer-serve
//!
//! A continuous-batching serving layer over the `keyformer-model` substrate: many
//! concurrent sequences decode against one shared [`TransformerModel`], each with
//! its own per-sequence [`Session`] (KV cache, policy instance, budget).
//!
//! This is the layer where the paper's headline claim becomes end-to-end
//! observable: Keyformer shrinks each sequence's KV footprint, block-reservation
//! admission against a shared paged [`SharedBlockPool`] turns that into *more
//! concurrent sequences*, and the batched scheduler turns concurrency into
//! *more requests completed per decode-step budget* (Adnan et al., MLSys 2024,
//! §6.3). Blocks freed by an eviction or a retirement are instantly reusable by
//! any other sequence; chunked prefill spreads long prompts across scheduler
//! steps and lets strict pools pause (rather than fail) a prefill that runs out
//! of blocks. See `docs/SERVING.md` for queue semantics, block-pool sizing and
//! the throughput/paging/latency experiments.
//!
//! Two front ends drive the one scheduler:
//!
//! * [`Engine`] — the event-driven streaming API: [`Engine::submit`] returns a
//!   [`RequestHandle`], every state transition emits a typed [`Event`]
//!   (`Queued` → `PrefillStarted` → `FirstToken` → `Token`* → `Completed`,
//!   with `Preempted`/`Resumed`/`Failed`/`Cancelled` along the way), requests
//!   carry [`SubmitOptions`] priorities and deadlines, and [`Engine::cancel`]
//!   retires work mid-flight. This is the API that makes time-to-first-token
//!   and inter-token latency observable per token.
//! * [`Server`] — the batch-oriented facade over [`Engine`]: submit, step to
//!   idle, harvest [`Server::completions`]. Bit-identical to the pre-engine
//!   scheduler, with event recording off.
//!
//! ```
//! use keyformer_core::{CacheBudgetSpec, PolicySpec};
//! use keyformer_model::families::ModelFamily;
//! use keyformer_model::generation::GenerationConfig;
//! use keyformer_serve::{Request, Server, ServerConfig};
//!
//! let model = ModelFamily::Tiny.build(7);
//! let pool = 64 * model.empty_cache().bytes_per_token();
//! let mut server = Server::new(
//!     &model,
//!     ServerConfig::new(
//!         PolicySpec::keyformer_default(),
//!         Some(CacheBudgetSpec::with_fraction(0.5)?),
//!         pool,
//!     ),
//! )?;
//! for i in 0..4 {
//!     let prompt: Vec<u32> = (0..24).map(|t| (t * 7 + i) % 100).collect();
//!     server.submit(Request::new(u64::from(i), prompt, GenerationConfig::new(6)))?;
//! }
//! server.run(256);
//! assert_eq!(server.completions().len(), 4);
//! # Ok::<(), keyformer_core::CoreError>(())
//! ```
//!
//! [`TransformerModel`]: keyformer_model::model::TransformerModel
//! [`Session`]: keyformer_model::session::Session
//! [`SharedBlockPool`]: keyformer_core::block::SharedBlockPool

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod request;
pub mod server;

pub use engine::{
    AdmissionOrder, CancelSignal, Engine, EngineConfig, Event, EventKind, RequestHandle,
    ServerConfig, ServerStats, StepReport, DEFAULT_SERVE_BLOCK_SIZE, PRIORITY_AGING_STEPS,
    SPF_AGING_TOKENS_PER_STEP,
};
pub use request::{
    submit_rejection, Completion, FailedRequest, FailureReason, Request, RequestId,
    RequestOverrides, SubmitOptions, WireCode,
};
pub use server::Server;

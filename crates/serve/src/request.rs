//! Request and completion types of the serving layer.

use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_core::CoreError;
use keyformer_model::generation::{GenerationConfig, GenerationOutput};
use serde::{Deserialize, Serialize};

/// Opaque identifier of one serving request, unique within a [`crate::Server`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw id.
    pub fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Per-request overrides of the server's default cache policy and budget,
/// validated when the request is submitted.
///
/// The plain default (`RequestOverrides::default()`) inherits everything from
/// the [`crate::ServerConfig`]; see [`Request::with_policy`],
/// [`Request::with_budget`] and [`Request::with_unbudgeted`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RequestOverrides {
    /// Cache policy to run instead of the server default.
    pub policy: Option<PolicySpec>,
    /// KV budget to apply instead of the server default.
    pub budget: Option<CacheBudgetSpec>,
    /// Forces the request to run unbudgeted (never evicted), overriding both
    /// the server default and `budget`. Mutually exclusive with `budget`.
    pub unbudgeted: bool,
}

impl RequestOverrides {
    /// `true` when every field inherits the server default.
    pub fn is_default(&self) -> bool {
        self.policy.is_none() && self.budget.is_none() && !self.unbudgeted
    }

    /// Validates the overrides (the check [`crate::Server::submit`] runs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if an overriding policy spec does
    /// not build, or if `budget` and `unbudgeted` are both set.
    pub fn validate(&self) -> Result<(), CoreError> {
        if let Some(policy) = self.policy {
            policy.build()?;
        }
        if self.unbudgeted && self.budget.is_some() {
            return Err(CoreError::InvalidConfig(
                "request cannot both override the budget and request unbudgeted decoding".into(),
            ));
        }
        Ok(())
    }
}

/// Scheduling options attached to one submission, orthogonal to the
/// [`Request`] payload: how urgent the work is and how long the caller is
/// willing to wait. See [`crate::Engine::submit_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubmitOptions {
    /// Scheduling priority; higher values are admitted (and keep their blocks
    /// under preemption pressure) ahead of lower ones. Queued requests age:
    /// every [`crate::PRIORITY_AGING_STEPS`] scheduler steps spent waiting
    /// raise the *effective* priority by one level, so low-priority work can
    /// be delayed but never starved. Defaults to 0.
    pub priority: u8,
    /// Deadline in scheduler steps, measured from submission: a request that
    /// has not completed within this many steps is retired as
    /// [`FailureReason::DeadlineExceeded`], wherever it is (queued, prefilling
    /// or decoding), immediately releasing its blocks and reservations.
    /// `None` (the default) never expires.
    pub deadline_steps: Option<usize>,
    /// Per-submission KV storage precision. `None` (the default) inherits the
    /// engine's [`crate::ServerConfig::kv_dtype`]. An override may only
    /// *narrow* the dtype (fewer bytes per value than the engine pool was
    /// sized for); a wider override is rejected at
    /// [`crate::Engine::submit_with`].
    pub kv_dtype: Option<KvDtype>,
}

impl SubmitOptions {
    /// Default options: priority 0, no deadline, engine-default KV dtype.
    pub fn new() -> Self {
        SubmitOptions::default()
    }

    /// Sets the scheduling priority (higher = more urgent).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Retires the request as [`FailureReason::DeadlineExceeded`] unless it
    /// completes within `steps` scheduler steps of submission.
    pub fn with_deadline_steps(mut self, steps: usize) -> Self {
        self.deadline_steps = Some(steps);
        self
    }

    /// Stores this request's sealed KV blocks at `dtype` instead of the
    /// engine default; see [`SubmitOptions::kv_dtype`].
    pub fn with_kv_dtype(mut self, dtype: KvDtype) -> Self {
        self.kv_dtype = Some(dtype);
        self
    }
}

/// One generation request: a prompt plus its generation configuration and
/// optional per-request policy/budget overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen identifier; echoed back in the completion.
    pub id: RequestId,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Sampling / length configuration, including the per-request seed.
    pub config: GenerationConfig,
    /// Per-request policy/budget overrides (defaults inherit the server config).
    pub overrides: RequestOverrides,
}

impl Request {
    /// Convenience constructor inheriting the server's policy and budget.
    pub fn new(id: u64, prompt: Vec<u32>, config: GenerationConfig) -> Self {
        Request {
            id: RequestId::new(id),
            prompt,
            config,
            overrides: RequestOverrides::default(),
        }
    }

    /// Runs this request under `policy` instead of the server default.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.overrides.policy = Some(policy);
        self
    }

    /// Applies `budget` to this request instead of the server default.
    pub fn with_budget(mut self, budget: CacheBudgetSpec) -> Self {
        self.overrides.budget = Some(budget);
        self.overrides.unbudgeted = false;
        self
    }

    /// Runs this request unbudgeted (full attention footprint) even if the
    /// server default applies a budget.
    pub fn with_unbudgeted(mut self) -> Self {
        self.overrides.unbudgeted = true;
        self.overrides.budget = None;
        self
    }

    /// The policy this request runs under, given the server default.
    pub fn effective_policy(&self, default: PolicySpec) -> PolicySpec {
        self.overrides.policy.unwrap_or(default)
    }

    /// The budget this request runs under, given the server default.
    pub fn effective_budget(&self, default: Option<CacheBudgetSpec>) -> Option<CacheBudgetSpec> {
        if self.overrides.unbudgeted {
            None
        } else {
            self.overrides.budget.or(default)
        }
    }
}

/// A successfully finished request, with its scheduling telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The request this completion answers.
    pub id: RequestId,
    /// The generation result (tokens, final/peak cache bytes).
    pub output: GenerationOutput,
    /// Scheduler step at which the request was submitted.
    pub submitted_step: usize,
    /// Scheduler step at which the request was admitted (prefill ran). A
    /// preempted-and-resumed request reports its *last* admission.
    pub admitted_step: usize,
    /// Scheduler step at which the final token was produced.
    pub completed_step: usize,
    /// Scheduler step at which the *first* token was surfaced (`None` only for
    /// zero-token generations). A preempted-and-resumed request keeps the step
    /// of the original surfacing — replayed tokens are not re-delivered.
    pub first_token_step: Option<usize>,
    /// Scheduler step at which each generated token was surfaced, in order.
    /// Consecutive differences are the request's inter-token latencies; gaps
    /// larger than 1 mark steps lost to queueing, chunked prefill of
    /// neighbours, stalls or preemption.
    pub token_steps: Vec<usize>,
    /// Prompt tokens served from shared prefix-cache blocks instead of being
    /// recomputed (0 without prefix sharing, or on a registry miss).
    pub prefix_tokens_reused: usize,
}

impl Completion {
    /// End-to-end latency in scheduler steps (queueing + decode).
    pub fn latency_steps(&self) -> usize {
        self.completed_step - self.submitted_step
    }

    /// Steps spent waiting in the admission queue.
    pub fn queue_steps(&self) -> usize {
        self.admitted_step - self.submitted_step
    }

    /// Time-to-first-token in scheduler steps (submission to first surfaced
    /// token); `None` for zero-token generations.
    pub fn ttft_steps(&self) -> Option<usize> {
        Some(self.first_token_step? - self.submitted_step)
    }

    /// Inter-token latencies in scheduler steps: the gap between each pair of
    /// consecutive surfaced tokens (empty for fewer than two tokens).
    pub fn inter_token_steps(&self) -> Vec<usize> {
        self.token_steps.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean inter-token latency in scheduler steps (0.0 for fewer than two
    /// tokens).
    pub fn mean_inter_token_steps(&self) -> f64 {
        let gaps = self.inter_token_steps();
        if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<usize>() as f64 / gaps.len() as f64
        }
    }
}

impl std::fmt::Display for Completion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} tokens in {} steps (queued {}, ttft {})",
            self.id,
            self.output.generated.len(),
            self.latency_steps(),
            self.queue_steps(),
            match self.ttft_steps() {
                Some(t) => t.to_string(),
                None => "-".into(),
            }
        )
    }
}

/// A request the scheduler retired without completing.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRequest {
    /// The failed request's id.
    pub id: RequestId,
    /// Why it failed.
    pub reason: FailureReason,
    /// Scheduler step at which it was retired.
    pub step: usize,
}

/// Why a request was retired without a completion.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureReason {
    /// The request's projected KV footprint exceeds the whole pool, so it could
    /// never be admitted.
    TooLargeForPool {
        /// The request's projected steady-state KV bytes.
        projected_bytes: usize,
        /// The server's pool size.
        pool_bytes: usize,
    },
    /// Prefill or decode returned an error (bad prompt, policy-contract
    /// violation, ...).
    Engine(CoreError),
    /// The caller cancelled the request ([`crate::Engine::cancel`]) before it
    /// completed.
    Cancelled,
    /// The request did not complete within its
    /// [`SubmitOptions::deadline_steps`] budget and was retired by the
    /// scheduler.
    DeadlineExceeded {
        /// The deadline the request was submitted with, in scheduler steps.
        deadline_steps: usize,
    },
}

/// Stable wire-level classification of a failure or rejection: a
/// machine-readable code plus the HTTP status a network front-end (such as the
/// `kf-serve` binary) maps it to. The `code` strings are a compatibility
/// surface — clients match on them, so they are never renamed, only added to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WireCode {
    /// Stable machine-readable identifier (snake_case).
    pub code: &'static str,
    /// HTTP status a wire front-end responds with for this class.
    pub status: u16,
}

impl std::fmt::Display for WireCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.code, self.status)
    }
}

/// Classifies a *submit-time* rejection — [`crate::Engine::submit_with`] or
/// [`crate::Server::submit`] returning `Err` — into a stable [`WireCode`], so
/// a front-end can answer 4xx/5xx without string-matching error text.
///
/// Validation failures (a policy that does not build, contradictory overrides,
/// a widening dtype override) are the caller's fault (`400`); an exhausted
/// pool is a capacity condition worth retrying (`503`); a block-bookkeeping
/// error is an internal bug (`500`).
pub fn submit_rejection(error: &CoreError) -> WireCode {
    match error {
        CoreError::InvalidConfig(_) | CoreError::InvalidSelection(_) => WireCode {
            code: "invalid_request",
            status: 400,
        },
        CoreError::PoolExhausted { .. } => WireCode {
            code: "pool_exhausted",
            status: 503,
        },
        CoreError::InvalidBlock { .. } => WireCode {
            code: "internal",
            status: 500,
        },
    }
}

impl FailureReason {
    /// Stable machine-readable code for this failure (see [`WireCode::code`]).
    pub fn code(&self) -> &'static str {
        match self {
            FailureReason::TooLargeForPool { .. } => "too_large_for_pool",
            FailureReason::Engine(_) => "engine_error",
            FailureReason::Cancelled => "cancelled",
            FailureReason::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// HTTP status a wire front-end maps this failure to: `507` (insufficient
    /// storage) for a request that can never fit the pool, `500` for engine
    /// errors, `499` (the de-facto client-closed-request status) for
    /// cancellations, `504` for deadline expiry.
    pub fn http_status(&self) -> u16 {
        match self {
            FailureReason::TooLargeForPool { .. } => 507,
            FailureReason::Engine(_) => 500,
            FailureReason::Cancelled => 499,
            FailureReason::DeadlineExceeded { .. } => 504,
        }
    }

    /// Code and status together, for handing straight to a response writer.
    pub fn wire(&self) -> WireCode {
        WireCode {
            code: self.code(),
            status: self.http_status(),
        }
    }
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::TooLargeForPool {
                projected_bytes,
                pool_bytes,
            } => write!(
                f,
                "projected {projected_bytes} KV bytes exceed the {pool_bytes}-byte pool"
            ),
            FailureReason::Engine(e) => write!(f, "engine error: {e}"),
            FailureReason::Cancelled => write!(f, "cancelled by the caller"),
            FailureReason::DeadlineExceeded { deadline_steps } => {
                write!(f, "deadline of {deadline_steps} scheduler steps exceeded")
            }
        }
    }
}

impl std::fmt::Display for FailedRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} failed at step {}: {}",
            self.id, self.step, self.reason
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_ordered_and_display() {
        assert!(RequestId::new(1) < RequestId::new(2));
        assert_eq!(RequestId::new(7).raw(), 7);
        assert_eq!(RequestId::new(7).to_string(), "req-7");
    }

    #[test]
    fn completion_latency_accounting() {
        let c = Completion {
            id: RequestId::new(0),
            output: GenerationOutput {
                generated: vec![1, 2, 3],
                prompt_len: 4,
                final_cache_slots: vec![4],
                final_cache_bytes: 64,
                peak_cache_bytes: 64,
            },
            submitted_step: 2,
            admitted_step: 5,
            completed_step: 9,
            first_token_step: Some(5),
            token_steps: vec![5, 6, 9],
            prefix_tokens_reused: 0,
        };
        assert_eq!(c.latency_steps(), 7);
        assert_eq!(c.queue_steps(), 3);
        assert_eq!(c.ttft_steps(), Some(3));
        assert_eq!(c.inter_token_steps(), vec![1, 3]);
        assert!((c.mean_inter_token_steps() - 2.0).abs() < 1e-12);
        assert!(c.to_string().contains("ttft 3"), "{c}");
    }

    #[test]
    fn zero_token_completion_has_no_first_token() {
        let c = Completion {
            id: RequestId::new(1),
            output: GenerationOutput {
                generated: vec![],
                prompt_len: 4,
                final_cache_slots: vec![4],
                final_cache_bytes: 64,
                peak_cache_bytes: 64,
            },
            submitted_step: 0,
            admitted_step: 1,
            completed_step: 1,
            first_token_step: None,
            token_steps: vec![],
            prefix_tokens_reused: 0,
        };
        assert_eq!(c.ttft_steps(), None);
        assert!(c.inter_token_steps().is_empty());
        assert_eq!(c.mean_inter_token_steps(), 0.0);
        assert!(c.to_string().contains("ttft -"), "{c}");
    }

    #[test]
    fn submit_options_build_and_default() {
        let plain = SubmitOptions::new();
        assert_eq!(plain, SubmitOptions::default());
        assert_eq!(plain.priority, 0);
        assert_eq!(plain.deadline_steps, None);
        assert_eq!(plain.kv_dtype, None);
        let tuned = SubmitOptions::new()
            .with_priority(3)
            .with_deadline_steps(40)
            .with_kv_dtype(KvDtype::U8);
        assert_eq!(tuned.priority, 3);
        assert_eq!(tuned.deadline_steps, Some(40));
        assert_eq!(tuned.kv_dtype, Some(KvDtype::U8));
    }

    #[test]
    fn overrides_validate_and_resolve() {
        let default_policy = PolicySpec::Full;
        let default_budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        let plain = Request::new(1, vec![1, 2], GenerationConfig::new(2));
        assert!(plain.overrides.is_default());
        assert!(plain.overrides.validate().is_ok());
        assert_eq!(plain.effective_policy(default_policy), default_policy);
        assert_eq!(plain.effective_budget(default_budget), default_budget);

        let tuned = Request::new(2, vec![1, 2], GenerationConfig::new(2))
            .with_policy(PolicySpec::keyformer_default())
            .with_budget(CacheBudgetSpec::new(0.25, 0.3).unwrap());
        assert!(tuned.overrides.validate().is_ok());
        assert_eq!(
            tuned.effective_policy(default_policy),
            PolicySpec::keyformer_default()
        );
        assert_eq!(
            tuned
                .effective_budget(default_budget)
                .unwrap()
                .cache_fraction(),
            0.25
        );

        let unbudgeted = Request::new(3, vec![1, 2], GenerationConfig::new(2)).with_unbudgeted();
        assert_eq!(unbudgeted.effective_budget(default_budget), None);

        // An overriding policy that cannot build fails validation.
        let broken = Request::new(4, vec![1, 2], GenerationConfig::new(2))
            .with_policy(PolicySpec::Damped { alpha: 0.0 });
        assert!(broken.overrides.validate().is_err());
        // Budget + unbudgeted simultaneously is contradictory.
        let contradictory = RequestOverrides {
            policy: None,
            budget: default_budget,
            unbudgeted: true,
        };
        assert!(contradictory.validate().is_err());
        // The builders keep the pair consistent in either order.
        let rebudgeted = unbudgeted.with_budget(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        assert!(rebudgeted.overrides.validate().is_ok());
    }

    #[test]
    fn failure_wire_codes_are_stable() {
        // These pairs are a wire compatibility surface: clients match on the
        // code strings, so changing any of them is a breaking API change.
        let cases = [
            (
                FailureReason::TooLargeForPool {
                    projected_bytes: 10,
                    pool_bytes: 5,
                },
                "too_large_for_pool",
                507,
            ),
            (
                FailureReason::Engine(CoreError::InvalidConfig("boom".into())),
                "engine_error",
                500,
            ),
            (FailureReason::Cancelled, "cancelled", 499),
            (
                FailureReason::DeadlineExceeded { deadline_steps: 3 },
                "deadline_exceeded",
                504,
            ),
        ];
        for (reason, code, status) in cases {
            assert_eq!(reason.code(), code);
            assert_eq!(reason.http_status(), status);
            assert_eq!(reason.wire(), WireCode { code, status });
        }
        assert_eq!(
            FailureReason::Cancelled.wire().to_string(),
            "cancelled (499)"
        );
    }

    #[test]
    fn submit_rejections_classify_by_fault() {
        assert_eq!(
            submit_rejection(&CoreError::InvalidConfig("bad".into())),
            WireCode {
                code: "invalid_request",
                status: 400
            }
        );
        assert_eq!(
            submit_rejection(&CoreError::InvalidSelection("bad".into())).status,
            400
        );
        assert_eq!(
            submit_rejection(&CoreError::PoolExhausted {
                in_use: 4,
                capacity: 4
            }),
            WireCode {
                code: "pool_exhausted",
                status: 503
            }
        );
        assert_eq!(
            submit_rejection(&CoreError::InvalidBlock {
                id: 1,
                op: "retain"
            })
            .status,
            500
        );
    }

    #[test]
    fn failure_reasons_render() {
        let too_large = FailureReason::TooLargeForPool {
            projected_bytes: 10,
            pool_bytes: 5,
        };
        assert!(too_large.to_string().contains("exceed"));
        let engine = FailureReason::Engine(CoreError::InvalidConfig("boom".into()));
        assert!(engine.to_string().contains("boom"));
        assert!(FailureReason::Cancelled.to_string().contains("cancelled"));
        let expired = FailureReason::DeadlineExceeded { deadline_steps: 12 };
        assert!(expired.to_string().contains("12"), "{expired}");
        let failed = FailedRequest {
            id: RequestId::new(9),
            reason: FailureReason::Cancelled,
            step: 4,
        };
        assert!(failed.to_string().contains("req-9"), "{failed}");
        assert!(failed.to_string().contains("step 4"), "{failed}");
    }
}

//! Request and completion types of the serving layer.

use keyformer_core::CoreError;
use keyformer_model::generation::{GenerationConfig, GenerationOutput};
use serde::{Deserialize, Serialize};

/// Opaque identifier of one serving request, unique within a [`crate::Server`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct RequestId(u64);

impl RequestId {
    /// Wraps a raw id.
    pub fn new(raw: u64) -> Self {
        RequestId(raw)
    }

    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// One generation request: a prompt plus its generation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen identifier; echoed back in the completion.
    pub id: RequestId,
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// Sampling / length configuration, including the per-request seed.
    pub config: GenerationConfig,
}

impl Request {
    /// Convenience constructor.
    pub fn new(id: u64, prompt: Vec<u32>, config: GenerationConfig) -> Self {
        Request {
            id: RequestId::new(id),
            prompt,
            config,
        }
    }
}

/// A successfully finished request, with its scheduling telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The request this completion answers.
    pub id: RequestId,
    /// The generation result (tokens, final/peak cache bytes).
    pub output: GenerationOutput,
    /// Scheduler step at which the request was submitted.
    pub submitted_step: usize,
    /// Scheduler step at which the request was admitted (prefill ran).
    pub admitted_step: usize,
    /// Scheduler step at which the final token was produced.
    pub completed_step: usize,
}

impl Completion {
    /// End-to-end latency in scheduler steps (queueing + decode).
    pub fn latency_steps(&self) -> usize {
        self.completed_step - self.submitted_step
    }

    /// Steps spent waiting in the admission queue.
    pub fn queue_steps(&self) -> usize {
        self.admitted_step - self.submitted_step
    }
}

/// A request the scheduler retired without completing.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedRequest {
    /// The failed request's id.
    pub id: RequestId,
    /// Why it failed.
    pub reason: FailureReason,
    /// Scheduler step at which it was retired.
    pub step: usize,
}

/// Why a request was retired without a completion.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureReason {
    /// The request's projected KV footprint exceeds the whole pool, so it could
    /// never be admitted.
    TooLargeForPool {
        /// The request's projected steady-state KV bytes.
        projected_bytes: usize,
        /// The server's pool size.
        pool_bytes: usize,
    },
    /// Prefill or decode returned an error (bad prompt, policy-contract
    /// violation, ...).
    Engine(CoreError),
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::TooLargeForPool {
                projected_bytes,
                pool_bytes,
            } => write!(
                f,
                "projected {projected_bytes} KV bytes exceed the {pool_bytes}-byte pool"
            ),
            FailureReason::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_ordered_and_display() {
        assert!(RequestId::new(1) < RequestId::new(2));
        assert_eq!(RequestId::new(7).raw(), 7);
        assert_eq!(RequestId::new(7).to_string(), "req-7");
    }

    #[test]
    fn completion_latency_accounting() {
        let c = Completion {
            id: RequestId::new(0),
            output: GenerationOutput {
                generated: vec![1],
                prompt_len: 4,
                final_cache_slots: vec![4],
                final_cache_bytes: 64,
                peak_cache_bytes: 64,
            },
            submitted_step: 2,
            admitted_step: 5,
            completed_step: 9,
        };
        assert_eq!(c.latency_steps(), 7);
        assert_eq!(c.queue_steps(), 3);
    }

    #[test]
    fn failure_reasons_render() {
        let too_large = FailureReason::TooLargeForPool {
            projected_bytes: 10,
            pool_bytes: 5,
        };
        assert!(too_large.to_string().contains("exceed"));
        let engine = FailureReason::Engine(CoreError::InvalidConfig("boom".into()));
        assert!(engine.to_string().contains("boom"));
    }
}

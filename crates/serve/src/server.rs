//! The continuous-batching scheduler over a paged KV block pool.
//!
//! [`Server`] owns a FIFO admission queue, a shared
//! [`SharedBlockPool`] sized from [`ServerConfig::pool_bytes`], and a set of
//! running [`Session`]s that all decode against one shared [`TransformerModel`]
//! and all allocate their KV blocks from that one pool. Scheduling is
//! iteration-level (Orca-style): every call to [`Server::step`] is one *batched
//! decode iteration* —
//!
//! 1. **Prefill continuation.** In-flight chunked prefills advance by one chunk
//!    each (oldest first), up to [`ServerConfig::prefills_per_step`] chunk
//!    executions per step. A prefill that a strict pool has starved of blocks
//!    pauses (consuming no budget) and resumes once eviction or retirement
//!    frees blocks.
//! 2. **Admission.** Requests are popped from the queue head while the pool can
//!    *reserve* their steady-state block count
//!    ([`Server::reserved_blocks_for`]). Admission is strictly FIFO: a head
//!    whose reservation does not fit blocks the queue (no reordering), which
//!    keeps completion order deterministic and starvation-free. A request whose
//!    reservation can never fit is retired as
//!    [`FailureReason::TooLargeForPool`]. Per-request policy/budget overrides
//!    (validated at submit time) are resolved here.
//! 3. **Decode.** Every running session past its prefill advances by exactly
//!    one token, in admission order. Finished sessions are retired into
//!    [`Completion`]s; failing sessions are retired into [`FailedRequest`]s —
//!    the scheduler never panics on a bad request. Retirement returns both the
//!    reservation and the physical blocks to the pool in the same step.
//!
//! The admission *reservation* of a request is its steady-state decode
//! footprint in blocks: with a [`CacheBudgetSpec`], the per-layer capacity
//! derived from the prompt length; without one, the full
//! `prompt + max_new_tokens` slots — each rounded up to whole blocks per layer.
//! Prefill transiently exceeds the steady state for budgeted policies (the
//! cache fills to the whole prompt before the end-of-prompt eviction), exactly
//! as in the paper. Under the default [`OvercommitPolicy::AllowTransient`]
//! discipline that spike is absorbed and *measured*
//! ([`BlockPoolStats::peak_overshoot`]); with [`ServerConfig::with_strict_pool`]
//! it is *enforced* — allocations past the pool hard-stop, chunked prefill
//! pauses, and in-use blocks provably never exceed the pool (see
//! `docs/SERVING.md`).
//!
//! This is what turns Keyformer's reduced KV footprint into throughput: at a
//! fixed pool, a 50% budget reserves roughly half the blocks per sequence, so
//! the same pool runs roughly twice the batch — and blocks freed by an eviction
//! are instantly reusable by any other sequence instead of being stranded in a
//! contiguous per-sequence buffer.

use crate::request::{Completion, FailedRequest, FailureReason, Request, RequestId};
use keyformer_core::block::{
    blocks_for_slots, BlockId, BlockPoolStats, OvercommitPolicy, SharedBlockPool,
};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::prefix::{policy_context, PrefixRegistryStats, SharedPrefixRegistry};
use keyformer_core::spec::PolicySpec;
use keyformer_core::CoreError;
use keyformer_model::model::TransformerModel;
use keyformer_model::session::Session;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default token slots per block used by the serving layer.
///
/// Smaller than the core default so that admission quantisation stays tight at
/// the pool sizes the experiments use: each sequence wastes at most
/// `block_size - 1` slots per layer to internal fragmentation.
pub const DEFAULT_SERVE_BLOCK_SIZE: usize = 8;

/// Consecutive zero-progress stalled steps after which a starved prefill
/// triggers preemption of the youngest running session (registry pins are
/// reclaimed one step earlier).
const PREEMPT_AFTER_STALLS: usize = 2;

/// In which order queued requests are considered for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AdmissionOrder {
    /// Strict first-in-first-out (the default): the head blocks the queue
    /// until its reservation fits, keeping completion order deterministic and
    /// starvation-free.
    #[default]
    Fifo,
    /// Latency-aware: admit the queued request with the fewest prompt tokens
    /// left to prefill — prompt length minus whatever a prefix-cache hit would
    /// reuse — tie-broken by submission order. Short interactive requests
    /// overtake long ones at admission (running sessions are never reordered);
    /// a steady stream of short prompts can starve a long one, which is the
    /// knob's documented trade-off.
    ShortestPrefillFirst,
}

/// Static configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Cache policy every admitted session runs (unless a request overrides it).
    pub policy: PolicySpec,
    /// Relative KV budget applied per session (`None` = never evict), unless a
    /// request overrides it.
    pub budget: Option<CacheBudgetSpec>,
    /// KV-byte pool shared by all running sessions; converted to a block pool
    /// of `pool_bytes / (block_size * per-layer slot bytes)` blocks.
    pub pool_bytes: usize,
    /// Hard cap on concurrently running sessions (defaults to unlimited).
    pub max_concurrency: usize,
    /// Prefill work units (whole prompts, or chunks when chunked) executed per
    /// scheduler step (defaults to 1). Zero is rejected by
    /// [`ServerConfig::validate`].
    pub prefills_per_step: usize,
    /// Token slots per block (defaults to [`DEFAULT_SERVE_BLOCK_SIZE`]).
    pub block_size: usize,
    /// Prompt tokens forwarded per prefill work unit. `None` (the default) runs
    /// each prompt one-shot inside its admission step; `Some(n)` spreads it
    /// over `ceil(prompt_len / n)` steps, resumable mid-prompt.
    pub prefill_chunk: Option<usize>,
    /// When `true`, the block pool hard-enforces its capacity: allocations past
    /// it fail and chunked prefills pause instead. Requires `prefill_chunk`.
    pub strict_pool: bool,
    /// When `true`, the server keeps a [`SharedPrefixRegistry`] over the pool:
    /// prompt blocks are registered as prefills run, admissions attach to the
    /// longest cached prefix of their prompt (skipping those prefill chunks and
    /// reporting [`Completion::prefix_tokens_reused`]), and admission reserves
    /// only the non-shared suffix blocks of unbudgeted requests on
    /// non-strict pools. Defaults to `false`, which reproduces the
    /// sharing-free scheduler bit for bit.
    pub prefix_sharing: bool,
    /// Order in which queued requests are admitted (default FIFO).
    pub admission_order: AdmissionOrder,
}

impl ServerConfig {
    /// A configuration with the given policy, per-session budget and byte pool,
    /// unlimited concurrency, one prefill per step, the default block size and
    /// one-shot prefill.
    pub fn new(policy: PolicySpec, budget: Option<CacheBudgetSpec>, pool_bytes: usize) -> Self {
        ServerConfig {
            policy,
            budget,
            pool_bytes,
            max_concurrency: usize::MAX,
            prefills_per_step: 1,
            block_size: DEFAULT_SERVE_BLOCK_SIZE,
            prefill_chunk: None,
            strict_pool: false,
            prefix_sharing: false,
            admission_order: AdmissionOrder::Fifo,
        }
    }

    /// Caps the number of concurrently running sessions.
    pub fn with_max_concurrency(mut self, max: usize) -> Self {
        self.max_concurrency = max.max(1);
        self
    }

    /// Sets how many prefill work units may run per scheduler step. Zero is
    /// not clamped — it fails [`ServerConfig::validate`].
    pub fn with_prefills_per_step(mut self, prefills: usize) -> Self {
        self.prefills_per_step = prefills;
        self
    }

    /// Sets the token slots per block.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }

    /// Enables chunked prefill at `chunk` prompt tokens per scheduler step.
    pub fn with_prefill_chunk(mut self, chunk: usize) -> Self {
        self.prefill_chunk = Some(chunk);
        self
    }

    /// Switches the pool's capacity discipline; see [`ServerConfig::strict_pool`].
    pub fn with_strict_pool(mut self, strict: bool) -> Self {
        self.strict_pool = strict;
        self
    }

    /// Enables or disables prefix sharing; see [`ServerConfig::prefix_sharing`].
    pub fn with_prefix_sharing(mut self, sharing: bool) -> Self {
        self.prefix_sharing = sharing;
        self
    }

    /// Sets the admission order; see [`AdmissionOrder`].
    pub fn with_admission_order(mut self, order: AdmissionOrder) -> Self {
        self.admission_order = order;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the pool is empty, the block
    /// size or prefill chunk is zero, `prefills_per_step` is zero, a strict
    /// pool lacks chunked prefill, or the policy spec itself does not build.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.pool_bytes == 0 {
            return Err(CoreError::InvalidConfig(
                "serving pool must be at least 1 byte".into(),
            ));
        }
        if self.block_size == 0 {
            return Err(CoreError::InvalidConfig(
                "block size must be at least 1 token slot".into(),
            ));
        }
        if self.prefills_per_step == 0 {
            return Err(CoreError::InvalidConfig(
                "prefills_per_step must be at least 1; a zero-prefill server could never \
                 admit a request"
                    .into(),
            ));
        }
        if self.prefill_chunk == Some(0) {
            return Err(CoreError::InvalidConfig(
                "prefill chunk must be at least 1 token".into(),
            ));
        }
        if self.strict_pool && self.prefill_chunk.is_none() {
            return Err(CoreError::InvalidConfig(
                "a strict pool requires chunked prefill, so prefills pause instead of \
                 failing when the pool runs dry"
                    .into(),
            ));
        }
        self.policy.build().map(|_| ())
    }
}

struct Pending {
    request: Request,
    submitted_step: usize,
}

struct Running<'m> {
    /// The original request, kept whole so preemption can re-queue it.
    request: Request,
    session: Session<'m>,
    /// Blocks reserved against the pool at admission, returned at retirement.
    reserved_blocks: usize,
    submitted_step: usize,
    admitted_step: usize,
    /// Consecutive steps this session's prefill stalled with zero progress.
    stall_streak: usize,
}

impl Running<'_> {
    fn id(&self) -> RequestId {
        self.request.id
    }
}

/// Aggregate counters of one server's lifetime, used by the throughput and
/// paging experiments and the serving bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerStats {
    /// Scheduler steps executed.
    pub steps: usize,
    /// Token-level decode steps executed (sum of batch sizes over steps).
    pub decode_steps: usize,
    /// Prefills completed (one per admitted request, however many chunks).
    pub prefills: usize,
    /// Prefill work units executed (chunk advances; equals `prefills` for
    /// one-shot prefill).
    pub prefill_chunks: usize,
    /// Times a chunked prefill paused because a strict pool had no block.
    pub prefill_stalls: usize,
    /// Sum over steps of the live KV bytes at the end of the step (for means).
    pub live_kv_byte_steps: u64,
    /// Largest live KV byte footprint observed at the end of any step.
    pub peak_live_kv_bytes: usize,
    /// Largest number of concurrently running sessions observed.
    pub peak_concurrency: usize,
    /// Sum over steps of live (occupied) token slots at the end of the step.
    pub live_slot_steps: u64,
    /// Sum over steps of slots covered by allocated blocks at the end of the
    /// step. With `live_slot_steps`, this yields the pool-utilization metric
    /// the paging experiment reports.
    pub allocated_slot_steps: u64,
    /// Running sessions swapped out (blocks released, request re-queued)
    /// because a starved prefill could not otherwise make progress.
    pub preemptions: usize,
    /// Prompt tokens served from shared prefix-cache blocks, summed over
    /// admissions (including re-admissions after preemption).
    pub prefix_tokens_reused: u64,
}

impl ServerStats {
    /// Mean live KV bytes at the end of a scheduler step.
    pub fn mean_live_kv_bytes(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.live_kv_byte_steps as f64 / self.steps as f64
        }
    }

    /// Mean decode batch size (token steps per scheduler step).
    pub fn mean_batch_size(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.decode_steps as f64 / self.steps as f64
        }
    }

    /// Mean fraction of allocated block slots actually holding live tokens —
    /// 1.0 minus internal fragmentation. Measured at end-of-step, i.e. at
    /// steady state (after evictions and retirements of the step).
    pub fn mean_pool_utilization(&self) -> f64 {
        if self.allocated_slot_steps == 0 {
            0.0
        } else {
            self.live_slot_steps as f64 / self.allocated_slot_steps as f64
        }
    }
}

/// What one [`Server::step`] did, with an end-of-step snapshot of the memory
/// state: pool accounting (including shared-block counts), occupancy-level
/// fragmentation, and the prefix registry's counters when sharing is on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepReport {
    /// 1-based index of the step this report describes.
    pub step: usize,
    /// Token-level decode steps executed (the old `step()` return value).
    pub decode_steps: usize,
    /// Prefill work units (chunks or whole prompts) executed.
    pub prefill_chunks: usize,
    /// Requests admitted into running sessions.
    pub admitted: usize,
    /// Requests retired into completions.
    pub completed: usize,
    /// Requests retired as failures.
    pub failed: usize,
    /// Running sessions swapped out under pool pressure.
    pub preempted: usize,
    /// Live token slots in physical blocks at end of step — shared blocks
    /// counted once, registry-pinned blocks included (see
    /// [`Server::physical_live_slots`]).
    pub live_slots: usize,
    /// Token slots covered by allocated blocks at end of step.
    pub allocated_slots: usize,
    /// Pool accounting snapshot (in-use/reserved/peaks/churn/shared blocks).
    pub pool: BlockPoolStats,
    /// Prefix-registry counters (`None` unless
    /// [`ServerConfig::prefix_sharing`] is on).
    pub registry: Option<PrefixRegistryStats>,
}

impl StepReport {
    /// Live slots over allocated slots at end of step (1.0 for an empty pool).
    pub fn utilization(&self) -> f64 {
        if self.allocated_slots == 0 {
            1.0
        } else {
            self.live_slots as f64 / self.allocated_slots as f64
        }
    }

    /// Fraction of allocated slots holding no live token — the pool's internal
    /// fragmentation right now.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.utilization()
    }
}

/// A continuous-batching server over one shared model and one shared block pool.
pub struct Server<'m> {
    model: &'m TransformerModel,
    config: ServerConfig,
    bytes_per_token: usize,
    /// Bytes one block (of one layer) occupies.
    bytes_per_block: usize,
    total_blocks: usize,
    num_layers: usize,
    pool: SharedBlockPool,
    /// Prefix registry over `pool` (`Some` iff `config.prefix_sharing`).
    registry: Option<SharedPrefixRegistry>,
    queue: VecDeque<Pending>,
    running: Vec<Running<'m>>,
    completed: Vec<Completion>,
    failed: Vec<FailedRequest>,
    step: usize,
    stats: ServerStats,
}

impl<'m> Server<'m> {
    /// Creates a server over `model` with the given scheduling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid or
    /// the byte pool is smaller than a single block.
    pub fn new(model: &'m TransformerModel, config: ServerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let cache = model.empty_cache();
        let bytes_per_token = cache.bytes_per_token();
        let num_layers = cache.num_layers();
        let bytes_per_layer_slot = cache.layer(0).bytes_per_slot();
        let bytes_per_block = config.block_size * bytes_per_layer_slot;
        let total_blocks = config.pool_bytes / bytes_per_block;
        if total_blocks == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "pool of {} bytes is smaller than one {}-slot block ({} bytes)",
                config.pool_bytes, config.block_size, bytes_per_block
            )));
        }
        let overcommit = if config.strict_pool {
            OvercommitPolicy::Strict
        } else {
            OvercommitPolicy::AllowTransient
        };
        let pool = SharedBlockPool::bounded(config.block_size, total_blocks, overcommit)?;
        let registry = config
            .prefix_sharing
            .then(|| SharedPrefixRegistry::new(&pool));
        Ok(Server {
            model,
            config,
            bytes_per_token,
            bytes_per_block,
            total_blocks,
            num_layers,
            pool,
            registry,
            queue: VecDeque::new(),
            running: Vec::new(),
            completed: Vec::new(),
            failed: Vec::new(),
            step: 0,
            stats: ServerStats::default(),
        })
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Bytes one cached token occupies across the model's layers.
    pub fn bytes_per_token(&self) -> usize {
        self.bytes_per_token
    }

    /// Bytes one block (of one layer) occupies.
    pub fn bytes_per_block(&self) -> usize {
        self.bytes_per_block
    }

    /// The block capacity the byte pool converts to.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// The shared block pool every running session allocates from.
    pub fn pool(&self) -> &SharedBlockPool {
        &self.pool
    }

    /// Snapshot of the pool's allocator accounting.
    pub fn pool_stats(&self) -> BlockPoolStats {
        self.pool.stats()
    }

    /// The prefix registry, when [`ServerConfig::prefix_sharing`] is enabled.
    pub fn prefix_registry(&self) -> Option<&SharedPrefixRegistry> {
        self.registry.as_ref()
    }

    /// The registry's counters, when prefix sharing is enabled.
    pub fn registry_stats(&self) -> Option<PrefixRegistryStats> {
        self.registry.as_ref().map(SharedPrefixRegistry::stats)
    }

    /// Prompt tokens of `request` a prefix-cache attach would reuse right now
    /// (full blocks only, and never the final prompt token). 0 without prefix
    /// sharing.
    pub fn reusable_prefix_tokens(&self, request: &Request) -> usize {
        let Some(registry) = &self.registry else {
            return 0;
        };
        if request.prompt.len() <= 1 {
            return 0;
        }
        let bs = self.config.block_size;
        let cap = (request.prompt.len() - 1) / bs * bs;
        let context = policy_context(&request.effective_policy(self.config.policy));
        registry.match_tokens(context, &request.prompt[..cap])
    }

    /// Prompt tokens `request` would still have to forward at admission, after
    /// any prefix-cache reuse — the quantity
    /// [`AdmissionOrder::ShortestPrefillFirst`] orders by.
    pub fn remaining_prefill_tokens(&self, request: &Request) -> usize {
        request.prompt.len() - self.reusable_prefix_tokens(request)
    }

    /// Per-layer steady-state slot count of `request` under its effective
    /// budget: the capacity a running decode settles at after the end-of-prompt
    /// eviction, or the full sequence when unbudgeted.
    fn steady_state_slots(&self, request: &Request) -> usize {
        match request.effective_budget(self.config.budget) {
            Some(spec) => {
                let capacity = spec.for_prompt_len(request.prompt.len()).capacity();
                if self.config.strict_pool {
                    // Each decode step transiently holds capacity + 1 slots
                    // between the append and the eviction; a strict pool must
                    // reserve that slot, an overcommitting pool absorbs it.
                    capacity + 1
                } else {
                    capacity
                }
            }
            // Unbudgeted caches grow to the full sequence (the final generated
            // token is never fed back, hence the saturating decrement).
            None => request.prompt.len() + request.config.max_new_tokens.saturating_sub(1),
        }
    }

    /// Blocks reserved for `request` at admission: its steady-state slots
    /// rounded up to whole blocks, per layer.
    pub fn reserved_blocks_for(&self, request: &Request) -> usize {
        self.num_layers * blocks_for_slots(self.steady_state_slots(request), self.config.block_size)
    }

    /// Worst-case blocks `request` ever holds, including the prefill transient
    /// (the whole prompt is live just before the end-of-prompt eviction).
    pub fn peak_blocks_for(&self, request: &Request) -> usize {
        let peak_slots = self.steady_state_slots(request).max(request.prompt.len());
        self.num_layers * blocks_for_slots(peak_slots, self.config.block_size)
    }

    /// Blocks admission actually reserves for `request`: the steady-state
    /// count, minus — for *unbudgeted* requests on a *non-strict* pool — the
    /// full blocks a prefix-cache attach will serve from shared storage.
    /// Unbudgeted sequences never write into attached blocks (appends only
    /// ever touch blocks past the attached prefix), so those blocks stay
    /// shared for the request's whole life and are already allocated.
    /// Budgeted requests keep their full reservation: the end-of-prompt
    /// eviction compacts *inside* the prefix, CoW-forking it into private
    /// blocks that the reservation must cover. Strict pools also keep the full
    /// reservation, because their no-overshoot guarantee is proven against
    /// reservations covering every private block a session can hold.
    pub fn admission_reservation(&self, request: &Request) -> usize {
        let full = self.reserved_blocks_for(request);
        if self.config.strict_pool || request.effective_budget(self.config.budget).is_some() {
            return full;
        }
        let shared_blocks =
            self.num_layers * (self.reusable_prefix_tokens(request) / self.config.block_size);
        full.saturating_sub(shared_blocks)
    }

    /// Steady-state byte reservation of `request` at block granularity — the
    /// quantity admission holds below the pool.
    pub fn projected_kv_bytes(&self, request: &Request) -> usize {
        self.reserved_blocks_for(request) * self.bytes_per_block
    }

    /// Bytes currently reserved by admitted requests, at block granularity.
    pub fn reserved_bytes(&self) -> usize {
        self.pool.blocks_reserved() * self.bytes_per_block
    }

    /// Actual live KV bytes across running sessions right now.
    pub fn live_kv_bytes(&self) -> usize {
        self.running.iter().map(|r| r.session.cache_bytes()).sum()
    }

    /// Live token slots in *physical* blocks right now: every block counted
    /// once however many sessions map it (CoW sharing would otherwise inflate
    /// a per-session sum past the allocated total), plus the registry's pinned
    /// blocks, which hold a full block of valid cached rows each. This is the
    /// numerator of the pool-utilization metric.
    pub fn physical_live_slots(&self) -> usize {
        let mut seen: std::collections::HashSet<BlockId> = std::collections::HashSet::new();
        let mut live = 0;
        for r in &self.running {
            for layer in r.session.cache().iter() {
                for (id, rows) in layer.block_rows() {
                    if seen.insert(id) {
                        live += rows;
                    }
                }
            }
        }
        if let Some(registry) = &self.registry {
            for id in registry.pinned_block_ids() {
                if seen.insert(id) {
                    live += self.config.block_size;
                }
            }
        }
        live
    }

    /// Number of requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of running sessions.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// `true` once no work remains (queue empty, nothing running).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Scheduler steps executed so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Completed requests, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completed
    }

    /// Requests retired without completing, in retirement order.
    pub fn failures(&self) -> &[FailedRequest] {
        &self.failed
    }

    /// Enqueues a request, validating its per-request overrides. Requests are
    /// admitted in submission (FIFO) order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the request's overrides are
    /// invalid (a policy spec that does not build, or a budget override
    /// combined with `unbudgeted`); the request is not enqueued.
    pub fn submit(&mut self, request: Request) -> Result<(), CoreError> {
        request.overrides.validate()?;
        self.queue.push_back(Pending {
            request,
            submitted_step: self.step,
        });
        Ok(())
    }

    fn fail(&mut self, id: RequestId, reason: FailureReason) {
        self.failed.push(FailedRequest {
            id,
            reason,
            step: self.step,
        });
    }

    /// Advances every in-flight chunked prefill by one chunk, oldest first,
    /// consuming `budget` prefill work units. Stalled prefills (strict pool out
    /// of blocks) consume no budget and stay resumable.
    fn continue_prefills(&mut self, budget: &mut usize) {
        let mut i = 0;
        while i < self.running.len() && *budget > 0 {
            if !self.running[i].session.is_prefilling() {
                i += 1;
                continue;
            }
            match self.running[i].session.advance_prefill() {
                Ok(progress) => {
                    if progress.stalled {
                        self.stats.prefill_stalls += 1;
                    }
                    if progress.processed > 0 {
                        *budget -= 1;
                        self.stats.prefill_chunks += 1;
                        self.running[i].stall_streak = 0;
                    } else if progress.stalled {
                        self.running[i].stall_streak += 1;
                    }
                    if progress.ready {
                        self.stats.prefills += 1;
                    }
                    i += 1;
                }
                Err(e) => {
                    let running = self.running.remove(i);
                    self.pool.unreserve(running.reserved_blocks);
                    self.fail(running.id(), FailureReason::Engine(e));
                }
            }
        }
    }

    /// `true` while the running session at `idx` could not make prefill
    /// progress — mirroring exactly the reservation-aware pre-flight
    /// [`Session::advance_prefill`] stalls on: the next token's block need
    /// while prompt tokens remain, or the worst-case copy-on-write fork count
    /// once only the end-of-prompt eviction is pending. (Using the wrong
    /// `needed` here would let relief stop while the session's own gate still
    /// fails, stalling it forever.)
    fn prefill_starved(&self, idx: usize) -> bool {
        let r = &self.running[idx];
        let cache = r.session.cache();
        let needed = if r.session.prefill_remaining() == 0 {
            cache.shared_block_count()
        } else {
            cache.blocks_needed_for_next_token()
        };
        if needed == 0 {
            return false;
        }
        !self
            .pool
            .can_allocate_transient(needed, cache.total_blocks(), r.reserved_blocks)
    }

    /// Frees memory for a prefill that is starving on a dry pool: first
    /// reclaims prefix-registry pins (least-recently-used first; attached
    /// sequences keep their own refcounts and are unaffected), and once the
    /// stall has persisted for [`PREEMPT_AFTER_STALLS`] whole steps, swaps out
    /// the *youngest* running session — its private blocks return to the pool,
    /// its shared blocks stay pinned for whoever still maps them, and its
    /// request goes back to the head of the queue to be re-admitted later (the
    /// resumable-prefill machinery plus prefix re-attachment make the redo
    /// cheap, and per-request seeding makes it token-identical).
    fn relieve_pressure(&mut self) {
        let stalled = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, r)| r.session.is_prefilling() && r.stall_streak > 0)
            .max_by_key(|(_, r)| r.stall_streak)
            .map(|(i, r)| (i, r.stall_streak));
        let Some((stalled_idx, streak)) = stalled else {
            return;
        };
        while self.prefill_starved(stalled_idx) {
            let evicted = self
                .registry
                .as_ref()
                .is_some_and(SharedPrefixRegistry::evict_lru);
            if !evicted {
                break;
            }
        }
        if streak < PREEMPT_AFTER_STALLS || !self.prefill_starved(stalled_idx) {
            return;
        }
        let victim_idx = self
            .running
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != stalled_idx)
            .max_by_key(|&(i, r)| (r.admitted_step, i))
            .map(|(i, _)| i);
        if let Some(idx) = victim_idx {
            let victim = self.running.remove(idx);
            self.pool.unreserve(victim.reserved_blocks);
            // Dropping the session releases its private blocks (and its own
            // refs on shared ones).
            self.queue.push_front(Pending {
                submitted_step: victim.submitted_step,
                request: victim.request,
            });
            self.stats.preemptions += 1;
        }
    }

    /// Index of the next queued request to consider for admission, under the
    /// configured [`AdmissionOrder`]. The shortest-prefill-first scan walks
    /// the registry chain of every queued prompt, so it costs
    /// O(queue × prompt) hashing per admission — fine at batch-queue depths;
    /// a deeper queue would want the match length cached on `Pending`.
    fn admission_candidate(&self) -> Option<usize> {
        match self.config.admission_order {
            AdmissionOrder::Fifo => (!self.queue.is_empty()).then_some(0),
            AdmissionOrder::ShortestPrefillFirst => self
                .queue
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| {
                    (
                        self.remaining_prefill_tokens(&p.request),
                        p.submitted_step,
                        *i,
                    )
                })
                .map(|(i, _)| i),
        }
    }

    fn admit(&mut self, budget: &mut usize) -> usize {
        let mut admitted = 0;
        while *budget > 0 && self.running.len() < self.config.max_concurrency {
            if self.config.strict_pool && self.running.iter().any(|r| r.session.is_prefilling()) {
                // Strict pools serialize prefills: concurrent half-done
                // prefills could each hold blocks the others need and stall
                // each other forever. One at a time is deadlock-free, because
                // decoding sessions always retire eventually.
                break;
            }
            let Some(candidate) = self.admission_candidate() else {
                break;
            };
            let reserved = self.admission_reservation(&self.queue[candidate].request);
            let peak = self.peak_blocks_for(&self.queue[candidate].request);
            let impossible = reserved > self.total_blocks
                || (self.config.strict_pool && peak > self.total_blocks);
            if impossible {
                // Can never fit, even alone: retire instead of deadlocking the
                // queue behind it.
                let pending = self.queue.remove(candidate).expect("candidate exists");
                let blocks = if self.config.strict_pool {
                    peak
                } else {
                    reserved
                };
                self.fail(
                    pending.request.id,
                    FailureReason::TooLargeForPool {
                        projected_bytes: blocks * self.bytes_per_block,
                        pool_bytes: self.config.pool_bytes,
                    },
                );
                continue;
            }
            if !self.pool.try_reserve(reserved) {
                // On a strict pool the registry's pins hold reservations of
                // their own; peel least-recently-used entries until the
                // candidate fits or the registry is dry.
                let mut fits = false;
                if self.config.strict_pool {
                    while let Some(registry) = &self.registry {
                        if !registry.evict_lru() {
                            break;
                        }
                        if self.pool.try_reserve(reserved) {
                            fits = true;
                            break;
                        }
                    }
                }
                if !fits {
                    // The chosen candidate waits for blocks; nothing else may
                    // jump it (under FIFO that is the head, preserving
                    // submission order exactly).
                    break;
                }
            }
            let pending = self.queue.remove(candidate).expect("candidate exists");
            let policy_spec = pending.request.effective_policy(self.config.policy);
            let budget_spec = pending.request.effective_budget(self.config.budget);
            let policy = match policy_spec.build() {
                Ok(policy) => policy,
                Err(e) => {
                    // Unreachable after validate()/submit(), but a config error
                    // must not take the server down.
                    self.pool.unreserve(reserved);
                    self.fail(pending.request.id, FailureReason::Engine(e));
                    continue;
                }
            };
            let mut session =
                Session::with_pool(self.model, policy, budget_spec, self.pool.clone());
            session.set_prefill_chunk(self.config.prefill_chunk);
            session.set_block_reservation(reserved);
            let begun = match &self.registry {
                Some(registry) => {
                    session.set_prefix_registry(registry.clone(), policy_context(&policy_spec));
                    session
                        .begin_with_prefix(&pending.request.prompt, &pending.request.config)
                        .map(|_| ())
                }
                None => session.begin(&pending.request.prompt, &pending.request.config),
            };
            match begun {
                Ok(()) => {
                    self.stats.prefix_tokens_reused += session.prefix_tokens_reused() as u64;
                    let mut stall_streak = 0;
                    if session.is_prefilling() {
                        // Chunked: the first chunk runs in this step's prefill
                        // budget, right here at admission.
                        match session.advance_prefill() {
                            Ok(progress) => {
                                *budget -= 1;
                                self.stats.prefill_chunks += 1;
                                if progress.stalled {
                                    self.stats.prefill_stalls += 1;
                                    if progress.processed == 0 {
                                        stall_streak = 1;
                                    }
                                }
                                if progress.ready {
                                    self.stats.prefills += 1;
                                }
                            }
                            Err(e) => {
                                self.pool.unreserve(reserved);
                                self.fail(pending.request.id, FailureReason::Engine(e));
                                continue;
                            }
                        }
                    } else {
                        // One-shot: the whole prompt ran inside begin(), so
                        // only a successful begin consumes the prefill slot.
                        *budget -= 1;
                        self.stats.prefills += 1;
                        self.stats.prefill_chunks += 1;
                    }
                    admitted += 1;
                    self.running.push(Running {
                        request: pending.request,
                        session,
                        reserved_blocks: reserved,
                        submitted_step: pending.submitted_step,
                        admitted_step: self.step,
                        stall_streak,
                    })
                }
                Err(e) => {
                    self.pool.unreserve(reserved);
                    self.fail(pending.request.id, FailureReason::Engine(e));
                }
            }
        }
        admitted
    }

    fn decode_round(&mut self) -> usize {
        let mut executed = 0;
        let mut i = 0;
        while i < self.running.len() {
            let running = &mut self.running[i];
            if running.session.is_prefilling() {
                // Mid-prompt: nothing to decode yet.
                i += 1;
                continue;
            }
            if running.session.is_decoding() {
                match running.session.step() {
                    Ok(_) => {
                        executed += 1;
                        self.stats.decode_steps += 1;
                    }
                    Err(e) => {
                        let running = self.running.remove(i);
                        self.pool.unreserve(running.reserved_blocks);
                        self.fail(running.id(), FailureReason::Engine(e));
                        continue;
                    }
                }
            }
            if self.running[i].session.is_decoding() {
                i += 1;
            } else {
                let mut done = self.running.remove(i);
                self.pool.unreserve(done.reserved_blocks);
                let output = done
                    .session
                    .take_output()
                    .expect("finished session has an output");
                // Dropping the session below returns its blocks to the pool.
                self.completed.push(Completion {
                    id: done.id(),
                    prefix_tokens_reused: done.session.prefix_tokens_reused(),
                    output,
                    submitted_step: done.submitted_step,
                    admitted_step: done.admitted_step,
                    completed_step: self.step,
                });
            }
        }
        executed
    }

    /// Runs one batched scheduler step — prefill continuation, pressure relief
    /// (registry trim / preemption), admission, and one decode token for every
    /// running session past its prefill — and reports what happened plus an
    /// end-of-step memory snapshot.
    pub fn step(&mut self) -> StepReport {
        self.step += 1;
        let completed_before = self.completed.len();
        let failed_before = self.failed.len();
        let preempted_before = self.stats.preemptions;
        let chunks_before = self.stats.prefill_chunks;
        let mut prefill_budget = self.config.prefills_per_step;
        self.continue_prefills(&mut prefill_budget);
        self.relieve_pressure();
        let admitted = self.admit(&mut prefill_budget);
        let executed = self.decode_round();
        self.stats.steps += 1;
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(self.running.len());
        let live = self.live_kv_bytes();
        self.stats.live_kv_byte_steps += live as u64;
        self.stats.peak_live_kv_bytes = self.stats.peak_live_kv_bytes.max(live);
        let live_slots = self.physical_live_slots();
        let allocated_slots = self.pool.blocks_in_use() * self.config.block_size;
        self.stats.live_slot_steps += live_slots as u64;
        self.stats.allocated_slot_steps += allocated_slots as u64;
        StepReport {
            step: self.step,
            decode_steps: executed,
            prefill_chunks: self.stats.prefill_chunks - chunks_before,
            admitted,
            completed: self.completed.len() - completed_before,
            failed: self.failed.len() - failed_before,
            preempted: self.stats.preemptions - preempted_before,
            live_slots,
            allocated_slots,
            pool: self.pool.stats(),
            registry: self.registry_stats(),
        }
    }

    /// Runs up to `max_steps` scheduler steps, stopping early once idle.
    /// Returns the number of steps actually executed.
    pub fn run(&mut self, max_steps: usize) -> usize {
        let mut executed = 0;
        while executed < max_steps && !self.is_idle() {
            self.step();
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_model::engine::InferenceEngine;
    use keyformer_model::families::ModelFamily;
    use keyformer_model::generation::GenerationConfig;

    fn prompt(len: usize, salt: u32) -> Vec<u32> {
        (0..len)
            .map(|i| (i as u32 * 13 + 5 + salt * 17) % 120)
            .collect()
    }

    /// 4-slot blocks so the small test pools quantise tightly: with the Tiny
    /// model's budgets below, reservations land exactly on block boundaries.
    fn keyformer_server(model: &TransformerModel, pool_tokens: usize) -> Server<'_> {
        let bytes = model.empty_cache().bytes_per_token();
        Server::new(
            model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool_tokens * bytes,
            )
            .with_block_size(4),
        )
        .unwrap()
    }

    #[test]
    fn empty_server_is_idle_and_stepping_is_harmless() {
        let model = ModelFamily::Tiny.build(1);
        let mut server = keyformer_server(&model, 64);
        assert!(server.is_idle());
        let report = server.step();
        assert_eq!(report.decode_steps, 0);
        assert_eq!(report.admitted, 0);
        assert_eq!(report.utilization(), 1.0, "empty pool is not fragmented");
        assert!(report.registry.is_none(), "sharing is off by default");
        assert!(server.completions().is_empty());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let model = ModelFamily::Tiny.build(1);
        // Zero-byte pool.
        assert!(Server::new(&model, ServerConfig::new(PolicySpec::Full, None, 0)).is_err());
        // Pool smaller than a single block.
        let bytes = model.empty_cache().bytes_per_token();
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, bytes).with_block_size(64),
        )
        .is_err());
        // Zero block size.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_block_size(0),
        )
        .is_err());
        // Zero prefill chunk.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_prefill_chunk(0),
        )
        .is_err());
        // Strict pools require chunked prefill.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_strict_pool(true),
        )
        .is_err());
    }

    #[test]
    fn zero_prefills_per_step_is_rejected_not_clamped() {
        let model = ModelFamily::Tiny.build(1);
        let bytes = model.empty_cache().bytes_per_token();
        let config =
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_prefills_per_step(0);
        assert_eq!(config.prefills_per_step, 0, "builder must not clamp");
        let err = Server::new(&model, config).map(|_| ()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn single_request_completes_identically_to_a_fresh_engine() {
        let model = ModelFamily::Tiny.build(2);
        let config = GenerationConfig::new(6);
        let mut server = keyformer_server(&model, 256);
        server
            .submit(Request::new(1, prompt(24, 0), config))
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        let completions = server.completions();
        assert_eq!(completions.len(), 1);
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let alone = engine.generate(&prompt(24, 0), &config);
        assert_eq!(completions[0].output, alone);
        // Retirement returned every block to the pool.
        assert_eq!(server.pool().blocks_in_use(), 0);
        assert_eq!(server.pool().blocks_reserved(), 0);
    }

    #[test]
    fn admission_respects_the_block_pool() {
        let model = ModelFamily::Tiny.build(3);
        // Each request reserves ceil(0.5 * 24) = 12 slots = 3 blocks per layer
        // (block size 4, 2 layers => 6 blocks each); a 30-token pool converts
        // to 15 blocks and therefore fits exactly two requests concurrently.
        let mut server = keyformer_server(&model, 30);
        assert_eq!(server.total_blocks(), 15);
        for i in 0..4 {
            server
                .submit(Request::new(
                    i,
                    prompt(24, i as u32),
                    GenerationConfig::new(5),
                ))
                .unwrap();
        }
        let mut max_running = 0;
        let mut max_reserved = 0;
        while !server.is_idle() {
            server.step();
            max_running = max_running.max(server.running());
            max_reserved = max_reserved.max(server.reserved_bytes());
            assert!(
                server.reserved_bytes() <= server.config().pool_bytes,
                "admission overshot the pool"
            );
        }
        assert_eq!(max_running, 2);
        assert_eq!(max_reserved, 2 * 12 * server.bytes_per_token());
        assert_eq!(server.completions().len(), 4);
        assert_eq!(server.stats().peak_concurrency, 2);
        assert_eq!(server.pool().blocks_in_use(), 0, "pool drained at idle");
    }

    #[test]
    fn fifo_order_is_preserved_through_admission() {
        let model = ModelFamily::Tiny.build(4);
        // Pool fits one request at a time, so completions must follow submission
        // order exactly.
        let mut server = keyformer_server(&model, 12);
        for i in 0..3 {
            server
                .submit(Request::new(
                    i,
                    prompt(20, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        server.run(256);
        let ids: Vec<u64> = server.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        for c in server.completions() {
            assert!(c.admitted_step >= c.submitted_step);
            assert!(c.completed_step > c.admitted_step || c.output.generated.len() <= 1);
            assert!(c.latency_steps() >= c.queue_steps());
        }
    }

    #[test]
    fn oversized_and_malformed_requests_fail_without_panicking() {
        let model = ModelFamily::Tiny.build(5);
        let mut server = keyformer_server(&model, 8);
        // Reserved 0.5 * 200 = 100 slots/layer > 2-block/layer pool: rejected outright.
        server
            .submit(Request::new(1, prompt(200, 1), GenerationConfig::new(4)))
            .unwrap();
        // Empty prompt: engine error at prefill.
        server
            .submit(Request::new(2, Vec::new(), GenerationConfig::new(4)))
            .unwrap();
        // Out-of-vocabulary prompt: engine error at prefill.
        server
            .submit(Request::new(3, vec![9_999], GenerationConfig::new(4)))
            .unwrap();
        // A well-formed request behind the bad ones still completes.
        server
            .submit(Request::new(4, prompt(14, 4), GenerationConfig::new(3)))
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        assert_eq!(server.failures().len(), 3);
        assert!(matches!(
            server.failures()[0].reason,
            FailureReason::TooLargeForPool { .. }
        ));
        assert!(matches!(
            server.failures()[1].reason,
            FailureReason::Engine(_)
        ));
        assert_eq!(server.completions().len(), 1);
        assert_eq!(server.completions()[0].id.raw(), 4);
        // Rejected requests never ran a forward pass, so they must not count as
        // prefills nor consume the step's prefill slot ahead of the valid one.
        assert_eq!(server.stats().prefills, 1);
        assert_eq!(server.completions()[0].admitted_step, 1);
        assert_eq!(server.pool().blocks_reserved(), 0, "no reservation leaked");
    }

    #[test]
    fn smaller_budgets_admit_more_concurrent_sessions() {
        let model = ModelFamily::Tiny.build(6);
        let bytes = model.empty_cache().bytes_per_token();
        let pool = 64 * bytes;
        let run_with = |budget: Option<CacheBudgetSpec>| {
            let mut server = Server::new(
                &model,
                ServerConfig::new(PolicySpec::keyformer_default(), budget, pool).with_block_size(4),
            )
            .unwrap();
            for i in 0..6 {
                server
                    .submit(Request::new(
                        i,
                        prompt(32, i as u32),
                        GenerationConfig::new(6),
                    ))
                    .unwrap();
            }
            server.run(512);
            assert_eq!(server.completions().len(), 6);
            server.stats().peak_concurrency
        };
        let full = run_with(None);
        let half = run_with(Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()));
        assert!(
            half > full,
            "50% budget should admit more sessions (full {full}, half {half})"
        );
    }

    #[test]
    fn stats_track_batches_bytes_and_utilization() {
        let model = ModelFamily::Tiny.build(7);
        let mut server = keyformer_server(&model, 256);
        for i in 0..3 {
            server
                .submit(Request::new(
                    i,
                    prompt(16, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        server.run(64);
        let stats = server.stats();
        assert_eq!(stats.prefills, 3);
        assert_eq!(stats.prefill_chunks, 3, "one-shot: one chunk per prefill");
        // 3 requests x 4 tokens; each request's final token costs a decode step
        // but no forward, so all 12 are counted.
        assert_eq!(stats.decode_steps, 12);
        assert!(stats.mean_batch_size() > 0.0);
        assert!(stats.mean_live_kv_bytes() > 0.0);
        assert!(stats.peak_live_kv_bytes > 0);
        let utilization = stats.mean_pool_utilization();
        assert!(
            utilization > 0.5 && utilization <= 1.0,
            "implausible utilization {utilization}"
        );
        let pool_stats = server.pool_stats();
        assert!(pool_stats.total_allocs >= pool_stats.total_frees);
        assert_eq!(pool_stats.in_use, 0);
    }

    #[test]
    fn invalid_overrides_are_rejected_at_submit_time() {
        let model = ModelFamily::Tiny.build(8);
        let mut server = keyformer_server(&model, 64);
        let bad_policy = Request::new(1, prompt(10, 0), GenerationConfig::new(2))
            .with_policy(PolicySpec::Damped { alpha: 0.0 });
        assert!(server.submit(bad_policy).is_err());
        let mut contradictory = Request::new(2, prompt(10, 0), GenerationConfig::new(2));
        contradictory.overrides.budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        contradictory.overrides.unbudgeted = true;
        assert!(server.submit(contradictory).is_err());
        assert_eq!(server.queued(), 0, "rejected requests are not enqueued");
    }

    #[test]
    fn per_request_overrides_take_effect() {
        let model = ModelFamily::Tiny.build(9);
        let bytes = model.empty_cache().bytes_per_token();
        // Server default: full attention, unbudgeted.
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 512 * bytes).with_block_size(4),
        )
        .unwrap();
        let tight = CacheBudgetSpec::new(0.25, 0.3).unwrap();
        let config = GenerationConfig::new(4);
        server
            .submit(Request::new(0, prompt(32, 0), config))
            .unwrap();
        server
            .submit(
                Request::new(1, prompt(32, 0), config)
                    .with_policy(PolicySpec::keyformer_default())
                    .with_budget(tight),
            )
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        assert_eq!(server.completions().len(), 2);
        let by_id = |id: u64| {
            server
                .completions()
                .iter()
                .find(|c| c.id.raw() == id)
                .unwrap()
        };
        let default_slots = by_id(0).output.final_cache_slots.clone();
        let overridden_slots = by_id(1).output.final_cache_slots.clone();
        assert!(default_slots.iter().all(|&n| n == 35), "{default_slots:?}");
        assert!(
            overridden_slots.iter().all(|&n| n <= 8),
            "override budget ignored: {overridden_slots:?}"
        );
        // The overridden request matches a standalone engine with the same
        // policy + budget.
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(tight),
        );
        assert_eq!(by_id(1).output, engine.generate(&prompt(32, 0), &config));
        // And the unbudgeted override works in the other direction.
        let mut budgeted_server = keyformer_server(&model, 512);
        budgeted_server
            .submit(Request::new(7, prompt(32, 0), config).with_unbudgeted())
            .unwrap();
        budgeted_server.run(64);
        assert!(budgeted_server.completions()[0]
            .output
            .final_cache_slots
            .iter()
            .all(|&n| n == 35));
    }

    #[test]
    fn chunked_prefill_serves_identically_and_spreads_prefill_cost() {
        let model = ModelFamily::Tiny.build(10);
        let bytes = model.empty_cache().bytes_per_token();
        let pool = 128 * bytes;
        let base = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            pool,
        )
        .with_block_size(4);
        let run = |config: ServerConfig| {
            let mut server = Server::new(&model, config).unwrap();
            for i in 0..4 {
                server
                    .submit(Request::new(
                        i,
                        prompt(28, i as u32),
                        GenerationConfig::new(5),
                    ))
                    .unwrap();
            }
            server.run(1024);
            assert!(server.is_idle());
            assert!(server.failures().is_empty());
            let mut completions = server.completed.clone();
            completions.sort_by_key(|c| c.id);
            (completions, *server.stats())
        };
        let (one_shot, one_shot_stats) = run(base);
        let (chunked, chunked_stats) = run(base.with_prefill_chunk(7));
        assert_eq!(one_shot.len(), chunked.len());
        for (a, b) in one_shot.iter().zip(&chunked) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.output, b.output,
                "chunked prefill changed request {} output",
                a.id
            );
        }
        // A 28-token prompt at 7 tokens per chunk costs 4 prefill work units.
        assert_eq!(chunked_stats.prefills, 4);
        assert_eq!(chunked_stats.prefill_chunks, 16);
        assert_eq!(one_shot_stats.prefill_chunks, 4);
        // Chunked prefill spreads the prompt over steps, so completion comes
        // later in scheduler-step terms...
        assert!(chunked[0].completed_step > one_shot[0].completed_step);
        // ...but no single step ever forwards more than chunk + batch tokens,
        // where the one-shot server forwards prompt_len + batch in its
        // admission step. (The per-step ceiling is what chunking buys.)
    }

    #[test]
    fn strict_pool_never_exceeds_capacity_and_still_drains() {
        let model = ModelFamily::Tiny.build(11);
        let bytes = model.empty_cache().bytes_per_token();
        // Tight pool: a 24-token unbudgeted request needs 12 of 16 blocks at
        // its peak, so prefills must pause while decoders hold blocks.
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 32 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(6)
                .with_strict_pool(true),
        )
        .unwrap();
        let capacity = server.total_blocks();
        for i in 0..5 {
            server
                .submit(Request::new(
                    i,
                    prompt(20, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        while !server.is_idle() {
            server.step();
            assert!(
                server.pool().blocks_in_use() <= capacity,
                "strict pool overshot: {} > {capacity}",
                server.pool().blocks_in_use()
            );
        }
        assert_eq!(server.completions().len(), 5);
        assert!(server.failures().is_empty());
        assert_eq!(server.pool_stats().peak_overshoot(), 0);
        // Every completion still matches the sequential engine.
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        let alone = engine
            .try_generate(&prompt(20, 0), &GenerationConfig::new(4))
            .unwrap();
        assert_eq!(server.completions()[0].output, alone);
    }

    #[test]
    fn strict_prefill_transient_cannot_starve_a_decoders_reservation() {
        // Regression: with a block-aligned budget (capacity 8, block size 4) a
        // decoder's strict reservation is ceil(9/4) = 3 blocks per layer but
        // its steady occupancy is 2 — one reserved block per layer sits
        // unallocated between steps. A later prefill's transient must pause
        // before eating those blocks, or the decoder's capacity+1 append fails
        // and an admitted request dies as a spurious PoolExhausted failure.
        let model = ModelFamily::Tiny.build(13);
        let bytes = model.empty_cache().bytes_per_token();
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                28 * bytes, // 14 blocks of 4 slots
            )
            .with_block_size(4)
            .with_prefill_chunk(4)
            .with_strict_pool(true),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 14);
        // A decodes (capacity 8, reservation 6 blocks) while B's 24-token
        // prompt (peak 12 blocks, reservation 8) prefills alongside it.
        server
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(6)))
            .unwrap();
        server
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        let capacity = server.total_blocks();
        while !server.is_idle() {
            server.step();
            assert!(server.pool().blocks_in_use() <= capacity);
        }
        assert!(
            server.failures().is_empty(),
            "reserved decoder blocks were stolen by a prefill transient: {:?}",
            server.failures()
        );
        assert_eq!(server.completions().len(), 2);
        assert!(
            server.stats().prefill_stalls > 0,
            "the scenario must actually exercise a stalled prefill"
        );
        assert_eq!(server.pool_stats().peak_overshoot(), 0);
    }

    /// Requests sharing an L-token prefix, each with a unique suffix.
    fn shared_prefix_requests(
        num: usize,
        prefix_len: usize,
        total_len: usize,
        gen: usize,
    ) -> Vec<Request> {
        (0..num)
            .map(|i| {
                let mut p: Vec<u32> = (0..prefix_len).map(|t| (t as u32 * 13 + 7) % 120).collect();
                p.extend(
                    (prefix_len..total_len)
                        .map(|t| (t as u32 * 13 + 7 + (i as u32 + 1) * 31) % 120),
                );
                Request::new(i as u64, p, GenerationConfig::new(gen))
            })
            .collect()
    }

    #[test]
    fn prefix_sharing_reuses_blocks_and_keeps_outputs_identical() {
        let model = ModelFamily::Tiny.build(14);
        let bytes = model.empty_cache().bytes_per_token();
        let base = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            96 * bytes,
        )
        .with_block_size(4)
        .with_prefill_chunk(8);
        let run = |config: ServerConfig| {
            let mut server = Server::new(&model, config).unwrap();
            for r in shared_prefix_requests(4, 16, 28, 4) {
                server.submit(r).unwrap();
            }
            server.run(512);
            assert!(server.is_idle());
            assert!(server.failures().is_empty());
            let mut completions = server.completed.clone();
            completions.sort_by_key(|c| c.id);
            (completions, *server.stats(), server.pool_stats())
        };
        let (cold, cold_stats, _) = run(base);
        let (shared, shared_stats, shared_pool) = run(base.with_prefix_sharing(true));
        assert_eq!(cold.len(), shared.len());
        for (a, b) in cold.iter().zip(&shared) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.output, b.output,
                "sharing changed request {} output",
                a.id
            );
        }
        // The first request is the cold donor; every later one attaches the
        // 16-token prefix.
        assert_eq!(shared[0].prefix_tokens_reused, 0);
        for c in &shared[1..] {
            assert_eq!(c.prefix_tokens_reused, 16, "request {}", c.id);
        }
        assert_eq!(shared_stats.prefix_tokens_reused, 3 * 16);
        assert_eq!(cold_stats.prefix_tokens_reused, 0);
        assert!(
            shared_stats.prefill_chunks < cold_stats.prefill_chunks,
            "attached prefixes must skip prefill work ({} vs {})",
            shared_stats.prefill_chunks,
            cold_stats.prefill_chunks
        );
        assert!(
            shared_pool.peak_shared_blocks > 0,
            "shared mappings must show up in the pool accounting"
        );
    }

    #[test]
    fn shortest_prefill_first_reorders_admission_only() {
        let model = ModelFamily::Tiny.build(15);
        // Pool fits one request at a time so admission order == completion
        // order.
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                12 * model.empty_cache().bytes_per_token(),
            )
            .with_block_size(4)
            .with_admission_order(AdmissionOrder::ShortestPrefillFirst),
        )
        .unwrap();
        // Long, short, medium — SPF admits short prompts first.
        for (id, len) in [(0u64, 24usize), (1, 8), (2, 16)] {
            server
                .submit(Request::new(
                    id,
                    prompt(len, id as u32),
                    GenerationConfig::new(2),
                ))
                .unwrap();
        }
        server.run(256);
        assert!(server.is_idle());
        let ids: Vec<u64> = server.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        // The same workload under FIFO preserves submission order.
        let mut fifo = keyformer_server(&model, 12);
        for (id, len) in [(0u64, 24usize), (1, 8), (2, 16)] {
            fifo.submit(Request::new(
                id,
                prompt(len, id as u32),
                GenerationConfig::new(2),
            ))
            .unwrap();
        }
        fifo.run(256);
        let ids: Vec<u64> = fifo.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn step_reports_surface_memory_state() {
        let model = ModelFamily::Tiny.build(16);
        let bytes = model.empty_cache().bytes_per_token();
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                96 * bytes,
            )
            .with_block_size(4)
            .with_prefix_sharing(true),
        )
        .unwrap();
        for r in shared_prefix_requests(2, 16, 24, 3) {
            server.submit(r).unwrap();
        }
        let first = server.step();
        assert_eq!(first.step, 1);
        assert_eq!(first.admitted, 1, "one prefill slot per step");
        assert!(first.allocated_slots > 0);
        assert!(first.live_slots > 0);
        assert!(first.utilization() > 0.0 && first.utilization() <= 1.0);
        assert!((first.fragmentation() + first.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(first.pool.in_use * 4, first.allocated_slots);
        let registry = first.registry.expect("sharing is on");
        assert!(registry.entries > 0, "donor registered its prompt blocks");
        assert_eq!(registry.hits, 0, "nothing attached yet");
        let second = server.step();
        assert_eq!(second.admitted, 1);
        assert_eq!(
            second.registry.unwrap().hits,
            1,
            "second admission attached the donor's prefix"
        );
        server.run(256);
        assert!(server.is_idle());
        // The registry keeps pinning prefix blocks after retirement...
        assert!(server.pool().blocks_in_use() > 0);
        assert!(server.registry_stats().unwrap().blocks_held > 0);
        // ...until it is cleared, which drains the pool completely.
        server.prefix_registry().unwrap().clear();
        assert_eq!(server.pool().blocks_in_use(), 0);
    }

    #[test]
    fn dry_strict_pool_preempts_youngest_and_still_completes_everything() {
        let model = ModelFamily::Tiny.build(17);
        let bytes = model.empty_cache().bytes_per_token();
        // A long-decoding budgeted session (admitted first, holding its blocks
        // for many steps) shares a 14-block strict pool with a 24-token
        // prompt whose prefill transient (12 blocks) cannot fit alongside it.
        // The prefill stalls step after step; after PREEMPT_AFTER_STALLS the
        // scheduler must swap the *youngest other* session out (here: the
        // decoder) rather than let the older prefill starve indefinitely.
        let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::keyformer_default(), Some(budget), 28 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(4)
                .with_strict_pool(true),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 14);
        server
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(24)))
            .unwrap();
        server
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        let capacity = server.total_blocks();
        let mut preempted = 0;
        for _ in 0..2_000 {
            if server.is_idle() {
                break;
            }
            let report = server.step();
            preempted += report.preempted;
            assert!(server.pool().blocks_in_use() <= capacity);
        }
        assert!(server.is_idle(), "scheduler failed to drain");
        assert_eq!(server.completions().len(), 2, "{:?}", server.failures());
        assert!(server.failures().is_empty());
        assert_eq!(server.stats().preemptions, preempted);
        assert!(
            preempted > 0,
            "the scenario must actually exercise preemption"
        );
        // Every output still matches a solo engine run — the preempted request
        // was recomputed from scratch, token-identically.
        for (c, gen) in [(0u64, 24usize), (1, 4)] {
            let mut engine = InferenceEngine::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(budget),
            );
            let alone = engine
                .try_generate(
                    &prompt(if c == 0 { 16 } else { 24 }, c as u32),
                    &GenerationConfig::new(gen),
                )
                .unwrap();
            let completion = server
                .completions()
                .iter()
                .find(|done| done.id.raw() == c)
                .unwrap();
            assert_eq!(completion.output, alone, "request {c}");
        }
    }

    #[test]
    fn eviction_frees_blocks_for_waiting_prefills() {
        let model = ModelFamily::Tiny.build(12);
        let bytes = model.empty_cache().bytes_per_token();
        // Budgeted requests settle at ceil(0.5*24)=12 slots = 3 blocks/layer,
        // but hold 6 blocks/layer mid-prefill. A 10-block pool cannot hold one
        // request's prefill peak (12 blocks) — only AllowTransient admits it,
        // and the end-of-prompt eviction must return the overshoot immediately.
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                20 * bytes,
            )
            .with_block_size(4),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 10);
        server
            .submit(Request::new(0, prompt(24, 0), GenerationConfig::new(3)))
            .unwrap();
        server.step();
        // After the admission step the prefill has run AND evicted: the
        // transient 12-block peak is already back down to steady state.
        let peak = server.pool_stats().peak_in_use;
        assert!(peak >= 12, "prefill transient not visible in peak: {peak}");
        assert!(
            server.pool().blocks_in_use() <= 8,
            "eviction did not reclaim blocks: {} in use",
            server.pool().blocks_in_use()
        );
        assert!(server.pool_stats().peak_overshoot() >= 2);
        server.run(64);
        assert_eq!(server.completions().len(), 1);
        assert_eq!(server.pool().blocks_in_use(), 0);
    }
}

//! The continuous-batching scheduler.
//!
//! [`Server`] owns a FIFO admission queue and a set of running [`Session`]s that
//! all decode against one shared [`TransformerModel`]. Scheduling is
//! iteration-level (Orca-style): every call to [`Server::step`] is one *batched
//! decode iteration* —
//!
//! 1. **Admission.** Requests are popped from the queue head while the aggregate
//!    *projected* KV footprint of the running set plus the candidate fits the
//!    configured byte pool ([`ServerConfig::pool_bytes`]). Admission is strictly
//!    FIFO: a too-large head blocks the queue (no reordering), which keeps
//!    completion order deterministic and starvation-free. At most
//!    [`ServerConfig::prefills_per_step`] prefills run per step, modelling the
//!    prefill cost of a newly admitted request.
//! 2. **Decode.** Every running session advances by exactly one token, in
//!    admission order (round-robin at the granularity of a batched step).
//!    Finished sessions are retired into [`Completion`]s; failing sessions are
//!    retired into [`FailedRequest`]s — the scheduler never panics on a bad
//!    request.
//!
//! The *projected* footprint of a request is its steady-state decode footprint:
//! with a [`CacheBudgetSpec`], the per-layer capacity derived from the prompt
//! length; without one, the full `prompt + max_new_tokens` slots. Prefill
//! transiently exceeds the steady state for budgeted policies (the cache fills to
//! the whole prompt before the end-of-prompt eviction), exactly as in the paper;
//! size the pool with that headroom in mind (see `docs/SERVING.md`).
//!
//! This is what turns Keyformer's reduced KV footprint into throughput: at a
//! fixed pool, a 50% budget admits roughly twice the concurrent sequences, so
//! each batched step completes roughly twice the requests.

use crate::request::{Completion, FailedRequest, FailureReason, Request, RequestId};
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_core::CoreError;
use keyformer_model::model::TransformerModel;
use keyformer_model::session::Session;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Cache policy every admitted session runs.
    pub policy: PolicySpec,
    /// Relative KV budget applied per session (`None` = never evict).
    pub budget: Option<CacheBudgetSpec>,
    /// Aggregate projected-KV-byte pool shared by all running sessions.
    pub pool_bytes: usize,
    /// Hard cap on concurrently running sessions (defaults to unlimited).
    pub max_concurrency: usize,
    /// Prefills executed per scheduler step (defaults to 1).
    pub prefills_per_step: usize,
}

impl ServerConfig {
    /// A configuration with the given policy, per-session budget and byte pool,
    /// unlimited concurrency and one prefill per step.
    pub fn new(policy: PolicySpec, budget: Option<CacheBudgetSpec>, pool_bytes: usize) -> Self {
        ServerConfig {
            policy,
            budget,
            pool_bytes,
            max_concurrency: usize::MAX,
            prefills_per_step: 1,
        }
    }

    /// Caps the number of concurrently running sessions.
    pub fn with_max_concurrency(mut self, max: usize) -> Self {
        self.max_concurrency = max.max(1);
        self
    }

    /// Sets how many prefills may run per scheduler step.
    pub fn with_prefills_per_step(mut self, prefills: usize) -> Self {
        self.prefills_per_step = prefills.max(1);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the pool is empty or the policy
    /// spec itself does not build.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.pool_bytes == 0 {
            return Err(CoreError::InvalidConfig(
                "serving pool must be at least 1 byte".into(),
            ));
        }
        self.policy.build().map(|_| ())
    }
}

struct Pending {
    request: Request,
    submitted_step: usize,
}

struct Running<'m> {
    id: RequestId,
    session: Session<'m>,
    projected_bytes: usize,
    submitted_step: usize,
    admitted_step: usize,
}

/// Aggregate counters of one server's lifetime, used by the throughput
/// experiment and the serving bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ServerStats {
    /// Scheduler steps executed.
    pub steps: usize,
    /// Token-level decode steps executed (sum of batch sizes over steps).
    pub decode_steps: usize,
    /// Prefills executed.
    pub prefills: usize,
    /// Sum over steps of the live KV bytes at the end of the step (for means).
    pub live_kv_byte_steps: u64,
    /// Largest live KV byte footprint observed at the end of any step.
    pub peak_live_kv_bytes: usize,
    /// Largest number of concurrently running sessions observed.
    pub peak_concurrency: usize,
}

impl ServerStats {
    /// Mean live KV bytes at the end of a scheduler step.
    pub fn mean_live_kv_bytes(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.live_kv_byte_steps as f64 / self.steps as f64
        }
    }

    /// Mean decode batch size (token steps per scheduler step).
    pub fn mean_batch_size(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.decode_steps as f64 / self.steps as f64
        }
    }
}

/// A continuous-batching server over one shared model.
pub struct Server<'m> {
    model: &'m TransformerModel,
    config: ServerConfig,
    bytes_per_token: usize,
    queue: VecDeque<Pending>,
    running: Vec<Running<'m>>,
    completed: Vec<Completion>,
    failed: Vec<FailedRequest>,
    step: usize,
    stats: ServerStats,
}

impl<'m> Server<'m> {
    /// Creates a server over `model` with the given scheduling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid.
    pub fn new(model: &'m TransformerModel, config: ServerConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Server {
            bytes_per_token: model.empty_cache().bytes_per_token(),
            model,
            config,
            queue: VecDeque::new(),
            running: Vec::new(),
            completed: Vec::new(),
            failed: Vec::new(),
            step: 0,
            stats: ServerStats::default(),
        })
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Bytes one cached token occupies across the model's layers.
    pub fn bytes_per_token(&self) -> usize {
        self.bytes_per_token
    }

    /// Steady-state projected KV footprint of `request` under this server's
    /// budget: the per-layer slot capacity a running decode settles at, times the
    /// per-token byte cost.
    pub fn projected_kv_bytes(&self, request: &Request) -> usize {
        let slots = match self.config.budget {
            Some(spec) => spec.for_prompt_len(request.prompt.len()).capacity(),
            // Unbudgeted caches grow to the full sequence (the final generated
            // token is never fed back, hence the saturating decrement).
            None => request.prompt.len() + request.config.max_new_tokens.saturating_sub(1),
        };
        slots * self.bytes_per_token
    }

    /// Sum of projected footprints of the running sessions — the quantity
    /// admission holds below [`ServerConfig::pool_bytes`].
    pub fn reserved_bytes(&self) -> usize {
        self.running.iter().map(|r| r.projected_bytes).sum()
    }

    /// Actual live KV bytes across running sessions right now.
    pub fn live_kv_bytes(&self) -> usize {
        self.running.iter().map(|r| r.session.cache_bytes()).sum()
    }

    /// Number of requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Number of running sessions.
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// `true` once no work remains (queue empty, nothing running).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Scheduler steps executed so far.
    pub fn steps(&self) -> usize {
        self.step
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Completed requests, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completed
    }

    /// Requests retired without completing, in retirement order.
    pub fn failures(&self) -> &[FailedRequest] {
        &self.failed
    }

    /// Enqueues a request. Requests are admitted in submission (FIFO) order.
    pub fn submit(&mut self, request: Request) {
        self.queue.push_back(Pending {
            request,
            submitted_step: self.step,
        });
    }

    fn admit(&mut self) {
        let mut prefills = 0;
        while prefills < self.config.prefills_per_step
            && self.running.len() < self.config.max_concurrency
        {
            let Some(front) = self.queue.front() else {
                break;
            };
            let projected = self.projected_kv_bytes(&front.request);
            if projected > self.config.pool_bytes {
                // Can never fit, even alone: retire instead of deadlocking the
                // FIFO queue behind it.
                let pending = self.queue.pop_front().expect("front exists");
                self.failed.push(FailedRequest {
                    id: pending.request.id,
                    reason: FailureReason::TooLargeForPool {
                        projected_bytes: projected,
                        pool_bytes: self.config.pool_bytes,
                    },
                    step: self.step,
                });
                continue;
            }
            if self.reserved_bytes() + projected > self.config.pool_bytes {
                // FIFO: the head waits for memory; nothing behind it may jump.
                break;
            }
            let pending = self.queue.pop_front().expect("front exists");
            let policy = match self.config.policy.build() {
                Ok(policy) => policy,
                Err(e) => {
                    // Unreachable after validate(), but a config error must not
                    // take the server down.
                    self.failed.push(FailedRequest {
                        id: pending.request.id,
                        reason: FailureReason::Engine(e),
                        step: self.step,
                    });
                    continue;
                }
            };
            let mut session = Session::new(self.model, policy, self.config.budget);
            match session.begin(&pending.request.prompt, &pending.request.config) {
                Ok(()) => {
                    // Only a successful begin ran the forward passes, so only
                    // then does the request consume this step's prefill slot.
                    prefills += 1;
                    self.stats.prefills += 1;
                    self.running.push(Running {
                        id: pending.request.id,
                        session,
                        projected_bytes: projected,
                        submitted_step: pending.submitted_step,
                        admitted_step: self.step,
                    })
                }
                Err(e) => self.failed.push(FailedRequest {
                    id: pending.request.id,
                    reason: FailureReason::Engine(e),
                    step: self.step,
                }),
            }
        }
    }

    fn decode_round(&mut self) -> usize {
        let mut executed = 0;
        let mut i = 0;
        while i < self.running.len() {
            let running = &mut self.running[i];
            if running.session.is_decoding() {
                match running.session.step() {
                    Ok(_) => {
                        executed += 1;
                        self.stats.decode_steps += 1;
                    }
                    Err(e) => {
                        let running = self.running.remove(i);
                        self.failed.push(FailedRequest {
                            id: running.id,
                            reason: FailureReason::Engine(e),
                            step: self.step,
                        });
                        continue;
                    }
                }
            }
            if self.running[i].session.is_decoding() {
                i += 1;
            } else {
                let mut done = self.running.remove(i);
                let output = done
                    .session
                    .take_output()
                    .expect("finished session has an output");
                self.completed.push(Completion {
                    id: done.id,
                    output,
                    submitted_step: done.submitted_step,
                    admitted_step: done.admitted_step,
                    completed_step: self.step,
                });
            }
        }
        executed
    }

    /// Runs one batched scheduler step (admission + one decode token for every
    /// running session) and returns the number of token-level decode steps
    /// executed.
    pub fn step(&mut self) -> usize {
        self.step += 1;
        self.admit();
        let executed = self.decode_round();
        self.stats.steps += 1;
        self.stats.peak_concurrency = self.stats.peak_concurrency.max(self.running.len());
        let live = self.live_kv_bytes();
        self.stats.live_kv_byte_steps += live as u64;
        self.stats.peak_live_kv_bytes = self.stats.peak_live_kv_bytes.max(live);
        executed
    }

    /// Runs up to `max_steps` scheduler steps, stopping early once idle.
    /// Returns the number of steps actually executed.
    pub fn run(&mut self, max_steps: usize) -> usize {
        let mut executed = 0;
        while executed < max_steps && !self.is_idle() {
            self.step();
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_model::engine::InferenceEngine;
    use keyformer_model::families::ModelFamily;
    use keyformer_model::generation::GenerationConfig;

    fn prompt(len: usize, salt: u32) -> Vec<u32> {
        (0..len)
            .map(|i| (i as u32 * 13 + 5 + salt * 17) % 120)
            .collect()
    }

    fn keyformer_server(model: &TransformerModel, pool_tokens: usize) -> Server<'_> {
        let bytes = model.empty_cache().bytes_per_token();
        Server::new(
            model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool_tokens * bytes,
            ),
        )
        .unwrap()
    }

    #[test]
    fn empty_server_is_idle_and_stepping_is_harmless() {
        let model = ModelFamily::Tiny.build(1);
        let mut server = keyformer_server(&model, 64);
        assert!(server.is_idle());
        assert_eq!(server.step(), 0);
        assert!(server.completions().is_empty());
    }

    #[test]
    fn zero_pool_is_rejected() {
        let model = ModelFamily::Tiny.build(1);
        let config = ServerConfig::new(PolicySpec::Full, None, 0);
        assert!(Server::new(&model, config).is_err());
    }

    #[test]
    fn single_request_completes_identically_to_a_fresh_engine() {
        let model = ModelFamily::Tiny.build(2);
        let config = GenerationConfig::new(6);
        let mut server = keyformer_server(&model, 256);
        server.submit(Request::new(1, prompt(24, 0), config));
        server.run(64);
        assert!(server.is_idle());
        let completions = server.completions();
        assert_eq!(completions.len(), 1);
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let alone = engine.generate(&prompt(24, 0), &config);
        assert_eq!(completions[0].output, alone);
    }

    #[test]
    fn admission_respects_the_byte_pool() {
        let model = ModelFamily::Tiny.build(3);
        // Each request projects ceil(0.5 * 24) = 12 slots; a 30-slot pool fits
        // exactly two concurrently.
        let mut server = keyformer_server(&model, 30);
        for i in 0..4 {
            server.submit(Request::new(
                i,
                prompt(24, i as u32),
                GenerationConfig::new(5),
            ));
        }
        let mut max_running = 0;
        let mut max_reserved = 0;
        while !server.is_idle() {
            server.step();
            max_running = max_running.max(server.running());
            max_reserved = max_reserved.max(server.reserved_bytes());
            assert!(
                server.reserved_bytes() <= server.config().pool_bytes,
                "admission overshot the pool"
            );
        }
        assert_eq!(max_running, 2);
        assert_eq!(max_reserved, 2 * 12 * server.bytes_per_token());
        assert_eq!(server.completions().len(), 4);
        assert_eq!(server.stats().peak_concurrency, 2);
    }

    #[test]
    fn fifo_order_is_preserved_through_admission() {
        let model = ModelFamily::Tiny.build(4);
        // Pool fits one request at a time, so completions must follow submission
        // order exactly.
        let mut server = keyformer_server(&model, 12);
        for i in 0..3 {
            server.submit(Request::new(
                i,
                prompt(20, i as u32),
                GenerationConfig::new(4),
            ));
        }
        server.run(256);
        let ids: Vec<u64> = server.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        for c in server.completions() {
            assert!(c.admitted_step >= c.submitted_step);
            assert!(c.completed_step > c.admitted_step || c.output.generated.len() <= 1);
            assert!(c.latency_steps() >= c.queue_steps());
        }
    }

    #[test]
    fn oversized_and_malformed_requests_fail_without_panicking() {
        let model = ModelFamily::Tiny.build(5);
        let mut server = keyformer_server(&model, 8);
        // Projected 0.5 * 200 = 100 slots > 8-slot pool: rejected outright.
        server.submit(Request::new(1, prompt(200, 1), GenerationConfig::new(4)));
        // Empty prompt: engine error at prefill.
        server.submit(Request::new(2, Vec::new(), GenerationConfig::new(4)));
        // Out-of-vocabulary prompt: engine error at prefill.
        server.submit(Request::new(3, vec![9_999], GenerationConfig::new(4)));
        // A well-formed request behind the bad ones still completes.
        server.submit(Request::new(4, prompt(14, 4), GenerationConfig::new(3)));
        server.run(64);
        assert!(server.is_idle());
        assert_eq!(server.failures().len(), 3);
        assert!(matches!(
            server.failures()[0].reason,
            FailureReason::TooLargeForPool { .. }
        ));
        assert!(matches!(
            server.failures()[1].reason,
            FailureReason::Engine(_)
        ));
        assert_eq!(server.completions().len(), 1);
        assert_eq!(server.completions()[0].id.raw(), 4);
        // Rejected requests never ran a forward pass, so they must not count as
        // prefills nor consume the step's prefill slot ahead of the valid one.
        assert_eq!(server.stats().prefills, 1);
        assert_eq!(server.completions()[0].admitted_step, 1);
    }

    #[test]
    fn smaller_budgets_admit_more_concurrent_sessions() {
        let model = ModelFamily::Tiny.build(6);
        let bytes = model.empty_cache().bytes_per_token();
        let pool = 64 * bytes;
        let run_with = |budget: Option<CacheBudgetSpec>| {
            let mut server = Server::new(
                &model,
                ServerConfig::new(PolicySpec::keyformer_default(), budget, pool),
            )
            .unwrap();
            for i in 0..6 {
                server.submit(Request::new(
                    i,
                    prompt(32, i as u32),
                    GenerationConfig::new(6),
                ));
            }
            server.run(512);
            assert_eq!(server.completions().len(), 6);
            server.stats().peak_concurrency
        };
        let full = run_with(None);
        let half = run_with(Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()));
        assert!(
            half > full,
            "50% budget should admit more sessions (full {full}, half {half})"
        );
    }

    #[test]
    fn stats_track_batches_and_bytes() {
        let model = ModelFamily::Tiny.build(7);
        let mut server = keyformer_server(&model, 256);
        for i in 0..3 {
            server.submit(Request::new(
                i,
                prompt(16, i as u32),
                GenerationConfig::new(4),
            ));
        }
        server.run(64);
        let stats = server.stats();
        assert_eq!(stats.prefills, 3);
        // 3 requests x 4 tokens; each request's final token costs a decode step
        // but no forward, so all 12 are counted.
        assert_eq!(stats.decode_steps, 12);
        assert!(stats.mean_batch_size() > 0.0);
        assert!(stats.mean_live_kv_bytes() > 0.0);
        assert!(stats.peak_live_kv_bytes > 0);
    }
}

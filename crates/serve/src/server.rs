//! The batch-oriented compatibility facade over the event-driven [`Engine`].
//!
//! [`Server`] is the pre-engine serving API: a FIFO (or
//! shortest-prefill-first) admission queue, block-reservation admission
//! against a shared paged pool, chunked prefill, copy-on-write prefix sharing
//! and preemption under pressure — all documented in detail on [`Engine`],
//! which owns the single scheduling implementation. Under the default
//! [`crate::AdmissionOrder::Fifo`] the facade schedules **bit-identically**
//! to the pre-engine scheduler (every submission carries the default
//! priority, and priority aging never reorders a single-level queue; the
//! serving/paging/prefix BENCH artefacts regenerate byte-for-byte).
//! [`crate::AdmissionOrder::ShortestPrefillFirst`] now *ages* — each queued
//! step shrinks a request's effective remaining-prefill key — an intentional
//! anti-starvation change from the earlier SPF behaviour. The facade differs
//! from the engine only in its interaction model:
//!
//! * [`Server::submit`] returns `()` instead of a [`crate::RequestHandle`] —
//!   results are harvested retrospectively from [`Server::completions`] after
//!   the [`Server::step`] loop, exactly as before;
//! * event recording is disabled ([`Engine::record_events`]), so driving a
//!   server for millions of steps without draining anything never grows a
//!   buffer.
//!
//! The facade inherits the engine's plan → execute → commit decode pipeline
//! unchanged: [`ServerConfig::with_decode_workers`] widens the per-step
//! worker pool and the completions stay byte-identical at any width (the
//! scheduler itself stays serialized — see the [`Engine`] docs).
//!
//! New code that wants streaming per-token [`crate::Event`]s, mid-flight
//! [`Engine::cancel`], [`crate::SubmitOptions`] priorities or deadlines
//! should use [`Engine`] directly (`docs/SERVING.md` has a migration note);
//! [`Server::engine`]/[`Server::engine_mut`]/[`Server::into_engine`] expose
//! the wrapped engine for incremental migration.
//!
//! The admission *reservation* of a request is its steady-state decode
//! footprint in blocks: with a [`CacheBudgetSpec`], the per-layer capacity
//! derived from the prompt length; without one, the full
//! `prompt + max_new_tokens` slots — each rounded up to whole blocks per
//! layer. Prefill transiently exceeds the steady state for budgeted policies
//! (the cache fills to the whole prompt before the end-of-prompt eviction),
//! exactly as in the paper. Under the default
//! [`OvercommitPolicy::AllowTransient`] discipline that spike is absorbed and
//! *measured* ([`BlockPoolStats::peak_overshoot`]); with
//! [`ServerConfig::with_strict_pool`] it is *enforced* — allocations past the
//! pool hard-stop, chunked prefill pauses, and in-use blocks provably never
//! exceed the pool (see `docs/SERVING.md`).
//!
//! This is what turns Keyformer's reduced KV footprint into throughput: at a
//! fixed pool, a 50% budget reserves roughly half the blocks per sequence, so
//! the same pool runs roughly twice the batch — and blocks freed by an
//! eviction are instantly reusable by any other sequence instead of being
//! stranded in a contiguous per-sequence buffer.
//!
//! [`CacheBudgetSpec`]: keyformer_core::budget::CacheBudgetSpec
//! [`OvercommitPolicy::AllowTransient`]: keyformer_core::block::OvercommitPolicy::AllowTransient
//! [`BlockPoolStats::peak_overshoot`]: keyformer_core::block::BlockPoolStats::peak_overshoot

use crate::engine::{Engine, ServerConfig, ServerStats, StepReport};
use crate::request::{Completion, FailedRequest, Request, RequestId};
use keyformer_core::block::{BlockPoolStats, SharedBlockPool};
use keyformer_core::prefix::{PrefixRegistryStats, SharedPrefixRegistry};
use keyformer_core::CoreError;
use keyformer_model::model::TransformerModel;

/// A continuous-batching server over one shared model and one shared block
/// pool: the batch-oriented facade over [`Engine`] (see the [module
/// docs](self)).
pub struct Server<'m> {
    engine: Engine<'m>,
}

impl<'m> Server<'m> {
    /// Creates a server over `model` with the given scheduling configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the configuration is invalid or
    /// the byte pool is smaller than a single block.
    pub fn new(model: &'m TransformerModel, config: ServerConfig) -> Result<Self, CoreError> {
        let mut engine = Engine::new(model, config)?;
        // Batch drivers harvest completions(); nothing drains events, so
        // recording them would grow an unbounded buffer.
        engine.record_events(false);
        Ok(Server { engine })
    }

    /// The wrapped [`Engine`] (read-only).
    pub fn engine(&self) -> &Engine<'m> {
        &self.engine
    }

    /// The wrapped [`Engine`], mutably — e.g. to re-enable event recording or
    /// cancel a request from code that otherwise drives the batch API.
    pub fn engine_mut(&mut self) -> &mut Engine<'m> {
        &mut self.engine
    }

    /// Unwraps the facade into the [`Engine`] it drives (event recording
    /// stays off until [`Engine::record_events`] re-enables it).
    pub fn into_engine(self) -> Engine<'m> {
        self.engine
    }

    /// The scheduling configuration.
    pub fn config(&self) -> &ServerConfig {
        self.engine.config()
    }

    /// Bytes one cached token occupies across the model's layers.
    pub fn bytes_per_token(&self) -> usize {
        self.engine.bytes_per_token()
    }

    /// Bytes one block (of one layer) occupies.
    pub fn bytes_per_block(&self) -> usize {
        self.engine.bytes_per_block()
    }

    /// The block capacity the byte pool converts to.
    pub fn total_blocks(&self) -> usize {
        self.engine.total_blocks()
    }

    /// The shared block pool every running session allocates from.
    pub fn pool(&self) -> &SharedBlockPool {
        self.engine.pool()
    }

    /// Snapshot of the pool's allocator accounting.
    pub fn pool_stats(&self) -> BlockPoolStats {
        self.engine.pool_stats()
    }

    /// The prefix registry, when [`ServerConfig::prefix_sharing`] is enabled.
    pub fn prefix_registry(&self) -> Option<&SharedPrefixRegistry> {
        self.engine.prefix_registry()
    }

    /// The registry's counters, when prefix sharing is enabled.
    pub fn registry_stats(&self) -> Option<PrefixRegistryStats> {
        self.engine.registry_stats()
    }

    /// Prompt tokens of `request` a prefix-cache attach would reuse right now
    /// (full blocks only, and never the final prompt token). 0 without prefix
    /// sharing.
    pub fn reusable_prefix_tokens(&self, request: &Request) -> usize {
        self.engine.reusable_prefix_tokens(request)
    }

    /// Prompt tokens `request` would still have to forward at admission, after
    /// any prefix-cache reuse.
    pub fn remaining_prefill_tokens(&self, request: &Request) -> usize {
        self.engine.remaining_prefill_tokens(request)
    }

    /// Blocks reserved for `request` at admission: its steady-state slots
    /// rounded up to whole blocks, per layer.
    pub fn reserved_blocks_for(&self, request: &Request) -> usize {
        self.engine.reserved_blocks_for(request)
    }

    /// Worst-case blocks `request` ever holds, including the prefill
    /// transient.
    pub fn peak_blocks_for(&self, request: &Request) -> usize {
        self.engine.peak_blocks_for(request)
    }

    /// Blocks admission actually reserves for `request`; see
    /// [`Engine::admission_reservation`].
    pub fn admission_reservation(&self, request: &Request) -> usize {
        self.engine.admission_reservation(request)
    }

    /// Steady-state byte reservation of `request` at block granularity.
    pub fn projected_kv_bytes(&self, request: &Request) -> usize {
        self.engine.projected_kv_bytes(request)
    }

    /// Bytes currently reserved by admitted requests, at block granularity.
    pub fn reserved_bytes(&self) -> usize {
        self.engine.reserved_bytes()
    }

    /// Actual live KV bytes across running sessions right now.
    pub fn live_kv_bytes(&self) -> usize {
        self.engine.live_kv_bytes()
    }

    /// Live token slots in *physical* blocks right now; see
    /// [`Engine::physical_live_slots`].
    pub fn physical_live_slots(&self) -> usize {
        self.engine.physical_live_slots()
    }

    /// Number of requests waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.engine.queued()
    }

    /// Number of running sessions.
    pub fn running(&self) -> usize {
        self.engine.running()
    }

    /// `true` once no work remains (queue empty, nothing running).
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// Scheduler steps executed so far.
    pub fn steps(&self) -> usize {
        self.engine.steps()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        self.engine.stats()
    }

    /// Completed requests, in completion order.
    pub fn completions(&self) -> &[Completion] {
        self.engine.completions()
    }

    /// Requests retired without completing, in retirement order.
    pub fn failures(&self) -> &[FailedRequest] {
        self.engine.failures()
    }

    /// Enqueues a request, validating its per-request overrides. Requests are
    /// admitted in submission (FIFO) order under the default
    /// [`crate::AdmissionOrder`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the request's overrides are
    /// invalid (a policy spec that does not build, or a budget override
    /// combined with `unbudgeted`); the request is not enqueued.
    pub fn submit(&mut self, request: Request) -> Result<(), CoreError> {
        self.engine.submit(request).map(|_| ())
    }

    /// Cancels an in-flight request; see [`Engine::cancel`].
    pub fn cancel(&mut self, id: RequestId) -> bool {
        self.engine.cancel(id)
    }

    /// Runs one batched scheduler step — prefill continuation, pressure relief
    /// (registry trim / preemption), admission, and one decode token for every
    /// running session past its prefill — and reports what happened plus an
    /// end-of-step memory snapshot.
    pub fn step(&mut self) -> StepReport {
        self.engine.step()
    }

    /// Runs up to `max_steps` scheduler steps, stopping early once idle.
    /// Returns the number of steps actually executed.
    pub fn run(&mut self, max_steps: usize) -> usize {
        self.engine.run(max_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AdmissionOrder;
    use crate::request::FailureReason;
    use keyformer_core::budget::CacheBudgetSpec;
    use keyformer_core::spec::PolicySpec;
    use keyformer_model::engine::InferenceEngine;
    use keyformer_model::families::ModelFamily;
    use keyformer_model::generation::GenerationConfig;

    fn prompt(len: usize, salt: u32) -> Vec<u32> {
        (0..len)
            .map(|i| (i as u32 * 13 + 5 + salt * 17) % 120)
            .collect()
    }

    /// 4-slot blocks so the small test pools quantise tightly: with the Tiny
    /// model's budgets below, reservations land exactly on block boundaries.
    fn keyformer_server(model: &TransformerModel, pool_tokens: usize) -> Server<'_> {
        let bytes = model.empty_cache().bytes_per_token();
        Server::new(
            model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                pool_tokens * bytes,
            )
            .with_block_size(4),
        )
        .unwrap()
    }

    #[test]
    fn empty_server_is_idle_and_stepping_is_harmless() {
        let model = ModelFamily::Tiny.build(1);
        let mut server = keyformer_server(&model, 64);
        assert!(server.is_idle());
        let report = server.step();
        assert_eq!(report.decode_steps, 0);
        assert_eq!(report.admitted, 0);
        assert_eq!(report.utilization(), 1.0, "empty pool is not fragmented");
        assert!(report.registry.is_none(), "sharing is off by default");
        assert!(server.completions().is_empty());
    }

    #[test]
    fn facade_disables_event_recording() {
        let model = ModelFamily::Tiny.build(1);
        let mut server = keyformer_server(&model, 64);
        assert!(!server.engine().is_recording_events());
        server
            .submit(Request::new(1, prompt(12, 0), GenerationConfig::new(2)))
            .unwrap();
        server.run(64);
        assert_eq!(server.engine().pending_events(), 0, "no buffered events");
        assert_eq!(server.engine_mut().drain_events(), vec![]);
        // The wrapped engine remains reachable for incremental migration.
        let engine = server.into_engine();
        assert_eq!(engine.completions().len(), 1);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let model = ModelFamily::Tiny.build(1);
        // Zero-byte pool.
        assert!(Server::new(&model, ServerConfig::new(PolicySpec::Full, None, 0)).is_err());
        // Pool smaller than a single block.
        let bytes = model.empty_cache().bytes_per_token();
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, bytes).with_block_size(64),
        )
        .is_err());
        // Zero block size.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_block_size(0),
        )
        .is_err());
        // Zero prefill chunk.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_prefill_chunk(0),
        )
        .is_err());
        // Strict pools require chunked prefill.
        assert!(Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_strict_pool(true),
        )
        .is_err());
    }

    #[test]
    fn zero_prefills_per_step_is_rejected_not_clamped() {
        let model = ModelFamily::Tiny.build(1);
        let bytes = model.empty_cache().bytes_per_token();
        let config =
            ServerConfig::new(PolicySpec::Full, None, 64 * bytes).with_prefills_per_step(0);
        assert_eq!(config.prefills_per_step, 0, "builder must not clamp");
        let err = Server::new(&model, config).map(|_| ()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn single_request_completes_identically_to_a_fresh_engine() {
        let model = ModelFamily::Tiny.build(2);
        let config = GenerationConfig::new(6);
        let mut server = keyformer_server(&model, 256);
        server
            .submit(Request::new(1, prompt(24, 0), config))
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        let completions = server.completions();
        assert_eq!(completions.len(), 1);
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
        );
        let alone = engine.generate(&prompt(24, 0), &config);
        assert_eq!(completions[0].output, alone);
        // Retirement returned every block to the pool.
        assert_eq!(server.pool().blocks_in_use(), 0);
        assert_eq!(server.pool().blocks_reserved(), 0);
    }

    #[test]
    fn admission_respects_the_block_pool() {
        let model = ModelFamily::Tiny.build(3);
        // Each request reserves ceil(0.5 * 24) = 12 slots = 3 blocks per layer
        // (block size 4, 2 layers => 6 blocks each); a 30-token pool converts
        // to 15 blocks and therefore fits exactly two requests concurrently.
        let mut server = keyformer_server(&model, 30);
        assert_eq!(server.total_blocks(), 15);
        for i in 0..4 {
            server
                .submit(Request::new(
                    i,
                    prompt(24, i as u32),
                    GenerationConfig::new(5),
                ))
                .unwrap();
        }
        let mut max_running = 0;
        let mut max_reserved = 0;
        while !server.is_idle() {
            server.step();
            max_running = max_running.max(server.running());
            max_reserved = max_reserved.max(server.reserved_bytes());
            assert!(
                server.reserved_bytes() <= server.config().pool_bytes,
                "admission overshot the pool"
            );
        }
        assert_eq!(max_running, 2);
        assert_eq!(max_reserved, 2 * 12 * server.bytes_per_token());
        assert_eq!(server.completions().len(), 4);
        assert_eq!(server.stats().peak_concurrency, 2);
        assert_eq!(server.pool().blocks_in_use(), 0, "pool drained at idle");
    }

    #[test]
    fn fifo_order_is_preserved_through_admission() {
        let model = ModelFamily::Tiny.build(4);
        // Pool fits one request at a time, so completions must follow submission
        // order exactly.
        let mut server = keyformer_server(&model, 12);
        for i in 0..3 {
            server
                .submit(Request::new(
                    i,
                    prompt(20, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        server.run(256);
        let ids: Vec<u64> = server.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        for c in server.completions() {
            assert!(c.admitted_step >= c.submitted_step);
            assert!(c.completed_step > c.admitted_step || c.output.generated.len() <= 1);
            assert!(c.latency_steps() >= c.queue_steps());
        }
    }

    #[test]
    fn oversized_and_malformed_requests_fail_without_panicking() {
        let model = ModelFamily::Tiny.build(5);
        let mut server = keyformer_server(&model, 8);
        // Reserved 0.5 * 200 = 100 slots/layer > 2-block/layer pool: rejected outright.
        server
            .submit(Request::new(1, prompt(200, 1), GenerationConfig::new(4)))
            .unwrap();
        // Empty prompt: engine error at prefill.
        server
            .submit(Request::new(2, Vec::new(), GenerationConfig::new(4)))
            .unwrap();
        // Out-of-vocabulary prompt: engine error at prefill.
        server
            .submit(Request::new(3, vec![9_999], GenerationConfig::new(4)))
            .unwrap();
        // A well-formed request behind the bad ones still completes.
        server
            .submit(Request::new(4, prompt(14, 4), GenerationConfig::new(3)))
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        assert_eq!(server.failures().len(), 3);
        assert!(matches!(
            server.failures()[0].reason,
            FailureReason::TooLargeForPool { .. }
        ));
        assert!(matches!(
            server.failures()[1].reason,
            FailureReason::Engine(_)
        ));
        assert_eq!(server.completions().len(), 1);
        assert_eq!(server.completions()[0].id.raw(), 4);
        // Rejected requests never ran a forward pass, so they must not count as
        // prefills nor consume the step's prefill slot ahead of the valid one.
        assert_eq!(server.stats().prefills, 1);
        assert_eq!(server.completions()[0].admitted_step, 1);
        assert_eq!(server.pool().blocks_reserved(), 0, "no reservation leaked");
    }

    #[test]
    fn smaller_budgets_admit_more_concurrent_sessions() {
        let model = ModelFamily::Tiny.build(6);
        let bytes = model.empty_cache().bytes_per_token();
        let pool = 64 * bytes;
        let run_with = |budget: Option<CacheBudgetSpec>| {
            let mut server = Server::new(
                &model,
                ServerConfig::new(PolicySpec::keyformer_default(), budget, pool).with_block_size(4),
            )
            .unwrap();
            for i in 0..6 {
                server
                    .submit(Request::new(
                        i,
                        prompt(32, i as u32),
                        GenerationConfig::new(6),
                    ))
                    .unwrap();
            }
            server.run(512);
            assert_eq!(server.completions().len(), 6);
            server.stats().peak_concurrency
        };
        let full = run_with(None);
        let half = run_with(Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()));
        assert!(
            half > full,
            "50% budget should admit more sessions (full {full}, half {half})"
        );
    }

    #[test]
    fn stats_track_batches_bytes_and_utilization() {
        let model = ModelFamily::Tiny.build(7);
        let mut server = keyformer_server(&model, 256);
        for i in 0..3 {
            server
                .submit(Request::new(
                    i,
                    prompt(16, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        server.run(64);
        let stats = server.stats();
        assert_eq!(stats.prefills, 3);
        assert_eq!(stats.prefill_chunks, 3, "one-shot: one chunk per prefill");
        // 3 requests x 4 tokens; each request's final token costs a decode step
        // but no forward, so all 12 are counted.
        assert_eq!(stats.decode_steps, 12);
        assert!(stats.mean_batch_size() > 0.0);
        assert!(stats.mean_live_kv_bytes() > 0.0);
        assert!(stats.peak_live_kv_bytes > 0);
        let utilization = stats.mean_pool_utilization();
        assert!(
            utilization > 0.5 && utilization <= 1.0,
            "implausible utilization {utilization}"
        );
        let pool_stats = server.pool_stats();
        assert!(pool_stats.total_allocs >= pool_stats.total_frees);
        assert_eq!(pool_stats.in_use, 0);
    }

    #[test]
    fn invalid_overrides_are_rejected_at_submit_time() {
        let model = ModelFamily::Tiny.build(8);
        let mut server = keyformer_server(&model, 64);
        let bad_policy = Request::new(1, prompt(10, 0), GenerationConfig::new(2))
            .with_policy(PolicySpec::Damped { alpha: 0.0 });
        assert!(server.submit(bad_policy).is_err());
        let mut contradictory = Request::new(2, prompt(10, 0), GenerationConfig::new(2));
        contradictory.overrides.budget = Some(CacheBudgetSpec::new(0.5, 0.3).unwrap());
        contradictory.overrides.unbudgeted = true;
        assert!(server.submit(contradictory).is_err());
        assert_eq!(server.queued(), 0, "rejected requests are not enqueued");
    }

    #[test]
    fn per_request_overrides_take_effect() {
        let model = ModelFamily::Tiny.build(9);
        let bytes = model.empty_cache().bytes_per_token();
        // Server default: full attention, unbudgeted.
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 512 * bytes).with_block_size(4),
        )
        .unwrap();
        let tight = CacheBudgetSpec::new(0.25, 0.3).unwrap();
        let config = GenerationConfig::new(4);
        server
            .submit(Request::new(0, prompt(32, 0), config))
            .unwrap();
        server
            .submit(
                Request::new(1, prompt(32, 0), config)
                    .with_policy(PolicySpec::keyformer_default())
                    .with_budget(tight),
            )
            .unwrap();
        server.run(64);
        assert!(server.is_idle());
        assert_eq!(server.completions().len(), 2);
        let by_id = |id: u64| {
            server
                .completions()
                .iter()
                .find(|c| c.id.raw() == id)
                .unwrap()
        };
        let default_slots = by_id(0).output.final_cache_slots.clone();
        let overridden_slots = by_id(1).output.final_cache_slots.clone();
        assert!(default_slots.iter().all(|&n| n == 35), "{default_slots:?}");
        assert!(
            overridden_slots.iter().all(|&n| n <= 8),
            "override budget ignored: {overridden_slots:?}"
        );
        // The overridden request matches a standalone engine with the same
        // policy + budget.
        let mut engine = InferenceEngine::new(
            &model,
            PolicySpec::keyformer_default().build().unwrap(),
            Some(tight),
        );
        assert_eq!(by_id(1).output, engine.generate(&prompt(32, 0), &config));
        // And the unbudgeted override works in the other direction.
        let mut budgeted_server = keyformer_server(&model, 512);
        budgeted_server
            .submit(Request::new(7, prompt(32, 0), config).with_unbudgeted())
            .unwrap();
        budgeted_server.run(64);
        assert!(budgeted_server.completions()[0]
            .output
            .final_cache_slots
            .iter()
            .all(|&n| n == 35));
    }

    #[test]
    fn chunked_prefill_serves_identically_and_spreads_prefill_cost() {
        let model = ModelFamily::Tiny.build(10);
        let bytes = model.empty_cache().bytes_per_token();
        let pool = 128 * bytes;
        let base = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            pool,
        )
        .with_block_size(4);
        let run = |config: ServerConfig| {
            let mut server = Server::new(&model, config).unwrap();
            for i in 0..4 {
                server
                    .submit(Request::new(
                        i,
                        prompt(28, i as u32),
                        GenerationConfig::new(5),
                    ))
                    .unwrap();
            }
            server.run(1024);
            assert!(server.is_idle());
            assert!(server.failures().is_empty());
            let mut completions = server.completions().to_vec();
            completions.sort_by_key(|c| c.id);
            (completions, *server.stats())
        };
        let (one_shot, one_shot_stats) = run(base);
        let (chunked, chunked_stats) = run(base.with_prefill_chunk(7));
        assert_eq!(one_shot.len(), chunked.len());
        for (a, b) in one_shot.iter().zip(&chunked) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.output, b.output,
                "chunked prefill changed request {} output",
                a.id
            );
        }
        // A 28-token prompt at 7 tokens per chunk costs 4 prefill work units.
        assert_eq!(chunked_stats.prefills, 4);
        assert_eq!(chunked_stats.prefill_chunks, 16);
        assert_eq!(one_shot_stats.prefill_chunks, 4);
        // Chunked prefill spreads the prompt over steps, so completion comes
        // later in scheduler-step terms...
        assert!(chunked[0].completed_step > one_shot[0].completed_step);
        // ...but no single step ever forwards more than chunk + batch tokens,
        // where the one-shot server forwards prompt_len + batch in its
        // admission step. (The per-step ceiling is what chunking buys.)
    }

    #[test]
    fn strict_pool_never_exceeds_capacity_and_still_drains() {
        let model = ModelFamily::Tiny.build(11);
        let bytes = model.empty_cache().bytes_per_token();
        // Tight pool: a 24-token unbudgeted request needs 12 of 16 blocks at
        // its peak, so prefills must pause while decoders hold blocks.
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::Full, None, 32 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(6)
                .with_strict_pool(true),
        )
        .unwrap();
        let capacity = server.total_blocks();
        for i in 0..5 {
            server
                .submit(Request::new(
                    i,
                    prompt(20, i as u32),
                    GenerationConfig::new(4),
                ))
                .unwrap();
        }
        while !server.is_idle() {
            server.step();
            assert!(
                server.pool().blocks_in_use() <= capacity,
                "strict pool overshot: {} > {capacity}",
                server.pool().blocks_in_use()
            );
        }
        assert_eq!(server.completions().len(), 5);
        assert!(server.failures().is_empty());
        assert_eq!(server.pool_stats().peak_overshoot(), 0);
        // Every completion still matches the sequential engine.
        let mut engine = InferenceEngine::new(&model, PolicySpec::Full.build().unwrap(), None);
        let alone = engine
            .try_generate(&prompt(20, 0), &GenerationConfig::new(4))
            .unwrap();
        assert_eq!(server.completions()[0].output, alone);
    }

    #[test]
    fn strict_prefill_transient_cannot_starve_a_decoders_reservation() {
        // Regression: with a block-aligned budget (capacity 8, block size 4) a
        // decoder's strict reservation is ceil(9/4) = 3 blocks per layer but
        // its steady occupancy is 2 — one reserved block per layer sits
        // unallocated between steps. A later prefill's transient must pause
        // before eating those blocks, or the decoder's capacity+1 append fails
        // and an admitted request dies as a spurious PoolExhausted failure.
        let model = ModelFamily::Tiny.build(13);
        let bytes = model.empty_cache().bytes_per_token();
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                28 * bytes, // 14 blocks of 4 slots
            )
            .with_block_size(4)
            .with_prefill_chunk(4)
            .with_strict_pool(true),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 14);
        // A decodes (capacity 8, reservation 6 blocks) while B's 24-token
        // prompt (peak 12 blocks, reservation 8) prefills alongside it.
        server
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(6)))
            .unwrap();
        server
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        let capacity = server.total_blocks();
        while !server.is_idle() {
            server.step();
            assert!(server.pool().blocks_in_use() <= capacity);
        }
        assert!(
            server.failures().is_empty(),
            "reserved decoder blocks were stolen by a prefill transient: {:?}",
            server.failures()
        );
        assert_eq!(server.completions().len(), 2);
        assert!(
            server.stats().prefill_stalls > 0,
            "the scenario must actually exercise a stalled prefill"
        );
        assert_eq!(server.pool_stats().peak_overshoot(), 0);
    }

    /// Requests sharing an L-token prefix, each with a unique suffix.
    fn shared_prefix_requests(
        num: usize,
        prefix_len: usize,
        total_len: usize,
        gen: usize,
    ) -> Vec<Request> {
        (0..num)
            .map(|i| {
                let mut p: Vec<u32> = (0..prefix_len).map(|t| (t as u32 * 13 + 7) % 120).collect();
                p.extend(
                    (prefix_len..total_len)
                        .map(|t| (t as u32 * 13 + 7 + (i as u32 + 1) * 31) % 120),
                );
                Request::new(i as u64, p, GenerationConfig::new(gen))
            })
            .collect()
    }

    #[test]
    fn prefix_sharing_reuses_blocks_and_keeps_outputs_identical() {
        let model = ModelFamily::Tiny.build(14);
        let bytes = model.empty_cache().bytes_per_token();
        let base = ServerConfig::new(
            PolicySpec::keyformer_default(),
            Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
            96 * bytes,
        )
        .with_block_size(4)
        .with_prefill_chunk(8);
        let run = |config: ServerConfig| {
            let mut server = Server::new(&model, config).unwrap();
            for r in shared_prefix_requests(4, 16, 28, 4) {
                server.submit(r).unwrap();
            }
            server.run(512);
            assert!(server.is_idle());
            assert!(server.failures().is_empty());
            let mut completions = server.completions().to_vec();
            completions.sort_by_key(|c| c.id);
            (completions, *server.stats(), server.pool_stats())
        };
        let (cold, cold_stats, _) = run(base);
        let (shared, shared_stats, shared_pool) = run(base.with_prefix_sharing(true));
        assert_eq!(cold.len(), shared.len());
        for (a, b) in cold.iter().zip(&shared) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.output, b.output,
                "sharing changed request {} output",
                a.id
            );
        }
        // The first request is the cold donor; every later one attaches the
        // 16-token prefix.
        assert_eq!(shared[0].prefix_tokens_reused, 0);
        for c in &shared[1..] {
            assert_eq!(c.prefix_tokens_reused, 16, "request {}", c.id);
        }
        assert_eq!(shared_stats.prefix_tokens_reused, 3 * 16);
        assert_eq!(cold_stats.prefix_tokens_reused, 0);
        assert!(
            shared_stats.prefill_chunks < cold_stats.prefill_chunks,
            "attached prefixes must skip prefill work ({} vs {})",
            shared_stats.prefill_chunks,
            cold_stats.prefill_chunks
        );
        assert!(
            shared_pool.peak_shared_blocks > 0,
            "shared mappings must show up in the pool accounting"
        );
    }

    #[test]
    fn shortest_prefill_first_reorders_admission_only() {
        let model = ModelFamily::Tiny.build(15);
        // Pool fits one request at a time so admission order == completion
        // order.
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                12 * model.empty_cache().bytes_per_token(),
            )
            .with_block_size(4)
            .with_admission_order(AdmissionOrder::ShortestPrefillFirst),
        )
        .unwrap();
        // Long, short, medium — SPF admits short prompts first.
        for (id, len) in [(0u64, 24usize), (1, 8), (2, 16)] {
            server
                .submit(Request::new(
                    id,
                    prompt(len, id as u32),
                    GenerationConfig::new(2),
                ))
                .unwrap();
        }
        server.run(256);
        assert!(server.is_idle());
        let ids: Vec<u64> = server.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        // The same workload under FIFO preserves submission order.
        let mut fifo = keyformer_server(&model, 12);
        for (id, len) in [(0u64, 24usize), (1, 8), (2, 16)] {
            fifo.submit(Request::new(
                id,
                prompt(len, id as u32),
                GenerationConfig::new(2),
            ))
            .unwrap();
        }
        fifo.run(256);
        let ids: Vec<u64> = fifo.completions().iter().map(|c| c.id.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn step_reports_surface_memory_state() {
        let model = ModelFamily::Tiny.build(16);
        let bytes = model.empty_cache().bytes_per_token();
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                96 * bytes,
            )
            .with_block_size(4)
            .with_prefix_sharing(true),
        )
        .unwrap();
        for r in shared_prefix_requests(2, 16, 24, 3) {
            server.submit(r).unwrap();
        }
        let first = server.step();
        assert_eq!(first.step, 1);
        assert_eq!(first.admitted, 1, "one prefill slot per step");
        assert!(first.allocated_slots > 0);
        assert!(first.live_slots > 0);
        assert!(first.utilization() > 0.0 && first.utilization() <= 1.0);
        assert!((first.fragmentation() + first.utilization() - 1.0).abs() < 1e-12);
        assert_eq!(first.pool.in_use * 4, first.allocated_slots);
        let registry = first.registry.expect("sharing is on");
        assert!(registry.entries > 0, "donor registered its prompt blocks");
        assert_eq!(registry.hits, 0, "nothing attached yet");
        let second = server.step();
        assert_eq!(second.admitted, 1);
        assert_eq!(
            second.registry.unwrap().hits,
            1,
            "second admission attached the donor's prefix"
        );
        server.run(256);
        assert!(server.is_idle());
        // The registry keeps pinning prefix blocks after retirement...
        assert!(server.pool().blocks_in_use() > 0);
        assert!(server.registry_stats().unwrap().blocks_held > 0);
        // ...until it is cleared, which drains the pool completely.
        server.prefix_registry().unwrap().clear();
        assert_eq!(server.pool().blocks_in_use(), 0);
    }

    #[test]
    fn dry_strict_pool_preempts_youngest_and_still_completes_everything() {
        let model = ModelFamily::Tiny.build(17);
        let bytes = model.empty_cache().bytes_per_token();
        // A long-decoding budgeted session (admitted first, holding its blocks
        // for many steps) shares a 14-block strict pool with a 24-token
        // prompt whose prefill transient (12 blocks) cannot fit alongside it.
        // The prefill stalls step after step; after PREEMPT_AFTER_STALLS the
        // scheduler must swap the *youngest other* session out (here: the
        // decoder) rather than let the older prefill starve indefinitely.
        let budget = CacheBudgetSpec::new(0.5, 0.3).unwrap();
        let mut server = Server::new(
            &model,
            ServerConfig::new(PolicySpec::keyformer_default(), Some(budget), 28 * bytes)
                .with_block_size(4)
                .with_prefill_chunk(4)
                .with_strict_pool(true),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 14);
        server
            .submit(Request::new(0, prompt(16, 0), GenerationConfig::new(24)))
            .unwrap();
        server
            .submit(Request::new(1, prompt(24, 1), GenerationConfig::new(4)))
            .unwrap();
        let capacity = server.total_blocks();
        let mut preempted = 0;
        for _ in 0..2_000 {
            if server.is_idle() {
                break;
            }
            let report = server.step();
            preempted += report.preempted;
            assert!(server.pool().blocks_in_use() <= capacity);
        }
        assert!(server.is_idle(), "scheduler failed to drain");
        assert_eq!(server.completions().len(), 2, "{:?}", server.failures());
        assert!(server.failures().is_empty());
        assert_eq!(server.stats().preemptions, preempted);
        assert!(
            preempted > 0,
            "the scenario must actually exercise preemption"
        );
        // Every output still matches a solo engine run — the preempted request
        // was recomputed from scratch, token-identically.
        for (c, gen) in [(0u64, 24usize), (1, 4)] {
            let mut engine = InferenceEngine::new(
                &model,
                PolicySpec::keyformer_default().build().unwrap(),
                Some(budget),
            );
            let alone = engine
                .try_generate(
                    &prompt(if c == 0 { 16 } else { 24 }, c as u32),
                    &GenerationConfig::new(gen),
                )
                .unwrap();
            let completion = server
                .completions()
                .iter()
                .find(|done| done.id.raw() == c)
                .unwrap();
            assert_eq!(completion.output, alone, "request {c}");
        }
    }

    #[test]
    fn eviction_frees_blocks_for_waiting_prefills() {
        let model = ModelFamily::Tiny.build(12);
        let bytes = model.empty_cache().bytes_per_token();
        // Budgeted requests settle at ceil(0.5*24)=12 slots = 3 blocks/layer,
        // but hold 6 blocks/layer mid-prefill. A 10-block pool cannot hold one
        // request's prefill peak (12 blocks) — only AllowTransient admits it,
        // and the end-of-prompt eviction must return the overshoot immediately.
        let mut server = Server::new(
            &model,
            ServerConfig::new(
                PolicySpec::keyformer_default(),
                Some(CacheBudgetSpec::new(0.5, 0.3).unwrap()),
                20 * bytes,
            )
            .with_block_size(4),
        )
        .unwrap();
        assert_eq!(server.total_blocks(), 10);
        server
            .submit(Request::new(0, prompt(24, 0), GenerationConfig::new(3)))
            .unwrap();
        server.step();
        // After the admission step the prefill has run AND evicted: the
        // transient 12-block peak is already back down to steady state.
        let peak = server.pool_stats().peak_in_use;
        assert!(peak >= 12, "prefill transient not visible in peak: {peak}");
        assert!(
            server.pool().blocks_in_use() <= 8,
            "eviction did not reclaim blocks: {} in use",
            server.pool().blocks_in_use()
        );
        assert!(server.pool_stats().peak_overshoot() >= 2);
        server.run(64);
        assert_eq!(server.completions().len(), 1);
        assert_eq!(server.pool().blocks_in_use(), 0);
    }
}

//! Loopback integration tests: a real `kf_serve` node on an ephemeral port,
//! talked to over real sockets by the reference client.
//!
//! The three acceptance properties of the network front-end:
//!
//! 1. **Wire/engine identity** — a streamed generate returns exactly the
//!    tokens a directly-driven [`Engine`] produces for the same request.
//! 2. **Idempotence** — a repeated deterministic request is answered from the
//!    result cache byte-identically, with *zero* additional engine steps; a
//!    concurrent duplicate coalesces onto the in-flight primary and receives
//!    the identical tokens. Sampled requests bypass both mechanisms.
//! 3. **Cancellation hygiene** — a wire cancellation retires the job and
//!    drains the engine pool back to zero blocks in use or reserved.

use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::{Engine, Request, ServerConfig, SubmitOptions};
use kf_serve::client::{str_field, tokens_field, u64_field};
use kf_serve::{serve, NodeConfig, ServeHandle};
use serde::Value;
use std::time::{Duration, Instant};

const MODEL_SEED: u64 = 31;

fn prompt(len: usize, salt: u32) -> Vec<u32> {
    (0..len)
        .map(|t| (t as u32 * 13 + 7 + salt * 31) % 120)
        .collect()
}

fn pool_config(slots: usize) -> ServerConfig {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let bytes_per_token = model.empty_cache().bytes_per_token();
    ServerConfig::new(
        PolicySpec::keyformer_default(),
        Some(CacheBudgetSpec::with_fraction(0.5).unwrap()),
        slots * bytes_per_token,
    )
    .with_block_size(4)
}

fn boot(engine: ServerConfig, dedup: bool) -> ServeHandle {
    serve(
        "127.0.0.1:0",
        NodeConfig::new(ModelFamily::Tiny, MODEL_SEED, engine).with_dedup(dedup),
    )
    .expect("node boots")
}

/// Runs the same request on a directly-driven engine, mirroring the server's
/// default resolution (explicit policy/budget/dtype), and returns its tokens.
fn direct_engine_tokens(engine_config: ServerConfig, prompt: &[u32], gen: usize) -> Vec<u32> {
    let model = ModelFamily::Tiny.build(MODEL_SEED);
    let mut engine = Engine::new(&model, engine_config).unwrap();
    let mut request = Request::new(1, prompt.to_vec(), GenerationConfig::new(gen))
        .with_policy(engine_config.policy);
    request = match engine_config.budget {
        Some(budget) => request.with_budget(budget),
        None => request.with_unbudgeted(),
    };
    let options = SubmitOptions::new().with_kv_dtype(engine_config.kv_dtype);
    engine.submit_with(request, options).unwrap();
    engine.run(100_000);
    assert!(engine.is_idle(), "direct engine drained");
    assert_eq!(engine.completions().len(), 1);
    engine.completions()[0].output.generated.clone()
}

fn generate_body(prompt: &[u32], gen: usize, extra: &str) -> String {
    let tokens: Vec<String> = prompt.iter().map(u32::to_string).collect();
    format!(
        "{{\"prompt\":[{}],\"max_new_tokens\":{gen}{extra}}}",
        tokens.join(",")
    )
}

/// Polls `GET /v1/jobs/{id}` until the job reaches a terminal state.
fn await_terminal(handle: &ServeHandle, job: u64) -> Value {
    let client = handle.client();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = client.job(job).expect("job poll");
        assert_eq!(status, 200, "job {job} should exist");
        match str_field(&body, "state") {
            Some("done") | Some("failed") | Some("cancelled") => return body,
            _ => {
                assert!(Instant::now() < deadline, "job {job} never became terminal");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn engine_field(stats: &Value, field: &str) -> u64 {
    u64_field(stats.field("engine").unwrap(), field)
        .unwrap_or_else(|| panic!("engine.{field} missing from stats"))
}

fn pool_field(stats: &Value, field: &str) -> u64 {
    u64_field(stats.field("engine").unwrap().field("pool").unwrap(), field)
        .unwrap_or_else(|| panic!("engine.pool.{field} missing from stats"))
}

#[test]
fn streamed_generate_matches_direct_engine() {
    let engine_config = pool_config(160);
    let handle = boot(engine_config, true);
    let client = handle.client();
    let p = prompt(24, 1);

    let outcome = client
        .generate_stream(&generate_body(&p, 6, ",\"stream\":true"))
        .expect("streamed generate");
    assert_eq!(outcome.terminal, "done", "stream ends with a done event");
    assert!(outcome.job_id.is_some(), "preamble announces the job id");
    assert!(!outcome.deduplicated, "first run is fresh");
    assert!(outcome.ttft.is_some(), "a token event was timed");

    let direct = direct_engine_tokens(engine_config, &p, 6);
    assert_eq!(
        outcome.tokens, direct,
        "streamed tokens must be identical to a directly-driven engine"
    );

    // The polled record agrees with the stream.
    let record = await_terminal(&handle, outcome.job_id.unwrap());
    assert_eq!(tokens_field(&record, "tokens").unwrap(), direct);
    handle.shutdown();
}

#[test]
fn repeat_request_is_served_from_cache_with_zero_engine_steps() {
    let engine_config = pool_config(160);
    let handle = boot(engine_config, true);
    let client = handle.client();
    let p = prompt(22, 2);
    let body = generate_body(&p, 5, "");

    let (status, first) = client.generate(&body).expect("first generate");
    assert_eq!(status, 202, "a fresh request is accepted, not answered");
    let first_job = u64_field(&first, "job_id").unwrap();
    let first_record = await_terminal(&handle, first_job);
    let first_tokens = tokens_field(&first_record, "tokens").unwrap();
    assert_eq!(first_tokens, direct_engine_tokens(engine_config, &p, 5));

    // The engine is now idle; its step counter must not advance for a repeat.
    let (_, stats_before) = client.stats().expect("stats");
    let steps_before = engine_field(&stats_before, "steps");

    let (status, repeat) = client.generate(&body).expect("repeat generate");
    assert_eq!(status, 200, "a cached repeat is answered immediately");
    assert_eq!(str_field(&repeat, "state"), Some("done"));
    assert_eq!(repeat.field("deduplicated").unwrap(), &Value::Bool(true));
    let repeat_tokens = tokens_field(&repeat, "tokens").unwrap();
    assert_eq!(
        repeat_tokens, first_tokens,
        "cached bytes must be identical to the original result"
    );

    let (_, stats_after) = client.stats().expect("stats");
    assert_eq!(
        engine_field(&stats_after, "steps"),
        steps_before,
        "a cache hit must cost zero engine steps"
    );
    assert_eq!(
        u64_field(stats_after.field("jobs").unwrap(), "cache_hits"),
        Some(1)
    );

    // The repeat's own record is pollable and byte-identical too.
    let repeat_record = await_terminal(&handle, u64_field(&repeat, "job_id").unwrap());
    assert_eq!(
        tokens_field(&repeat_record, "tokens").unwrap(),
        first_tokens
    );
    handle.shutdown();
}

#[test]
fn concurrent_duplicate_coalesces_onto_the_primary() {
    let engine_config = pool_config(1200);
    let handle = boot(engine_config, true);
    let client = handle.client();
    let p = prompt(20, 3);
    // A long decode keeps the primary in flight while the duplicate arrives.
    let body = generate_body(&p, 400, "");

    let (status, first) = client.generate(&body).expect("first generate");
    assert_eq!(status, 202);
    let first_job = u64_field(&first, "job_id").unwrap();

    let (status, twin) = client.generate(&body).expect("duplicate generate");
    assert_eq!(status, 202);
    let twin_job = u64_field(&twin, "job_id").unwrap();
    assert_eq!(
        u64_field(&twin, "coalesced_into"),
        Some(first_job),
        "the duplicate must ride on the in-flight primary"
    );

    let first_record = await_terminal(&handle, first_job);
    let twin_record = await_terminal(&handle, twin_job);
    assert_eq!(str_field(&first_record, "state"), Some("done"));
    assert_eq!(str_field(&twin_record, "state"), Some("done"));
    assert_eq!(
        u64_field(&twin_record, "coalesced_into"),
        None,
        "a completed follower owns its tokens and detaches from the primary"
    );
    let first_tokens = tokens_field(&first_record, "tokens").unwrap();
    assert_eq!(
        tokens_field(&twin_record, "tokens").unwrap(),
        first_tokens,
        "coalesced results must be byte-identical"
    );
    assert_eq!(first_tokens.len(), 400, "the primary ran to its budget");

    let (_, stats) = client.stats().expect("stats");
    let jobs = stats.field("jobs").unwrap();
    assert_eq!(u64_field(jobs, "coalesced"), Some(1));
    assert_eq!(
        u64_field(jobs, "completed"),
        Some(1),
        "only the primary consumed the engine"
    );
    handle.shutdown();
}

#[test]
fn sampled_requests_bypass_cache_and_coalescing() {
    let engine_config = pool_config(160);
    let handle = boot(engine_config, true);
    let client = handle.client();
    let p = prompt(20, 4);
    let body = generate_body(&p, 4, ",\"top_k\":8,\"temperature\":1.5,\"seed\":9");

    let (_, first) = client.generate(&body).expect("first sampled generate");
    await_terminal(&handle, u64_field(&first, "job_id").unwrap());
    let (status, repeat) = client.generate(&body).expect("repeat sampled generate");
    assert_eq!(
        status, 202,
        "sampled repeats are fresh runs, never cache hits"
    );
    assert_eq!(u64_field(&repeat, "coalesced_into"), None);
    await_terminal(&handle, u64_field(&repeat, "job_id").unwrap());

    let (_, stats) = client.stats().expect("stats");
    let jobs = stats.field("jobs").unwrap();
    assert_eq!(u64_field(jobs, "cache_hits"), Some(0));
    assert_eq!(u64_field(jobs, "coalesced"), Some(0));
    assert_eq!(u64_field(jobs, "completed"), Some(2));
    handle.shutdown();
}

#[test]
fn wire_cancellation_drains_the_pool() {
    let engine_config = pool_config(4000);
    let handle = boot(engine_config, true);
    let client = handle.client();
    // A decode far too long to finish before the cancel lands.
    let body = generate_body(&prompt(20, 5), 100_000, "");

    let (status, accepted) = client.generate(&body).expect("generate");
    assert_eq!(status, 202);
    let job = u64_field(&accepted, "job_id").unwrap();

    let (status, cancel) = client.cancel(job).expect("cancel");
    assert_eq!(status, 202);
    assert_eq!(cancel.field("cancelling").unwrap(), &Value::Bool(true));

    let record = await_terminal(&handle, job);
    assert_eq!(str_field(&record, "state"), Some("cancelled"));

    // Once the engine settles, every block is back in the pool.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, stats) = client.stats().expect("stats");
        let drained = engine_field(&stats, "queued") == 0
            && engine_field(&stats, "running") == 0
            && pool_field(&stats, "in_use") == 0
            && pool_field(&stats, "reserved") == 0;
        if drained {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "pool never drained after cancellation: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
}

#[test]
fn dedup_off_runs_every_request() {
    let engine_config = pool_config(160);
    let handle = boot(engine_config, false);
    let client = handle.client();
    let body = generate_body(&prompt(20, 6), 4, "");

    let (_, first) = client.generate(&body).expect("first generate");
    await_terminal(&handle, u64_field(&first, "job_id").unwrap());
    let (status, repeat) = client.generate(&body).expect("repeat generate");
    assert_eq!(status, 202, "with dedup off a repeat is a fresh run");
    await_terminal(&handle, u64_field(&repeat, "job_id").unwrap());

    let (_, stats) = client.stats().expect("stats");
    let jobs = stats.field("jobs").unwrap();
    assert_eq!(u64_field(jobs, "cache_hits"), Some(0));
    assert_eq!(u64_field(jobs, "completed"), Some(2));
    handle.shutdown();
}

#[test]
fn repeated_cache_hits_keep_the_job_table_bounded() {
    let engine_config = pool_config(160);
    let handle = serve(
        "127.0.0.1:0",
        NodeConfig::new(ModelFamily::Tiny, MODEL_SEED, engine_config)
            .with_dedup(true)
            .with_retained_jobs(2),
    )
    .expect("node boots");
    let client = handle.client();
    let p = prompt(20, 8);
    let body = generate_body(&p, 4, "");

    let (_, first) = client.generate(&body).expect("first generate");
    let first_job = u64_field(&first, "job_id").unwrap();
    await_terminal(&handle, first_job);

    // Every repeat is a cache hit whose job is born terminal; those records
    // must rotate through the retention ring like any other finished job.
    let mut hit_jobs = Vec::new();
    for _ in 0..4 {
        let (status, repeat) = client.generate(&body).expect("cached repeat");
        assert_eq!(status, 200);
        hit_jobs.push(u64_field(&repeat, "job_id").unwrap());
    }
    let jobs = &handle.node().pump.jobs;
    assert_eq!(
        jobs.live(),
        0,
        "terminal-born records must never count as live"
    );
    // With a cap of 2, only the two newest terminal records survive.
    assert!(jobs.with_job(first_job, |_| ()).is_none());
    assert!(jobs.with_job(hit_jobs[0], |_| ()).is_none());
    assert!(jobs.with_job(hit_jobs[1], |_| ()).is_none());
    assert!(jobs.with_job(hit_jobs[2], |_| ()).is_some());
    assert!(jobs.with_job(hit_jobs[3], |_| ()).is_some());
    let (status, _) = client.job(first_job).expect("poll GC'd job");
    assert_eq!(status, 404, "a GC'd record answers 404 over the wire");
    handle.shutdown();
}

#[test]
fn connections_past_the_cap_answer_503() {
    use std::io::{BufRead, BufReader, Write};

    let handle = serve(
        "127.0.0.1:0",
        NodeConfig::new(ModelFamily::Tiny, MODEL_SEED, pool_config(160)).with_max_connections(1),
    )
    .expect("node boots");
    let client = handle.client();

    // Hold the single slot with a persistent NDJSON session.
    let mut held = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    held.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    writeln!(held, "{{\"op\":\"stats\"}}").expect("write op");
    held.flush().unwrap();
    let mut held_reader = BufReader::new(held.try_clone().unwrap());
    let mut line = String::new();
    held_reader.read_line(&mut line).expect("stats reply");
    assert!(line.contains("jobs"), "the held session is being served");

    // Any further connection is shed with a fast 503.
    let (status, body) = client.stats().expect("overloaded stats");
    assert_eq!(status, 503);
    assert_eq!(str_field(&body, "error"), Some("overloaded"));

    // Releasing the held session frees the slot again.
    drop(held_reader);
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok((200, _)) = client.stats() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the slot never came back after the session closed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
}

#[test]
fn idle_ndjson_sessions_are_closed_by_the_server() {
    use std::io::{BufRead, BufReader, Write};

    let handle = serve(
        "127.0.0.1:0",
        NodeConfig::new(ModelFamily::Tiny, MODEL_SEED, pool_config(160))
            .with_ndjson_idle_timeout(100),
    )
    .expect("node boots");

    let mut session = std::net::TcpStream::connect(handle.local_addr()).expect("connect");
    session
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    writeln!(session, "{{\"op\":\"stats\"}}").expect("write op");
    session.flush().unwrap();
    let mut reader = BufReader::new(session);
    let mut line = String::new();
    reader.read_line(&mut line).expect("stats reply");
    assert!(line.contains("jobs"));

    // Then go silent: the server must end the session, not pin its thread.
    let waited = Instant::now();
    line.clear();
    let n = reader.read_line(&mut line).expect("server-side close");
    assert_eq!(n, 0, "the idle session ends with a clean EOF");
    assert!(
        waited.elapsed() < Duration::from_secs(20),
        "the idle close must come from the 100ms server timeout"
    );
    handle.shutdown();
}

#[test]
fn malformed_and_unknown_requests_answer_structured_errors() {
    let handle = boot(pool_config(160), true);
    let client = handle.client();

    let (status, body) = client.generate("{\"prompt\":[]}").expect("empty prompt");
    assert_eq!(status, 400);
    assert_eq!(str_field(&body, "error"), Some("invalid_request"));

    let (status, body) = client.generate("not json at all").expect("non-JSON body");
    assert_eq!(status, 400);
    assert_eq!(str_field(&body, "error"), Some("invalid_json"));

    let (status, body) = client
        .generate("{\"prompt\":[1,2],\"policy\":\"quantum\"}")
        .expect("unknown policy");
    assert_eq!(status, 400);
    assert_eq!(str_field(&body, "error"), Some("invalid_request"));

    let (status, body) = client.job(999).expect("unknown job");
    assert_eq!(status, 404);
    assert_eq!(str_field(&body, "error"), Some("not_found"));

    let (status, _) = client.cancel(999).expect("unknown cancel");
    assert_eq!(status, 404);
    handle.shutdown();
}

#[test]
fn ndjson_fallback_session_supports_all_ops() {
    let engine_config = pool_config(160);
    let handle = boot(engine_config, true);
    let client = handle.client();
    let p = prompt(20, 7);
    let tokens: Vec<String> = p.iter().map(u32::to_string).collect();

    let responses = client
        .ndjson_session(&[
            format!(
                "{{\"op\":\"generate\",\"prompt\":[{}],\"max_new_tokens\":4,\"stream\":true}}",
                tokens.join(",")
            ),
            "{\"op\":\"stats\"}".to_string(),
            "{\"op\":\"status\",\"job_id\":1}".to_string(),
            "{\"op\":\"nonsense\"}".to_string(),
        ])
        .expect("ndjson session");

    // Streamed generate: accepted + 4 tokens + done, then the other replies.
    assert_eq!(str_field(&responses[0], "event"), Some("accepted"));
    let token_events: Vec<&Value> = responses
        .iter()
        .filter(|r| str_field(r, "event") == Some("token"))
        .collect();
    assert_eq!(token_events.len(), 4);
    assert!(responses
        .iter()
        .any(|r| str_field(r, "event") == Some("done")));
    let streamed: Vec<u32> = token_events
        .iter()
        .map(|e| u64_field(e, "token").unwrap() as u32)
        .collect();
    assert_eq!(streamed, direct_engine_tokens(engine_config, &p, 4));

    let stats = responses
        .iter()
        .find(|r| r.field("jobs").map(|j| j != &Value::Null).unwrap_or(false))
        .expect("a stats reply");
    assert_eq!(
        u64_field(stats.field("jobs").unwrap(), "submitted"),
        Some(1)
    );
    assert!(responses
        .iter()
        .any(|r| str_field(r, "state") == Some("done")));
    assert!(responses
        .iter()
        .any(|r| str_field(r, "error") == Some("invalid_request")));
    handle.shutdown();
}

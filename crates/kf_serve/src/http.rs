//! A minimal HTTP/1.1 wire layer over `std` I/O — just enough protocol for
//! the four `kf_serve` surfaces, with no network crates involved.
//!
//! Requests: request line + headers + an optional `Content-Length` body.
//! Responses: `Content-Length` bodies for unary answers, `chunked`
//! transfer-encoding for streaming ones. Connections are `Connection: close`
//! — one HTTP exchange per connection keeps the connection threads trivially
//! stateless (the NDJSON fallback in [`crate::api`] is the persistent-session
//! protocol).
//!
//! Anything that is not a well-formed request is answered with a 4xx and the
//! connection is dropped; a malformed peer can never wedge a thread for
//! longer than the read timeout the listener sets.

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (tokens are u32s, so even a maximal prompt
/// is far below this); protects the server from unbounded allocation.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// A parsed HTTP request head plus its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, uppercased by the client (`GET`, `POST`, `DELETE`...).
    pub method: String,
    /// Request target path (query strings are not used by this API).
    pub path: String,
    /// Raw body bytes (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one line (through `\n`) from `r`, stripping the trailing `\r\n` /
/// `\n`. Returns `None` at a clean EOF before any byte.
pub fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Parses the rest of an HTTP request whose request line (`first_line`) has
/// already been read: headers through the blank line, then a
/// `Content-Length` body if one was announced.
///
/// # Errors
///
/// Returns a human-readable error string for a malformed request line,
/// header section, or oversized/truncated body; callers answer it with a 400.
pub fn parse_http(first_line: &str, r: &mut impl BufRead) -> Result<HttpRequest, String> {
    let mut parts = first_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("malformed request line: {first_line:?}"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol version: {version}"));
    }
    let mut content_length = 0usize;
    loop {
        let line = read_line(r)
            .map_err(|e| format!("reading headers: {e}"))?
            .ok_or("connection closed inside the header section")?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line: {line:?}"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| format!("unparsable content-length: {value:?}"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| format!("reading {content_length}-byte body: {e}"))?;
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// The reason phrase for the handful of statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        499 => "Client Closed Request",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        507 => "Insufficient Storage",
        _ => "Response",
    }
}

/// Writes a complete unary JSON response and flushes it.
pub fn write_response(w: &mut impl Write, status: u16, body: &str) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        status_reason(status),
        body.len(),
    )?;
    w.flush()
}

/// Starts a chunked streaming response (headers only; follow with
/// [`write_chunk`] calls and a [`finish_chunked`]).
pub fn start_chunked(w: &mut impl Write, status: u16) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        status_reason(status),
    )?;
    w.flush()
}

/// Writes one chunk of a chunked response and flushes it, so every streamed
/// token is on the wire the moment the pump surfaces it.
pub fn write_chunk(w: &mut impl Write, data: &str) -> io::Result<()> {
    write!(w, "{:x}\r\n{data}\r\n", data.len())?;
    w.flush()
}

/// Terminates a chunked response.
pub fn finish_chunked(w: &mut impl Write) -> io::Result<()> {
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, String> {
        let mut r = BufReader::new(raw.as_bytes());
        let first = read_line(&mut r).unwrap().unwrap();
        parse_http(&first, &mut r)
    }

    #[test]
    fn parses_request_with_body() {
        let req = parse(
            "POST /v1/generate HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"a\":[1,2]}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/generate");
        assert_eq!(req.body, b"{\"a\":[1,2]}");
    }

    #[test]
    fn parses_bodyless_get_and_bare_lf() {
        let req = parse("GET /v1/stats HTTP/1.1\nhost: x\n\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse("GARBAGE\r\n\r\n").is_err());
        assert!(parse("GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n").is_err());
        assert!(parse("POST / HTTP/1.1\r\ncontent-length: zap\r\n\r\n").is_err());
        // Announced body longer than what arrives.
        assert!(parse("POST / HTTP/1.1\r\ncontent-length: 5\r\n\r\nab").is_err());
        let oversized = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 5 << 20);
        assert!(parse(&oversized).is_err());
    }

    #[test]
    fn chunked_stream_round_trips() {
        let mut out = Vec::new();
        start_chunked(&mut out, 200).unwrap();
        write_chunk(&mut out, "{\"event\":\"token\"}\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("transfer-encoding: chunked"));
        assert!(text.contains("12\r\n{\"event\":\"token\"}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}

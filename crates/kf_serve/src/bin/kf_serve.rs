//! The `kf_serve` binary: boots a serving node over TCP and runs until
//! killed. Every knob of the engine and the dedup layer is a flag; run with
//! `--help` for the list.

use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::families::ModelFamily;
use keyformer_serve::ServerConfig;
use kf_serve::NodeConfig;

const USAGE: &str = "\
kf_serve: network front-end for the keyformer serving engine

USAGE: kf_serve [FLAGS]

  --addr HOST:PORT        listen address (default 127.0.0.1:8091; port 0 = OS pick)
  --family NAME           tiny | gptj | cerebras | mpt | storywriter (default tiny)
  --model-seed N          weight-initialisation seed (default 7)
  --policy NAME           full | window | dilated | key_only | h2o | damped |
                          streaming_llm | keyformer (default keyformer)
  --budget FRACTION       per-session KV budget fraction (default 0.5; 0 = unbudgeted)
  --pool-tokens N         KV pool size in token slots at the pool dtype (default 4096)
  --block-size N          token slots per block (engine default when omitted)
  --prefill-chunk N       chunked prefill at N tokens per step (default one-shot)
  --decode-workers N      decode worker threads (default 1)
  --max-concurrency N     cap on concurrently running sessions (default unlimited)
  --kv-dtype NAME         f32 | u8 pool storage precision (default f32)
  --preempt-on-arrival    let high-priority arrivals preempt lower-priority sessions
  --prefix-sharing        enable the shared-prefix registry
  --no-dedup              disable the result cache and request coalescing
  --cache-capacity N      result-cache entries (default 256)
  --cache-ttl-ms N        result-cache TTL in milliseconds (default 60000)
  --retained-jobs N       terminal job records kept pollable (default 1024)
  --max-connections N     concurrent connection threads; excess gets 503 (default 256)
  --ndjson-idle-ms N      NDJSON session idle timeout in ms; 0 = none (default 300000)
";

fn fail(message: &str) -> ! {
    eprintln!("kf_serve: {message}\n\n{USAGE}");
    std::process::exit(2)
}

fn parse_family(name: &str) -> ModelFamily {
    match name {
        "tiny" => ModelFamily::Tiny,
        "gptj" => ModelFamily::GptJLike,
        "cerebras" => ModelFamily::CerebrasLike,
        "mpt" => ModelFamily::MptLike,
        "storywriter" => ModelFamily::MptStorywriterLike,
        other => fail(&format!("unknown family `{other}`")),
    }
}

fn parse_policy(name: &str) -> PolicySpec {
    match name {
        "full" => PolicySpec::Full,
        "window" => PolicySpec::Window,
        "dilated" => PolicySpec::DilatedWindow { dilation: 1 },
        "key_only" => PolicySpec::KeyOnly,
        "h2o" => PolicySpec::h2o_default(),
        "damped" => PolicySpec::Damped { alpha: 0.9 },
        "streaming_llm" => PolicySpec::streaming_default(),
        "keyformer" => PolicySpec::keyformer_default(),
        other => fail(&format!("unknown policy `{other}`")),
    }
}

struct Flags {
    args: Vec<String>,
    at: usize,
}

impl Flags {
    fn next(&mut self) -> Option<String> {
        let arg = self.args.get(self.at).cloned();
        self.at += 1;
        arg
    }

    fn value(&mut self, flag: &str) -> String {
        self.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    }

    fn number<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        let raw = self.value(flag);
        raw.parse()
            .unwrap_or_else(|_| fail(&format!("{flag}: unparsable value {raw:?}")))
    }
}

fn main() {
    let mut flags = Flags {
        args: std::env::args().skip(1).collect(),
        at: 0,
    };
    let mut addr = "127.0.0.1:8091".to_string();
    let mut family = ModelFamily::Tiny;
    let mut model_seed = 7u64;
    let mut policy = PolicySpec::keyformer_default();
    let mut budget_fraction = 0.5f64;
    let mut pool_tokens = 4096usize;
    let mut block_size = None;
    let mut prefill_chunk = None;
    let mut decode_workers = 1usize;
    let mut max_concurrency = None;
    let mut kv_dtype = KvDtype::F32;
    let mut preempt_on_arrival = false;
    let mut prefix_sharing = false;
    let mut dedup = true;
    let mut cache_capacity = 256usize;
    let mut cache_ttl_ms = 60_000u64;
    let mut retained_jobs = 1024usize;
    let mut max_connections = 256usize;
    let mut ndjson_idle_ms = 300_000u64;

    while let Some(flag) = flags.next() {
        match flag.as_str() {
            "--addr" => addr = flags.value("--addr"),
            "--family" => family = parse_family(&flags.value("--family")),
            "--model-seed" => model_seed = flags.number("--model-seed"),
            "--policy" => policy = parse_policy(&flags.value("--policy")),
            "--budget" => budget_fraction = flags.number("--budget"),
            "--pool-tokens" => pool_tokens = flags.number("--pool-tokens"),
            "--block-size" => block_size = Some(flags.number("--block-size")),
            "--prefill-chunk" => prefill_chunk = Some(flags.number("--prefill-chunk")),
            "--decode-workers" => decode_workers = flags.number("--decode-workers"),
            "--max-concurrency" => max_concurrency = Some(flags.number("--max-concurrency")),
            "--kv-dtype" => {
                kv_dtype = match flags.value("--kv-dtype").as_str() {
                    "f32" => KvDtype::F32,
                    "u8" => KvDtype::U8,
                    other => fail(&format!("unknown kv dtype `{other}`")),
                }
            }
            "--preempt-on-arrival" => preempt_on_arrival = true,
            "--prefix-sharing" => prefix_sharing = true,
            "--no-dedup" => dedup = false,
            "--cache-capacity" => cache_capacity = flags.number("--cache-capacity"),
            "--cache-ttl-ms" => cache_ttl_ms = flags.number("--cache-ttl-ms"),
            "--retained-jobs" => retained_jobs = flags.number("--retained-jobs"),
            "--max-connections" => max_connections = flags.number("--max-connections"),
            "--ndjson-idle-ms" => ndjson_idle_ms = flags.number("--ndjson-idle-ms"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag `{other}`")),
        }
    }

    let budget = if budget_fraction > 0.0 {
        match CacheBudgetSpec::with_fraction(budget_fraction) {
            Ok(budget) => Some(budget),
            Err(e) => fail(&format!("--budget: {e}")),
        }
    } else {
        None
    };
    // Convert the token-denominated pool size to bytes via the model's
    // per-token KV footprint at the pool dtype.
    let bytes_per_token = family
        .build(model_seed)
        .empty_cache_dtype(kv_dtype)
        .bytes_per_token();
    let mut engine = ServerConfig::new(policy, budget, pool_tokens * bytes_per_token)
        .with_decode_workers(decode_workers)
        .with_kv_dtype(kv_dtype)
        .with_preempt_on_arrival(preempt_on_arrival)
        .with_prefix_sharing(prefix_sharing);
    if let Some(size) = block_size {
        engine = engine.with_block_size(size);
    }
    if let Some(chunk) = prefill_chunk {
        engine = engine.with_prefill_chunk(chunk);
    }
    if let Some(max) = max_concurrency {
        engine = engine.with_max_concurrency(max);
    }

    let node = NodeConfig::new(family, model_seed, engine)
        .with_dedup(dedup)
        .with_cache(cache_capacity, cache_ttl_ms)
        .with_retained_jobs(retained_jobs)
        .with_max_connections(max_connections)
        .with_ndjson_idle_timeout(ndjson_idle_ms);
    match kf_serve::serve(&addr, node) {
        Ok(handle) => {
            println!(
                "kf_serve listening on {} (family {family:?}, policy {}, dedup {})",
                handle.local_addr(),
                policy.label(),
                if dedup { "on" } else { "off" },
            );
            handle.wait();
        }
        Err(e) => {
            eprintln!("kf_serve: {e}");
            std::process::exit(1);
        }
    }
}

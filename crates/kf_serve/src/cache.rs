//! The idempotent result cache: identical deterministic requests are served
//! from memory instead of re-running the engine.
//!
//! A request is *cacheable* iff its sampling strategy is greedy — the
//! temperature-0 case where the token stream is a pure function of the cache
//! key. Top-k sampling always bypasses the cache, whatever its seed: two
//! stochastic requests are different requests even when their parameters
//! collide.
//!
//! The key covers everything that determines the output tokens — prompt,
//! policy, budget, KV dtype and the full generation config — hashed with the
//! same chained FNV-1a construction the prefix registry uses for its block
//! keys. Hash collisions are ruled out by an exact key comparison on every
//! hit, so a collision costs a chain walk, never a wrong answer.
//!
//! Time is injected (`now_ms`), not read from a clock: the server derives it
//! from its start instant, and tests drive TTL expiry deterministically.

use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::generation::{GenerationConfig, SamplingStrategy};
use serde::Serialize;

/// Everything that determines a generate call's token stream, resolved to
/// concrete values (server defaults already substituted), so two requests
/// that *spell* their configuration differently but *mean* the same thing
/// share one cache slot.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultKey {
    /// Prompt token ids.
    pub prompt: Vec<u32>,
    /// The concrete policy the request runs under.
    pub policy: PolicySpec,
    /// The concrete KV budget (`None` = unbudgeted).
    pub budget: Option<CacheBudgetSpec>,
    /// KV storage precision.
    pub dtype: KvDtype,
    /// Full generation configuration (length, eos, sampling, seed, penalty).
    pub config: GenerationConfig,
}

impl ResultKey {
    /// `true` when the token stream is a pure function of this key — greedy
    /// sampling only. Stochastic (top-k) requests are never cached or
    /// coalesced, whatever their seed.
    pub fn is_deterministic(&self) -> bool {
        matches!(self.config.sampling, SamplingStrategy::Greedy)
    }

    /// Chained FNV-1a content hash of the key (the prefix registry's hashing
    /// idiom): configuration first via its debug rendering, then the prompt
    /// tokens byte by byte.
    pub fn content_hash(&self) -> u64 {
        let h = fnv1a(
            0,
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                self.policy, self.budget, self.dtype, self.config
            )
            .bytes(),
        );
        fnv1a(h, self.prompt.iter().flat_map(|t| t.to_le_bytes()))
    }
}

/// FNV-1a over a byte stream, chained through `seed` (same basis/prime as the
/// prefix registry's block keys).
fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cached generation result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CachedResult {
    /// The generated token stream.
    pub tokens: Vec<u32>,
    /// Prompt length the result answered (telemetry only).
    pub prompt_len: usize,
}

/// Lifetime counters of one [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries dropped because their TTL lapsed.
    pub expired: u64,
    /// Live entries dropped to make room (LRU order).
    pub evicted: u64,
}

struct Entry {
    key: ResultKey,
    value: CachedResult,
    inserted_ms: u64,
    /// Logical LRU clock value of the last hit (or the insertion).
    last_used: u64,
}

/// A TTL'd, capacity-bounded result cache keyed by [`ResultKey`].
///
/// `capacity` is the maximum number of *live* entries; inserting past it
/// evicts least-recently-used entries first. `capacity == 0` disables storage
/// entirely (every lookup misses). `ttl_ms` bounds an entry's life from its
/// insertion; expired entries are dropped lazily on lookup/insert.
pub struct ResultCache {
    capacity: usize,
    ttl_ms: u64,
    /// Content hash → collision chain. Exact key equality decides hits.
    map: std::collections::HashMap<u64, Vec<Entry>>,
    len: usize,
    clock: u64,
    stats: CacheStats,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries for at most `ttl_ms`
    /// milliseconds each.
    pub fn new(capacity: usize, ttl_ms: u64) -> Self {
        ResultCache {
            capacity,
            ttl_ms,
            map: std::collections::HashMap::new(),
            len: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Live entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entry is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks `key` up at time `now_ms`. A hit refreshes the entry's LRU
    /// position (not its TTL); an entry whose TTL lapsed is dropped and
    /// reported as a miss. Non-deterministic keys always miss without
    /// touching the counters' hit/miss split — callers should bypass the
    /// cache for them entirely.
    pub fn get(&mut self, key: &ResultKey, now_ms: u64) -> Option<CachedResult> {
        if !key.is_deterministic() {
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        let ttl = self.ttl_ms;
        let hash = key.content_hash();
        let mut expired = 0;
        let mut found = None;
        if let Some(chain) = self.map.get_mut(&hash) {
            chain.retain(|e| {
                let live = now_ms.saturating_sub(e.inserted_ms) < ttl;
                if !live {
                    expired += 1;
                }
                live
            });
            if let Some(entry) = chain.iter_mut().find(|e| e.key == *key) {
                entry.last_used = clock;
                found = Some(entry.value.clone());
            }
            if chain.is_empty() {
                self.map.remove(&hash);
            }
        }
        self.len -= expired;
        self.stats.expired += expired as u64;
        match found {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `value` under `key` at time `now_ms`, replacing any existing
    /// entry with the same key. Expired entries anywhere in the cache are
    /// purged first; if the cache is still full, least-recently-used live
    /// entries are evicted. Non-deterministic keys are never stored.
    pub fn insert(&mut self, key: ResultKey, value: CachedResult, now_ms: u64) {
        if self.capacity == 0 || !key.is_deterministic() {
            return;
        }
        self.clock += 1;
        self.purge_expired(now_ms);
        let hash = key.content_hash();
        if let Some(chain) = self.map.get_mut(&hash) {
            if let Some(entry) = chain.iter_mut().find(|e| e.key == key) {
                entry.value = value;
                entry.inserted_ms = now_ms;
                entry.last_used = self.clock;
                return;
            }
        }
        while self.len >= self.capacity {
            self.evict_lru();
        }
        self.map.entry(hash).or_default().push(Entry {
            key,
            value,
            inserted_ms: now_ms,
            last_used: self.clock,
        });
        self.len += 1;
        self.stats.insertions += 1;
    }

    /// Drops every entry whose TTL has lapsed as of `now_ms`.
    pub fn purge_expired(&mut self, now_ms: u64) {
        let ttl = self.ttl_ms;
        let mut expired = 0;
        self.map.retain(|_, chain| {
            chain.retain(|e| {
                let live = now_ms.saturating_sub(e.inserted_ms) < ttl;
                if !live {
                    expired += 1;
                }
                live
            });
            !chain.is_empty()
        });
        self.len -= expired;
        self.stats.expired += expired as u64;
    }

    /// Evicts the least-recently-used live entry (no-op on an empty cache).
    fn evict_lru(&mut self) {
        let Some((&hash, _)) = self
            .map
            .iter()
            .min_by_key(|(_, chain)| chain.iter().map(|e| e.last_used).min().unwrap_or(u64::MAX))
        else {
            return;
        };
        let chain = self.map.get_mut(&hash).expect("hash chosen from the map");
        let oldest = chain
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
            .expect("chains are never left empty");
        chain.remove(oldest);
        if chain.is_empty() {
            self.map.remove(&hash);
        }
        self.len -= 1;
        self.stats.evicted += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(prompt: &[u32]) -> ResultKey {
        ResultKey {
            prompt: prompt.to_vec(),
            policy: PolicySpec::keyformer_default(),
            budget: Some(CacheBudgetSpec::with_fraction(0.5).unwrap()),
            dtype: KvDtype::F32,
            config: GenerationConfig::new(4),
        }
    }

    fn result(tokens: &[u32]) -> CachedResult {
        CachedResult {
            tokens: tokens.to_vec(),
            prompt_len: 3,
        }
    }

    #[test]
    fn hit_returns_identical_value_and_counts() {
        let mut cache = ResultCache::new(4, 1_000);
        let k = key(&[1, 2, 3]);
        assert!(cache.get(&k, 0).is_none());
        cache.insert(k.clone(), result(&[9, 8]), 0);
        assert_eq!(cache.get(&k, 10).unwrap(), result(&[9, 8]));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn content_hash_covers_every_field() {
        let base = key(&[1, 2, 3]);
        let mut prompt = base.clone();
        prompt.prompt = vec![1, 2, 4];
        let mut policy = base.clone();
        policy.policy = PolicySpec::Full;
        let mut budget = base.clone();
        budget.budget = None;
        let mut dtype = base.clone();
        dtype.dtype = KvDtype::U8;
        let mut config = base.clone();
        config.config = GenerationConfig::new(5);
        let mut seed = base.clone();
        seed.config.seed = 7;
        for other in [&prompt, &policy, &budget, &dtype, &config, &seed] {
            assert_ne!(base.content_hash(), other.content_hash());
            assert_ne!(&base, other);
        }
    }

    #[test]
    fn ttl_expiry_drops_entries() {
        let mut cache = ResultCache::new(4, 100);
        let k = key(&[1]);
        cache.insert(k.clone(), result(&[5]), 0);
        // One tick before the TTL the entry is live; at the TTL it is gone.
        assert!(cache.get(&k, 99).is_some());
        assert!(cache.get(&k, 100).is_none());
        assert_eq!(cache.stats().expired, 1);
        assert!(cache.is_empty());
        // Re-inserting restarts the TTL from the new insertion time.
        cache.insert(k.clone(), result(&[5]), 200);
        assert!(cache.get(&k, 250).is_some());
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut cache = ResultCache::new(2, u64::MAX);
        let (a, b, c) = (key(&[1]), key(&[2]), key(&[3]));
        cache.insert(a.clone(), result(&[1]), 0);
        cache.insert(b.clone(), result(&[2]), 0);
        // Touch `a` so `b` becomes the LRU entry, then overflow.
        assert!(cache.get(&a, 0).is_some());
        cache.insert(c.clone(), result(&[3]), 0);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&b, 0).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&a, 0).is_some());
        assert!(cache.get(&c, 0).is_some());
        assert_eq!(cache.stats().evicted, 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = ResultCache::new(0, u64::MAX);
        let k = key(&[1]);
        cache.insert(k.clone(), result(&[1]), 0);
        assert!(cache.get(&k, 0).is_none());
        assert_eq!(cache.stats().insertions, 0);
    }

    #[test]
    fn stochastic_keys_bypass_storage_and_lookup() {
        let mut cache = ResultCache::new(4, u64::MAX);
        let mut k = key(&[1]);
        k.config = GenerationConfig::new(4).with_top_k(3, 0.7, 42);
        assert!(!k.is_deterministic());
        cache.insert(k.clone(), result(&[1]), 0);
        assert!(cache.get(&k, 0).is_none());
        assert!(cache.is_empty());
        // Same parameters, different seed: still never served from cache.
        let mut reseeded = k.clone();
        reseeded.config.seed = 43;
        assert!(cache.get(&reseeded, 0).is_none());
    }
}

//! The job table: every accepted generate call becomes a job with a monotonic
//! id and a small state machine fed by the engine's event stream.
//!
//! Connection threads read and block on the table (status polls, streaming
//! drains); the engine pump writes to it. A [`std::sync::Condvar`] broadcast
//! on every mutation is what turns the per-request event drain into a
//! chunked-streaming response without the wire layer ever touching the
//! engine.
//!
//! Job ids double as engine [`RequestId`](keyformer_serve::RequestId)s, so
//! the pump needs no translation table in either direction.

use crate::cache::ResultKey;
use keyformer_serve::WireCode;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Monotonic identifier of one accepted generate call.
pub type JobId = u64;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, not yet prefilling (or coalesced behind a running twin).
    Queued,
    /// Admitted: prefilling or decoding.
    Running,
    /// Finished; `tokens` holds the full result.
    Done,
    /// Retired without a result; `error` says why.
    Failed,
    /// Cancelled by the caller (or by server shutdown).
    Cancelled,
}

impl JobState {
    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Stable lowercase label used on the wire.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// A wire-level error attached to a failed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobError {
    /// Stable machine-readable code and HTTP status.
    pub wire: WireCode,
    /// Human-readable detail.
    pub message: String,
}

/// One job's full record.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's id (also its engine request id).
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Tokens surfaced so far (the full result once `Done`).
    pub tokens: Vec<u32>,
    /// Prompt length, for telemetry.
    pub prompt_len: usize,
    /// `true` when the result came from the cache or a coalesced twin rather
    /// than a fresh engine run.
    pub deduplicated: bool,
    /// When this job is an in-flight duplicate, the id of the primary job
    /// actually running on the engine.
    pub coalesced_into: Option<JobId>,
    /// Why the job failed (`Failed` only).
    pub error: Option<JobError>,
    /// The request's resolved cache key, kept so the pump can publish the
    /// result under it on completion. `None` once consumed or for jobs that
    /// never ran (cache hits).
    pub key: Option<ResultKey>,
}

/// Aggregate counters of the job layer, reported by `GET /v1/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize)]
pub struct JobCounters {
    /// Jobs accepted (including cache hits and coalesced duplicates).
    pub submitted: u64,
    /// Jobs finished with a result from a fresh engine run.
    pub completed: u64,
    /// Jobs answered straight from the result cache.
    pub cache_hits: u64,
    /// Jobs attached to an in-flight twin's result.
    pub coalesced: u64,
    /// Jobs retired as failed.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
}

struct Jobs {
    next_id: JobId,
    jobs: HashMap<JobId, JobRecord>,
    /// Terminal jobs in retirement order, oldest first, for capacity GC.
    retired: VecDeque<JobId>,
    counters: JobCounters,
}

/// What a streaming drain learns from one wait on the table: the tokens newly
/// surfaced past the reader's cursor and the job's current state.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// Tokens past the reader's cursor (empty when nothing new surfaced).
    pub new_tokens: Vec<u32>,
    /// The job's state at snapshot time.
    pub state: JobState,
    /// Whether the result was served without a fresh engine run.
    pub deduplicated: bool,
    /// The failure, when `state` is [`JobState::Failed`].
    pub error: Option<JobError>,
}

/// The shared job table: a mutex-guarded map plus a condvar broadcast on
/// every mutation. Retains at most `retained_jobs` *terminal* records
/// (oldest-retired dropped first) so an immortal server's table stays
/// bounded; live jobs are never dropped.
pub struct JobTable {
    inner: Mutex<Jobs>,
    changed: Condvar,
    retained_jobs: usize,
}

impl JobTable {
    /// An empty table retaining at most `retained_jobs` finished records.
    pub fn new(retained_jobs: usize) -> Self {
        JobTable {
            inner: Mutex::new(Jobs {
                next_id: 1,
                jobs: HashMap::new(),
                retired: VecDeque::new(),
                counters: JobCounters::default(),
            }),
            changed: Condvar::new(),
            retained_jobs: retained_jobs.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Jobs> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Creates a job in `state` and returns its id. `key` is retained on the
    /// record for the pump's completion-time cache insert. A job born terminal
    /// (a cache hit) joins the retirement ring immediately so it obeys the
    /// retention cap like every other finished record.
    pub fn create(&self, prompt_len: usize, key: Option<ResultKey>, state: JobState) -> JobId {
        let mut jobs = self.lock();
        let id = jobs.next_id;
        jobs.next_id += 1;
        jobs.counters.submitted += 1;
        jobs.jobs.insert(
            id,
            JobRecord {
                id,
                state,
                tokens: Vec::new(),
                prompt_len,
                deduplicated: false,
                coalesced_into: None,
                error: None,
                key,
            },
        );
        if state.is_terminal() {
            jobs.retired.push_back(id);
        }
        self.gc(&mut jobs);
        self.changed.notify_all();
        id
    }

    /// Reads `job` under the lock (`None` for unknown/garbage-collected ids).
    pub fn with_job<R>(&self, job: JobId, f: impl FnOnce(&JobRecord) -> R) -> Option<R> {
        self.lock().jobs.get(&job).map(f)
    }

    /// Mutates `job` under the lock and wakes every waiter. Counter updates
    /// ride through the same closure via the second argument. Returns `false`
    /// for unknown ids.
    pub fn update(&self, job: JobId, f: impl FnOnce(&mut JobRecord, &mut JobCounters)) -> bool {
        let mut jobs = self.lock();
        let Some(mut record) = jobs.jobs.remove(&job) else {
            return false;
        };
        let was_terminal = record.state.is_terminal();
        f(&mut record, &mut jobs.counters);
        let now_terminal = record.state.is_terminal();
        jobs.jobs.insert(job, record);
        if now_terminal && !was_terminal {
            jobs.retired.push_back(job);
            self.gc(&mut jobs);
        }
        self.changed.notify_all();
        true
    }

    /// Drops oldest-retired terminal records past the retention cap.
    fn gc(&self, jobs: &mut Jobs) {
        while jobs.retired.len() > self.retained_jobs {
            if let Some(old) = jobs.retired.pop_front() {
                jobs.jobs.remove(&old);
            }
        }
    }

    /// Aggregate counters.
    pub fn counters(&self) -> JobCounters {
        self.lock().counters
    }

    /// Jobs currently live (non-terminal) in the table.
    pub fn live(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|r| !r.state.is_terminal())
            .count()
    }

    /// Ids of every live (non-terminal) job, ascending.
    pub fn live_ids(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self
            .lock()
            .jobs
            .values()
            .filter(|r| !r.state.is_terminal())
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Blocks until `job` (or, for a coalesced duplicate, its primary) has
    /// surfaced tokens past `cursor` or reached a terminal state — or until
    /// `timeout` lapses, whichever is first. Tokens are read from the primary
    /// when coalesced; state and error from the job itself, so cancelling one
    /// duplicate stops only that stream. Returns `None` for unknown ids.
    pub fn wait_stream(
        &self,
        job: JobId,
        cursor: usize,
        timeout: Duration,
    ) -> Option<StreamSnapshot> {
        let deadline = std::time::Instant::now() + timeout;
        let mut jobs = self.lock();
        loop {
            let record = jobs.jobs.get(&job)?;
            let source = record.coalesced_into.unwrap_or(job);
            let tokens = jobs.jobs.get(&source).map(|r| r.tokens.as_slice());
            let record = jobs.jobs.get(&job)?;
            let new_tokens: Vec<u32> = tokens
                .map(|t| t.get(cursor..).unwrap_or_default().to_vec())
                .unwrap_or_default();
            if !new_tokens.is_empty() || record.state.is_terminal() {
                return Some(StreamSnapshot {
                    new_tokens,
                    state: record.state,
                    deduplicated: record.deduplicated,
                    error: record.error.clone(),
                });
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Some(StreamSnapshot {
                    new_tokens: Vec::new(),
                    state: record.state,
                    deduplicated: record.deduplicated,
                    error: record.error.clone(),
                });
            }
            let (guard, _) = self
                .changed
                .wait_timeout(jobs, remaining)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            jobs = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn create_update_and_read_back() {
        let table = JobTable::new(8);
        let id = table.create(3, None, JobState::Queued);
        assert_eq!(id, 1);
        assert_eq!(table.with_job(id, |r| r.state), Some(JobState::Queued));
        assert!(table.update(id, |r, c| {
            r.state = JobState::Done;
            r.tokens = vec![4, 5];
            c.completed += 1;
        }));
        assert_eq!(table.with_job(id, |r| r.tokens.clone()), Some(vec![4, 5]));
        assert_eq!(table.counters().completed, 1);
        assert_eq!(table.counters().submitted, 1);
        assert!(!table.update(999, |_, _| {}));
        assert_eq!(table.live(), 0);
    }

    #[test]
    fn terminal_records_are_garbage_collected_oldest_first() {
        let table = JobTable::new(2);
        let ids: Vec<JobId> = (0..4)
            .map(|_| {
                let id = table.create(1, None, JobState::Queued);
                table.update(id, |r, _| r.state = JobState::Done);
                id
            })
            .collect();
        // The two oldest retirees are gone; the two newest remain.
        assert!(table.with_job(ids[0], |_| ()).is_none());
        assert!(table.with_job(ids[1], |_| ()).is_none());
        assert!(table.with_job(ids[2], |_| ()).is_some());
        assert!(table.with_job(ids[3], |_| ()).is_some());
        // Live jobs are never collected, however many retire after them.
        let live = table.create(1, None, JobState::Running);
        for _ in 0..4 {
            let id = table.create(1, None, JobState::Queued);
            table.update(id, |r, _| r.state = JobState::Cancelled);
        }
        assert!(table.with_job(live, |_| ()).is_some());
    }

    #[test]
    fn terminal_born_jobs_obey_the_retention_cap() {
        // Cache hits create jobs already Done; they must join the retirement
        // ring at birth or repeated hits grow the table without bound.
        let table = JobTable::new(2);
        let ids: Vec<JobId> = (0..5)
            .map(|_| table.create(1, None, JobState::Done))
            .collect();
        assert!(table.with_job(ids[0], |_| ()).is_none());
        assert!(table.with_job(ids[1], |_| ()).is_none());
        assert!(table.with_job(ids[2], |_| ()).is_none());
        assert!(table.with_job(ids[3], |_| ()).is_some());
        assert!(table.with_job(ids[4], |_| ()).is_some());
        // The cache-hit path fills tokens right after the terminal-born
        // create; the record must still be readable then.
        let hit = table.create(1, None, JobState::Done);
        assert!(table.update(hit, |r, _| r.tokens.push(1)));
        assert_eq!(table.with_job(hit, |r| r.tokens.clone()), Some(vec![1]));
    }

    #[test]
    fn wait_stream_sees_tokens_and_terminal_states() {
        let table = Arc::new(JobTable::new(8));
        let id = table.create(1, None, JobState::Running);
        // Nothing new within the timeout: an empty, non-terminal snapshot.
        let snap = table.wait_stream(id, 0, Duration::from_millis(10)).unwrap();
        assert!(snap.new_tokens.is_empty());
        assert_eq!(snap.state, JobState::Running);

        let writer = Arc::clone(&table);
        let handle = std::thread::spawn(move || {
            writer.update(id, |r, _| r.tokens.push(7));
            writer.update(id, |r, _| {
                r.tokens.push(9);
                r.state = JobState::Done;
            });
        });
        let mut seen = Vec::new();
        let mut cursor = 0;
        loop {
            let snap = table
                .wait_stream(id, cursor, Duration::from_secs(5))
                .unwrap();
            cursor += snap.new_tokens.len();
            seen.extend(snap.new_tokens);
            if snap.state.is_terminal() {
                break;
            }
        }
        handle.join().unwrap();
        assert_eq!(seen, vec![7, 9]);
    }

    #[test]
    fn coalesced_streams_read_primary_tokens_but_own_state() {
        let table = JobTable::new(8);
        let primary = table.create(1, None, JobState::Running);
        let follower = table.create(1, None, JobState::Queued);
        table.update(follower, |r, _| r.coalesced_into = Some(primary));
        table.update(primary, |r, _| r.tokens.extend([1, 2, 3]));
        let snap = table
            .wait_stream(follower, 0, Duration::from_millis(10))
            .unwrap();
        assert_eq!(snap.new_tokens, vec![1, 2, 3]);
        assert_eq!(snap.state, JobState::Queued, "state is the follower's own");
    }
}

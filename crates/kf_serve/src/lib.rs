//! `kf_serve`: a network front-end for the [`keyformer_serve`] engine, built
//! entirely on `std::net` — no network crates.
//!
//! One [`serve`] call boots a node: a dedicated *pump* thread that owns the
//! model and [`keyformer_serve::Engine`] (see [`backend`]), an accept loop,
//! and one short-lived thread per connection. Connection threads never touch
//! the engine — they enqueue commands over a channel and observe the shared
//! [`jobs::JobTable`], so the engine keeps its single-threaded determinism
//! while any number of sockets talk to it.
//!
//! Two wire formats share one semantics layer ([`api`]):
//!
//! * **HTTP/1.1**, one exchange per connection: `POST /v1/generate`
//!   (`202` + job id, or a chunked NDJSON token stream when the body sets
//!   `"stream": true`), `GET /v1/jobs/{id}`, `DELETE /v1/jobs/{id}`, and
//!   `GET /v1/stats`.
//! * **Line-delimited JSON**: a first byte of `{` selects a persistent
//!   session where each line is an op (`generate`, `status`, `cancel`,
//!   `stats`) and each response is a line.
//!
//! Deterministic (greedy) generates are *idempotent*: a completed result is
//! published to a TTL'd content-hash [`cache::ResultCache`], duplicates of an
//! in-flight request coalesce onto the running primary, and repeats are
//! answered byte-identically with zero additional engine steps. Sampled
//! requests bypass both mechanisms by construction.

pub mod api;
pub mod backend;
pub mod cache;
pub mod client;
pub mod http;
pub mod jobs;

use backend::{Command, DedupState, PumpShared};
use cache::ResultCache;
use jobs::{JobState, JobTable};
use keyformer_model::families::ModelFamily;
use keyformer_serve::ServerConfig;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Model, engine and dedup configuration of one serving node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Model family the pump thread builds.
    pub family: ModelFamily,
    /// Seed for the model's deterministic weight initialisation.
    pub model_seed: u64,
    /// The engine configuration (policy, budget, pool, scheduler knobs).
    pub engine: ServerConfig,
    /// Enables the result cache and in-flight coalescing (default `true`).
    pub dedup: bool,
    /// Result-cache entry capacity (0 disables storage; default 256).
    pub cache_capacity: usize,
    /// Result-cache time-to-live in milliseconds (default one minute).
    pub cache_ttl_ms: u64,
    /// Terminal job records retained for polling before garbage collection
    /// (default 1024).
    pub retained_jobs: usize,
    /// Concurrent connection threads allowed; connections past the cap are
    /// answered `503` and closed, so a flood of sockets cannot exhaust
    /// threads or memory (default 256).
    pub max_connections: usize,
    /// Idle read timeout for persistent NDJSON sessions in milliseconds; a
    /// session silent this long is closed rather than pinning its thread
    /// forever. `0` disables the timeout (default five minutes).
    pub ndjson_idle_timeout_ms: u64,
}

impl NodeConfig {
    /// A node over `engine` with the test-sized model family, dedup on, and
    /// the default cache/retention sizing.
    pub fn new(family: ModelFamily, model_seed: u64, engine: ServerConfig) -> Self {
        NodeConfig {
            family,
            model_seed,
            engine,
            dedup: true,
            cache_capacity: 256,
            cache_ttl_ms: 60_000,
            retained_jobs: 1024,
            max_connections: 256,
            ndjson_idle_timeout_ms: 300_000,
        }
    }

    /// Enables or disables result caching and coalescing.
    pub fn with_dedup(mut self, enabled: bool) -> Self {
        self.dedup = enabled;
        self
    }

    /// Sets the result cache's capacity and TTL.
    pub fn with_cache(mut self, capacity: usize, ttl_ms: u64) -> Self {
        self.cache_capacity = capacity;
        self.cache_ttl_ms = ttl_ms;
        self
    }

    /// Sets how many terminal job records stay pollable.
    pub fn with_retained_jobs(mut self, retained: usize) -> Self {
        self.retained_jobs = retained;
        self
    }

    /// Caps the number of concurrent connection threads.
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Sets the NDJSON session idle timeout (`0` disables it).
    pub fn with_ndjson_idle_timeout(mut self, ms: u64) -> Self {
        self.ndjson_idle_timeout_ms = ms;
        self
    }
}

/// Everything a connection thread needs: the node configuration (for
/// resolving request defaults), the pump's shared state, and the command
/// channel into it.
pub struct NodeShared {
    /// The node's configuration, for default resolution and validation.
    pub config: NodeConfig,
    /// Job table, dedup state and engine snapshot shared with the pump.
    pub pump: Arc<PumpShared>,
    /// Command channel into the pump thread.
    pub cmd: mpsc::Sender<Command>,
}

/// Why a node failed to boot.
#[derive(Debug)]
pub enum ServeError {
    /// Binding the listener failed.
    Bind(std::io::Error),
    /// The engine configuration did not validate.
    Engine(keyformer_core::CoreError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind(e) => write!(f, "binding listener: {e}"),
            ServeError::Engine(e) => write!(f, "engine configuration: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A running node: joinable threads plus the shared state, shut down
/// explicitly via [`ServeHandle::shutdown`] or implicitly on drop.
pub struct ServeHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
    pump: Option<std::thread::JoinHandle<()>>,
    node: Arc<NodeShared>,
}

impl ServeHandle {
    /// The bound address (with the OS-assigned port when `addr` had port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared node state, for in-process inspection by tests and the
    /// harness (job counters, engine snapshot, cache stats).
    pub fn node(&self) -> &Arc<NodeShared> {
        &self.node
    }

    /// A [`client::Client`] bound to this node.
    pub fn client(&self) -> client::Client {
        client::Client::new(self.addr)
    }

    /// Stops accepting, cancels every live job, and joins both threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the accept loop exits (i.e. until another thread calls
    /// for shutdown or the process dies) — the binary's main loop.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop();
    }

    fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in accept(); a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let _ = self.node.cmd.send(Command::Shutdown);
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Boots a node: spawns the pump thread, binds `addr`, and starts the accept
/// loop. Returns once the engine has validated and the listener is live.
///
/// # Errors
///
/// [`ServeError::Engine`] when the engine configuration does not validate;
/// [`ServeError::Bind`] when the listener cannot bind.
pub fn serve(addr: &str, config: NodeConfig) -> Result<ServeHandle, ServeError> {
    let shared = Arc::new(PumpShared {
        jobs: Arc::new(JobTable::new(config.retained_jobs)),
        dedup: Arc::new(Mutex::new(DedupState::new(
            config.dedup,
            ResultCache::new(config.cache_capacity, config.cache_ttl_ms),
        ))),
        snapshot: Arc::new(Mutex::new(backend::EngineSnapshot::default())),
        started: Instant::now(),
    });
    let (cmd, pump) = backend::spawn_pump(
        config.family,
        config.model_seed,
        config.engine,
        Arc::clone(&shared),
    )
    .map_err(ServeError::Engine)?;
    let listener = match TcpListener::bind(addr) {
        Ok(listener) => listener,
        Err(e) => {
            let _ = cmd.send(Command::Shutdown);
            let _ = pump.join();
            return Err(ServeError::Bind(e));
        }
    };
    let local = listener.local_addr().map_err(ServeError::Bind)?;
    let node = Arc::new(NodeShared {
        config,
        pump: shared,
        cmd,
    });
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let node = Arc::clone(&node);
        let stop = Arc::clone(&stop);
        let active = Arc::new(AtomicUsize::new(0));
        std::thread::Builder::new()
            .name("kf-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // The cap bounds detached connection threads: past it the
                    // peer gets a fast 503 instead of a thread of its own.
                    if active.fetch_add(1, Ordering::SeqCst) >= node.config.max_connections {
                        active.fetch_sub(1, Ordering::SeqCst);
                        let fault = api::WireFault {
                            status: 503,
                            code: "overloaded",
                            message: "connection limit reached; retry shortly".to_string(),
                        };
                        let _ = http::write_response(&mut stream, fault.status, &fault.body());
                        continue;
                    }
                    let node = Arc::clone(&node);
                    let slot = SlotGuard(Arc::clone(&active));
                    // Connection threads are detached: they outlive at most
                    // one exchange (HTTP) or one idle-bounded session
                    // (NDJSON), and shutdown retires every job they could be
                    // waiting on.
                    let _ = std::thread::Builder::new()
                        .name("kf-serve-conn".into())
                        .spawn(move || {
                            let _slot = slot;
                            handle_connection(stream, &node);
                        });
                }
            })
            .expect("spawning the accept thread")
    };
    Ok(ServeHandle {
        addr: local,
        stop,
        accept: Some(accept),
        pump: Some(pump),
        node,
    })
}

/// Releases one connection-cap slot when its connection thread exits,
/// however it exits.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Dispatches one fresh connection to the protocol its first line selects: a
/// `{` opens a persistent NDJSON session, anything else is one HTTP exchange.
fn handle_connection(stream: TcpStream, node: &Arc<NodeShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let Ok(Some(first)) = http::read_line(&mut reader) else {
        return;
    };
    if first.trim_start().starts_with('{') {
        ndjson_session(&first, &mut reader, &mut writer, node);
    } else {
        http_exchange(&first, &mut reader, &mut writer, node);
    }
}

/// Serves one HTTP request and closes.
fn http_exchange(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut TcpStream,
    node: &Arc<NodeShared>,
) {
    let request = match http::parse_http(first, reader) {
        Ok(request) => request,
        Err(message) => {
            let fault = api::WireFault {
                status: 400,
                code: "malformed_request",
                message,
            };
            let _ = http::write_response(writer, fault.status, &fault.body());
            return;
        }
    };
    let job_path = request.path.strip_prefix("/v1/jobs/");
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/generate") => handle_generate(&request.body, writer, node),
        ("GET", "/v1/stats") => {
            let _ = http::write_response(writer, 200, &api::stats_body(node));
        }
        ("GET", _) if job_path.is_some() => match job_path.and_then(|id| id.parse::<u64>().ok()) {
            Some(id) => match api::job_body(node, id) {
                Some(body) => {
                    let _ = http::write_response(writer, 200, &body);
                }
                None => {
                    let _ = http::write_response(writer, 404, &not_found(id));
                }
            },
            None => {
                let fault = api::WireFault {
                    status: 400,
                    code: "invalid_request",
                    message: "job ids are integers".to_string(),
                };
                let _ = http::write_response(writer, 400, &fault.body());
            }
        },
        ("DELETE", _) if job_path.is_some() => {
            match job_path.and_then(|id| id.parse::<u64>().ok()) {
                Some(id) => match api::cancel_job(node, id) {
                    Some((status, body)) => {
                        let _ = http::write_response(writer, status, &body);
                    }
                    None => {
                        let _ = http::write_response(writer, 404, &not_found(id));
                    }
                },
                None => {
                    let fault = api::WireFault {
                        status: 400,
                        code: "invalid_request",
                        message: "job ids are integers".to_string(),
                    };
                    let _ = http::write_response(writer, 400, &fault.body());
                }
            }
        }
        (_, "/v1/generate") | (_, "/v1/stats") => {
            let fault = api::WireFault {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} is not supported here", request.method),
            };
            let _ = http::write_response(writer, 405, &fault.body());
        }
        (_, _) if job_path.is_some() => {
            let fault = api::WireFault {
                status: 405,
                code: "method_not_allowed",
                message: format!("{} is not supported here", request.method),
            };
            let _ = http::write_response(writer, 405, &fault.body());
        }
        _ => {
            let fault = api::WireFault {
                status: 404,
                code: "not_found",
                message: format!("no such surface: {}", request.path),
            };
            let _ = http::write_response(writer, 404, &fault.body());
        }
    }
}

fn not_found(job: u64) -> String {
    api::json_obj(vec![
        ("error", Value::Str("not_found".to_string())),
        ("message", Value::Str(format!("no job {job}"))),
    ])
}

/// `POST /v1/generate`: parse, validate, admit, then answer unary or stream.
fn handle_generate(body: &[u8], writer: &mut TcpStream, node: &Arc<NodeShared>) {
    let spec = match parse_generate_body(body, node) {
        Ok(spec) => spec,
        Err(fault) => {
            let _ = http::write_response(writer, fault.status, &fault.body());
            return;
        }
    };
    let wants_stream = spec.stream;
    let admission = api::admit(spec, node);
    let job = admission.job();
    if wants_stream {
        if http::start_chunked(writer, 200).is_err() {
            let _ = node.cmd.send(Command::Cancel { job });
            return;
        }
        let preamble = api::json_obj(vec![
            ("event", Value::Str("accepted".to_string())),
            ("job_id", Value::UInt(job)),
            (
                "deduplicated",
                Value::Bool(!matches!(admission, api::Admission::Fresh { .. })),
            ),
        ]);
        if http::write_chunk(writer, &format!("{preamble}\n")).is_err() {
            let _ = node.cmd.send(Command::Cancel { job });
            return;
        }
        api::drive_stream(node, job, |line| {
            http::write_chunk(writer, &format!("{line}\n"))
        });
        let _ = http::finish_chunked(writer);
    } else {
        let state = node
            .pump
            .jobs
            .with_job(job, |r| r.state)
            .unwrap_or(JobState::Queued);
        let status = if matches!(admission, api::Admission::CacheHit { .. }) {
            200
        } else {
            202
        };
        let _ = http::write_response(writer, status, &api::admission_body(&admission, state));
    }
}

fn parse_generate_body(
    body: &[u8],
    node: &NodeShared,
) -> Result<api::GenerateSpec, api::WireFault> {
    let text = std::str::from_utf8(body).map_err(|_| api::WireFault {
        status: 400,
        code: "invalid_request",
        message: "body is not UTF-8".to_string(),
    })?;
    let value = serde_json::from_str::<Value>(text).map_err(|e| api::WireFault {
        status: 400,
        code: "invalid_json",
        message: e.to_string(),
    })?;
    api::parse_generate(&value, node)
}

/// Runs a persistent line-delimited-JSON session: each request line is an op,
/// each response is a line (streaming generates emit several).
fn ndjson_session(
    first: &str,
    reader: &mut impl BufRead,
    writer: &mut TcpStream,
    node: &Arc<NodeShared>,
) {
    // Sessions may idle between ops, so the tight protocol-sniff timeout is
    // replaced with a generous idle bound: a peer silent that long ends the
    // session (the read errors out and the loop returns) instead of pinning
    // its connection thread forever.
    let idle = node.config.ndjson_idle_timeout_ms;
    let _ = writer.set_read_timeout(if idle == 0 {
        None
    } else {
        Some(Duration::from_millis(idle))
    });
    let mut line = first.to_string();
    loop {
        if !line.trim().is_empty() && ndjson_op(line.trim(), writer, node).is_err() {
            return;
        }
        match http::read_line(reader) {
            Ok(Some(next)) => line = next,
            Ok(None) | Err(_) => return,
        }
    }
}

/// Handles one NDJSON op line; `Err` means the peer is gone.
fn ndjson_op(line: &str, writer: &mut TcpStream, node: &Arc<NodeShared>) -> std::io::Result<()> {
    let fault_line = |code: &'static str, message: String| {
        api::json_obj(vec![
            ("error", Value::Str(code.to_string())),
            ("message", Value::Str(message)),
        ])
    };
    let value = match serde_json::from_str::<Value>(line) {
        Ok(value) => value,
        Err(e) => return writeln!(writer, "{}", fault_line("invalid_json", e.to_string())),
    };
    let op = match value.field("op") {
        Ok(Value::Str(op)) => op.clone(),
        _ => {
            return writeln!(
                writer,
                "{}",
                fault_line("invalid_request", "missing `op`".to_string())
            )
        }
    };
    match op.as_str() {
        "generate" => {
            let spec = match api::parse_generate(&value, node) {
                Ok(spec) => spec,
                Err(fault) => return writeln!(writer, "{}", fault.body()),
            };
            let wants_stream = spec.stream;
            let admission = api::admit(spec, node);
            let job = admission.job();
            if wants_stream {
                let preamble = api::json_obj(vec![
                    ("event", Value::Str("accepted".to_string())),
                    ("job_id", Value::UInt(job)),
                    (
                        "deduplicated",
                        Value::Bool(!matches!(admission, api::Admission::Fresh { .. })),
                    ),
                ]);
                writeln!(writer, "{preamble}")?;
                writer.flush()?;
                api::drive_stream(node, job, |event| {
                    writeln!(writer, "{event}")?;
                    writer.flush()
                });
                Ok(())
            } else {
                let state = node
                    .pump
                    .jobs
                    .with_job(job, |r| r.state)
                    .unwrap_or(JobState::Queued);
                writeln!(writer, "{}", api::admission_body(&admission, state))
            }
        }
        "status" => match client::u64_field(&value, "job_id") {
            Some(id) => match api::job_body(node, id) {
                Some(body) => writeln!(writer, "{body}"),
                None => writeln!(writer, "{}", not_found(id)),
            },
            None => writeln!(
                writer,
                "{}",
                fault_line("invalid_request", "missing `job_id`".to_string())
            ),
        },
        "cancel" => match client::u64_field(&value, "job_id") {
            Some(id) => match api::cancel_job(node, id) {
                Some((_, body)) => writeln!(writer, "{body}"),
                None => writeln!(writer, "{}", not_found(id)),
            },
            None => writeln!(
                writer,
                "{}",
                fault_line("invalid_request", "missing `job_id`".to_string())
            ),
        },
        "stats" => writeln!(writer, "{}", api::stats_body(node)),
        other => writeln!(
            writer,
            "{}",
            fault_line("invalid_request", format!("unknown op `{other}`"))
        ),
    }
}

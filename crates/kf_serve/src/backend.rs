//! The engine pump: one dedicated thread owns the model and the
//! [`Engine`], steps it while work is pending, and translates its event
//! stream into job-table updates. Connection threads never touch the engine —
//! they enqueue [`Command`]s over a channel and read the job table, so the
//! single-threaded scheduler keeps its determinism while any number of
//! sockets talk to it.
//!
//! Deduplication lives here too: a completed primary publishes its result to
//! the [`ResultCache`] and resolves every coalesced follower; a cancelled
//! primary *promotes* its oldest follower into a fresh engine run (token-
//! identical, since only deterministic requests coalesce); a failed primary
//! fails its followers with the same wire error.
//!
//! Lock order is dedup state → job table, everywhere. The job table's
//! methods take and release its own lock internally and never reach back
//! into the dedup state, so the order cannot invert.

use crate::cache::{CachedResult, ResultCache, ResultKey};
use crate::jobs::{JobError, JobId, JobState, JobTable};
use keyformer_model::families::ModelFamily;
use keyformer_serve::{
    Engine, EventKind, FailureReason, Request, RequestId, ServerConfig, SubmitOptions,
};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// What connection threads may ask of the pump.
pub enum Command {
    /// Submit a resolved request to the engine under job id `job`.
    Submit {
        /// The job (and engine request) id.
        job: JobId,
        /// The resolved cache key, which doubles as the full request payload.
        key: ResultKey,
        /// Scheduling options (priority, deadline).
        options: SubmitOptions,
    },
    /// Cancel a job, wherever it is (queued, running, or coalesced).
    Cancel {
        /// The job to cancel.
        job: JobId,
    },
    /// Stop the pump: every live job is retired as cancelled and the thread
    /// exits.
    Shutdown,
}

/// One in-flight deduplication group: the primary actually running on the
/// engine plus the duplicates riding on its result. Each follower keeps the
/// [`SubmitOptions`] its own request carried, so a promotion after the
/// primary cancels resubmits with the promoted request's priority/deadline
/// instead of silently reverting to the defaults.
struct Inflight {
    key: ResultKey,
    primary: JobId,
    followers: Vec<(JobId, SubmitOptions)>,
}

/// Shared dedup state: the result cache plus the in-flight coalescing table.
/// Connection threads consult it at submission (under its mutex); the pump
/// updates it at completion.
pub struct DedupState {
    /// `false` disables both the cache and coalescing (every request runs).
    pub enabled: bool,
    /// The TTL'd result cache.
    pub cache: ResultCache,
    /// Content hash → in-flight groups (chained like the cache, exact-key
    /// matched).
    inflight: HashMap<u64, Vec<Inflight>>,
}

impl DedupState {
    /// Fresh state with the given cache and dedup switch.
    pub fn new(enabled: bool, cache: ResultCache) -> Self {
        DedupState {
            enabled,
            cache,
            inflight: HashMap::new(),
        }
    }

    /// Registers `primary` as the running job for `key`.
    pub fn register_inflight(&mut self, key: ResultKey, primary: JobId) {
        self.inflight
            .entry(key.content_hash())
            .or_default()
            .push(Inflight {
                key,
                primary,
                followers: Vec::new(),
            });
    }

    /// Attaches `follower` to the in-flight group for `key`, remembering its
    /// own scheduling `options` for a possible later promotion. Returns the
    /// primary's id when a group exists.
    pub fn attach_follower(
        &mut self,
        key: &ResultKey,
        follower: JobId,
        options: SubmitOptions,
    ) -> Option<JobId> {
        let group = self
            .inflight
            .get_mut(&key.content_hash())?
            .iter_mut()
            .find(|g| g.key == *key)?;
        group.followers.push((follower, options));
        Some(group.primary)
    }

    /// Detaches a cancelled follower from whichever group holds it.
    pub fn detach_follower(&mut self, follower: JobId) {
        for chain in self.inflight.values_mut() {
            for group in chain.iter_mut() {
                group.followers.retain(|&(f, _)| f != follower);
            }
        }
    }

    /// Removes and returns the group whose primary is `job`, if any.
    fn take_group_of_primary(&mut self, job: JobId) -> Option<Inflight> {
        let hash = *self
            .inflight
            .iter()
            .find(|(_, chain)| chain.iter().any(|g| g.primary == job))?
            .0;
        let chain = self.inflight.get_mut(&hash)?;
        let at = chain.iter().position(|g| g.primary == job)?;
        let group = chain.remove(at);
        if chain.is_empty() {
            self.inflight.remove(&hash);
        }
        Some(group)
    }

    /// In-flight groups currently registered.
    pub fn inflight_groups(&self) -> usize {
        self.inflight.values().map(Vec::len).sum()
    }
}

/// Point-in-time engine counters published by the pump after every step, so
/// `GET /v1/stats` never has to touch the engine thread.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct EngineSnapshot {
    /// Scheduler steps executed so far.
    pub steps: usize,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Sessions currently running.
    pub running: usize,
    /// Engine lifetime counters (`None` until the engine has booted).
    pub stats: Option<keyformer_serve::ServerStats>,
    /// Pool accounting (`None` until the engine has booted).
    pub pool: Option<keyformer_core::block::BlockPoolStats>,
    /// Prefix-registry counters, when sharing is on.
    pub registry: Option<keyformer_core::prefix::PrefixRegistryStats>,
}

/// Everything the pump thread shares with the wire layer.
pub struct PumpShared {
    /// The job table.
    pub jobs: Arc<JobTable>,
    /// Cache + coalescing state.
    pub dedup: Arc<Mutex<DedupState>>,
    /// Latest engine snapshot.
    pub snapshot: Arc<Mutex<EngineSnapshot>>,
    /// Milliseconds since the server started (the cache's time base).
    pub started: std::time::Instant,
}

impl PumpShared {
    /// Milliseconds elapsed since the server started — the `now_ms` every
    /// cache call uses.
    pub fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Locks the dedup state (poison-tolerant).
    pub fn dedup(&self) -> std::sync::MutexGuard<'_, DedupState> {
        self.dedup
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Spawns the pump thread: builds the model and engine in-thread (the engine
/// borrows the model, so both must live there), reports the engine's
/// validation result back, then pumps until [`Command::Shutdown`] or every
/// sender is dropped.
///
/// # Errors
///
/// Returns the engine's [`keyformer_core::CoreError`] when the configuration
/// does not validate; the thread exits in that case.
pub fn spawn_pump(
    family: ModelFamily,
    model_seed: u64,
    config: ServerConfig,
    shared: Arc<PumpShared>,
) -> Result<(mpsc::Sender<Command>, std::thread::JoinHandle<()>), keyformer_core::CoreError> {
    let (tx, rx) = mpsc::channel::<Command>();
    let (init_tx, init_rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name("kf-serve-pump".into())
        .spawn(move || {
            let model = family.build(model_seed);
            let mut engine = match Engine::new(&model, config) {
                Ok(engine) => {
                    let _ = init_tx.send(Ok(()));
                    engine
                }
                Err(e) => {
                    let _ = init_tx.send(Err(e));
                    return;
                }
            };
            engine.record_events(true);
            let mut pump = Pump {
                engine,
                shared,
                done_cursor: 0,
                failed_cursor: 0,
            };
            pump.run(&rx);
        })
        .expect("spawning the pump thread");
    match init_rx.recv() {
        Ok(Ok(())) => Ok((tx, handle)),
        Ok(Err(e)) => {
            let _ = handle.join();
            Err(e)
        }
        Err(_) => unreachable!("the pump thread always reports its init result"),
    }
}

struct Pump<'m> {
    engine: Engine<'m>,
    shared: Arc<PumpShared>,
    done_cursor: usize,
    failed_cursor: usize,
}

impl Pump<'_> {
    fn run(&mut self, rx: &mpsc::Receiver<Command>) {
        loop {
            // Idle: publish the quiescent snapshot and block for work.
            if self.engine.is_idle() {
                self.publish_snapshot();
                match rx.recv() {
                    Ok(Command::Shutdown) | Err(_) => break,
                    Ok(cmd) => self.handle(cmd),
                }
            }
            // Busy: drain whatever queued without blocking, then step.
            let mut shutdown = false;
            while let Ok(cmd) = rx.try_recv() {
                match cmd {
                    Command::Shutdown => {
                        shutdown = true;
                        break;
                    }
                    cmd => self.handle(cmd),
                }
            }
            if shutdown {
                break;
            }
            if !self.engine.is_idle() {
                self.engine.step();
            }
            self.dispatch_events();
            self.harvest_retirements();
            self.publish_snapshot();
        }
        self.retire_live_jobs_as_cancelled();
        self.publish_snapshot();
    }

    fn handle(&mut self, cmd: Command) {
        match cmd {
            Command::Submit { job, key, options } => self.submit(job, key, options),
            Command::Cancel { job } => self.cancel(job),
            Command::Shutdown => unreachable!("shutdown is intercepted by the run loop"),
        }
    }

    /// Submits `key` to the engine as request `job`. The wire layer already
    /// validated the payload, so a rejection here is a server-side bug or
    /// race — the job fails with the structured submit-rejection code either
    /// way.
    fn submit(&mut self, job: JobId, key: ResultKey, options: SubmitOptions) {
        let mut request = Request::new(job, key.prompt.clone(), key.config).with_policy(key.policy);
        request = match key.budget {
            Some(budget) => request.with_budget(budget),
            None => request.with_unbudgeted(),
        };
        let options = options.with_kv_dtype(key.dtype);
        if let Err(e) = self.engine.submit_with(request, options) {
            let wire = keyformer_serve::submit_rejection(&e);
            let mut dedup = self.shared.dedup();
            let group = dedup.take_group_of_primary(job);
            drop(dedup);
            self.fail_job(job, wire, format!("submit rejected: {e}"));
            for (follower, _) in group.into_iter().flat_map(|g| g.followers) {
                self.fail_job(follower, wire, format!("submit rejected: {e}"));
            }
        }
    }

    fn cancel(&mut self, job: JobId) {
        enum Kind {
            Done,
            Follower,
            Engine,
        }
        let kind = self
            .shared
            .jobs
            .with_job(job, |r| {
                if r.state.is_terminal() {
                    Kind::Done
                } else if r.coalesced_into.is_some() {
                    Kind::Follower
                } else {
                    Kind::Engine
                }
            })
            .unwrap_or(Kind::Done);
        match kind {
            Kind::Done => {}
            Kind::Follower => {
                self.shared.dedup().detach_follower(job);
                self.shared.jobs.update(job, |r, c| {
                    r.state = JobState::Cancelled;
                    c.cancelled += 1;
                });
            }
            Kind::Engine => {
                if !self.engine.cancel(RequestId::new(job)) {
                    // Not in the engine (e.g. it already retired this step):
                    // the event/retirement dispatch owns the record then.
                }
            }
        }
    }

    fn dispatch_events(&mut self) {
        for event in self.engine.drain_events() {
            let job = event.id.raw();
            match event.kind {
                EventKind::Queued | EventKind::Completed { .. } | EventKind::Failed { .. } => {
                    // Queued is the job's birth state; terminal retirements
                    // are harvested from completions()/failures(), which
                    // carry the payload.
                }
                EventKind::PrefillStarted | EventKind::Resumed => {
                    self.shared
                        .jobs
                        .update(job, |r, _| r.state = JobState::Running);
                }
                EventKind::Preempted => {
                    self.shared
                        .jobs
                        .update(job, |r, _| r.state = JobState::Queued);
                }
                EventKind::FirstToken { token } | EventKind::Token { token, .. } => {
                    self.shared.jobs.update(job, |r, _| r.tokens.push(token));
                }
                EventKind::Cancelled => self.finish_cancelled(job),
            }
        }
    }

    /// Applies completions and failures the engine retired since last poll.
    fn harvest_retirements(&mut self) {
        let completions: Vec<(JobId, Vec<u32>)> = self.engine.completions()[self.done_cursor..]
            .iter()
            .map(|c| (c.id.raw(), c.output.generated.clone()))
            .collect();
        self.done_cursor = self.engine.completions().len();
        for (job, tokens) in completions {
            self.finish_completed(job, tokens);
        }
        let failures: Vec<(JobId, keyformer_serve::WireCode, String)> = self.engine.failures()
            [self.failed_cursor..]
            .iter()
            .filter(|f| !matches!(f.reason, FailureReason::Cancelled))
            .map(|f| (f.id.raw(), f.reason.wire(), f.reason.to_string()))
            .collect();
        self.failed_cursor = self.engine.failures().len();
        for (job, wire, message) in failures {
            let group = self.shared.dedup().take_group_of_primary(job);
            self.fail_job(job, wire, message.clone());
            for (follower, _) in group.into_iter().flat_map(|g| g.followers) {
                self.fail_job(follower, wire, message.clone());
            }
        }
    }

    /// A primary completed: publish to the cache, resolve every follower.
    fn finish_completed(&mut self, job: JobId, tokens: Vec<u32>) {
        let key = self.shared.jobs.with_job(job, |r| r.key.clone()).flatten();
        let followers = {
            let mut dedup = self.shared.dedup();
            let followers = dedup
                .take_group_of_primary(job)
                .map(|g| g.followers)
                .unwrap_or_default();
            if let Some(key) = key {
                let prompt_len = key.prompt.len();
                let now = self.shared.now_ms();
                if dedup.enabled {
                    dedup.cache.insert(
                        key,
                        CachedResult {
                            tokens: tokens.clone(),
                            prompt_len,
                        },
                        now,
                    );
                }
            }
            followers
        };
        self.shared.jobs.update(job, |r, c| {
            r.state = JobState::Done;
            r.tokens = tokens.clone();
            r.key = None;
            c.completed += 1;
        });
        for (follower, _) in followers {
            self.shared.jobs.update(follower, |r, _| {
                r.state = JobState::Done;
                r.tokens = tokens.clone();
                r.deduplicated = true;
                // The tokens are the follower's own now: detach it from the
                // primary so its stream survives the primary record's GC.
                r.coalesced_into = None;
                r.key = None;
            });
        }
    }

    /// A job the engine retired as cancelled. A primary with followers hands
    /// its group to the oldest follower, which is resubmitted to the engine —
    /// deterministic requests recompute token-identically, so follower
    /// streams continue seamlessly.
    fn finish_cancelled(&mut self, job: JobId) {
        let group = self.shared.dedup().take_group_of_primary(job);
        self.shared.jobs.update(job, |r, c| {
            r.state = JobState::Cancelled;
            r.key = None;
            c.cancelled += 1;
        });
        let Some(group) = group else {
            return;
        };
        let mut followers = group.followers.into_iter();
        let Some((promoted, promoted_options)) = followers.next() else {
            return;
        };
        let rest: Vec<(JobId, SubmitOptions)> = followers.collect();
        self.shared.jobs.update(promoted, |r, _| {
            r.state = JobState::Queued;
            r.coalesced_into = None;
        });
        for &(follower, _) in &rest {
            self.shared.jobs.update(follower, |r, _| {
                r.coalesced_into = Some(promoted);
            });
        }
        {
            let mut dedup = self.shared.dedup();
            dedup.register_inflight(group.key.clone(), promoted);
            for (follower, options) in rest {
                dedup.attach_follower(&group.key, follower, options);
            }
        }
        // The promoted run keeps the scheduling options its own request
        // carried (priority, deadline) rather than reverting to defaults.
        self.submit(promoted, group.key, promoted_options);
    }

    fn fail_job(&self, job: JobId, wire: keyformer_serve::WireCode, message: String) {
        self.shared.jobs.update(job, |r, c| {
            r.state = JobState::Failed;
            r.error = Some(JobError { wire, message });
            r.key = None;
            c.failed += 1;
        });
    }

    /// On shutdown, every job still live is retired as cancelled so waiting
    /// streams and pollers terminate instead of hanging.
    fn retire_live_jobs_as_cancelled(&mut self) {
        for job in self.shared.jobs.live_ids() {
            self.shared.jobs.update(job, |r, c| {
                r.state = JobState::Cancelled;
                r.key = None;
                c.cancelled += 1;
            });
        }
    }

    fn publish_snapshot(&self) {
        let snapshot = EngineSnapshot {
            steps: self.engine.steps(),
            queued: self.engine.queued(),
            running: self.engine.running(),
            stats: Some(*self.engine.stats()),
            pool: Some(self.engine.pool_stats()),
            registry: self.engine.registry_stats(),
        };
        *self
            .shared
            .snapshot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyformer_core::cache::KvDtype;
    use keyformer_core::spec::PolicySpec;
    use keyformer_model::generation::GenerationConfig;

    fn key(salt: u32) -> ResultKey {
        ResultKey {
            prompt: vec![salt, 2, 3],
            policy: PolicySpec::Full,
            budget: None,
            dtype: KvDtype::F32,
            config: GenerationConfig::new(4),
        }
    }

    #[test]
    fn followers_keep_their_submit_options_for_promotion() {
        let mut dedup = DedupState::new(true, ResultCache::new(4, 1_000));
        dedup.register_inflight(key(1), 1);
        let urgent = SubmitOptions::new().with_priority(7).with_deadline_steps(9);
        assert_eq!(dedup.attach_follower(&key(1), 2, urgent), Some(1));
        assert_eq!(
            dedup.attach_follower(&key(1), 3, SubmitOptions::new()),
            Some(1)
        );
        // A cancelled primary promotes its oldest follower with the options
        // that follower's own request carried, not the defaults.
        let group = dedup.take_group_of_primary(1).unwrap();
        assert_eq!(group.followers[0], (2, urgent));
        assert_eq!(group.followers[1], (3, SubmitOptions::new()));
        assert_eq!(dedup.inflight_groups(), 0);
    }
}

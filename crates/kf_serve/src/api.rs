//! Request parsing, routing and response shaping for the four wire surfaces:
//!
//! * `POST /v1/generate` — accept a generate call, answer `202` with a job id
//!   (or the cached result), or stream per-token NDJSON chunks when the body
//!   sets `"stream": true`.
//! * `GET /v1/jobs/{id}` — status/result polling.
//! * `DELETE /v1/jobs/{id}` — cancellation.
//! * `GET /v1/stats` — job, engine, pool, registry and cache counters.
//!
//! The same handlers back the NDJSON fallback protocol ([`crate::serve`]
//! routes to them), so both wire formats have identical semantics.
//!
//! Validation happens here, synchronously, against the resolved server
//! defaults — a request the wire layer accepts cannot be rejected by the
//! engine later (a pump-side rejection is mapped to a failed job with the
//! structured [`keyformer_serve::submit_rejection`] code all the same).

use crate::backend::Command;
use crate::cache::ResultKey;
use crate::jobs::{JobState, StreamSnapshot};
use crate::NodeShared;
use keyformer_core::budget::CacheBudgetSpec;
use keyformer_core::cache::KvDtype;
use keyformer_core::spec::PolicySpec;
use keyformer_model::generation::GenerationConfig;
use keyformer_serve::SubmitOptions;
use serde::{Serialize, Value};
use std::time::Duration;

/// A wire-level rejection: HTTP status, stable code, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// HTTP status to answer with.
    pub status: u16,
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireFault {
    fn bad_request(message: impl Into<String>) -> Self {
        WireFault {
            status: 400,
            code: "invalid_request",
            message: message.into(),
        }
    }

    /// Renders the fault as a JSON error body.
    pub fn body(&self) -> String {
        json_obj(vec![
            ("error", Value::Str(self.code.to_string())),
            ("message", Value::Str(self.message.clone())),
        ])
    }
}

/// Builds a JSON object string from ordered key/value pairs.
pub fn json_obj(entries: Vec<(&str, Value)>) -> String {
    let value = Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    serde_json::to_string(&value).expect("wire values contain no non-finite floats")
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn opt_u64(body: &Value, field: &str) -> Result<Option<u64>, WireFault> {
    match body
        .field(field)
        .map_err(|e| WireFault::bad_request(e.to_string()))?
    {
        Value::Null => Ok(None),
        v => as_u64(v).map(Some).ok_or_else(|| {
            WireFault::bad_request(format!("`{field}` must be a non-negative integer"))
        }),
    }
}

fn opt_f64(body: &Value, field: &str) -> Result<Option<f64>, WireFault> {
    match body
        .field(field)
        .map_err(|e| WireFault::bad_request(e.to_string()))?
    {
        Value::Null => Ok(None),
        v => as_f64(v)
            .map(Some)
            .ok_or_else(|| WireFault::bad_request(format!("`{field}` must be a number"))),
    }
}

fn opt_bool(body: &Value, field: &str) -> Result<bool, WireFault> {
    match body
        .field(field)
        .map_err(|e| WireFault::bad_request(e.to_string()))?
    {
        Value::Null => Ok(false),
        Value::Bool(b) => Ok(*b),
        _ => Err(WireFault::bad_request(format!(
            "`{field}` must be a boolean"
        ))),
    }
}

fn opt_str<'v>(body: &'v Value, field: &str) -> Result<Option<&'v str>, WireFault> {
    match body
        .field(field)
        .map_err(|e| WireFault::bad_request(e.to_string()))?
    {
        Value::Null => Ok(None),
        Value::Str(s) => Ok(Some(s.as_str())),
        _ => Err(WireFault::bad_request(format!(
            "`{field}` must be a string"
        ))),
    }
}

/// Parses a policy name into a [`PolicySpec`] with the paper-default
/// parameters for the parameterised families.
fn parse_policy(name: &str) -> Result<PolicySpec, WireFault> {
    Ok(match name {
        "full" => PolicySpec::Full,
        "window" => PolicySpec::Window,
        "dilated" => PolicySpec::DilatedWindow { dilation: 1 },
        "key_only" => PolicySpec::KeyOnly,
        "h2o" => PolicySpec::h2o_default(),
        "damped" => PolicySpec::Damped { alpha: 0.9 },
        "streaming_llm" => PolicySpec::streaming_default(),
        "keyformer" => PolicySpec::keyformer_default(),
        other => {
            return Err(WireFault::bad_request(format!(
                "unknown policy `{other}` (expected one of full, window, dilated, key_only, \
                 h2o, damped, streaming_llm, keyformer)"
            )))
        }
    })
}

/// One fully validated generate call: the resolved cache key plus its
/// scheduling options and delivery mode.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateSpec {
    /// The resolved cache key — also the complete request payload.
    pub key: ResultKey,
    /// Scheduling priority and deadline.
    pub options: SubmitOptions,
    /// `true` streams per-token chunks instead of answering with a job id.
    pub stream: bool,
    /// `true` bypasses the result cache and coalescing for this call.
    pub no_cache: bool,
}

/// Parses and validates a generate body against the node's defaults,
/// resolving every omitted field so the resulting [`ResultKey`] is canonical:
/// two requests that mean the same generation produce equal keys however they
/// spelled it.
pub fn parse_generate(body: &Value, node: &NodeShared) -> Result<GenerateSpec, WireFault> {
    let config = &node.config.engine;
    let prompt_value = body
        .field("prompt")
        .map_err(|e| WireFault::bad_request(e.to_string()))?;
    let Value::Seq(items) = prompt_value else {
        return Err(WireFault::bad_request(
            "`prompt` must be an array of token ids",
        ));
    };
    if items.is_empty() {
        return Err(WireFault::bad_request("`prompt` must not be empty"));
    }
    let mut prompt = Vec::with_capacity(items.len());
    for item in items {
        let token = as_u64(item)
            .filter(|&t| t <= u64::from(u32::MAX))
            .ok_or_else(|| WireFault::bad_request("`prompt` tokens must be u32 ids"))?;
        prompt.push(token as u32);
    }

    let max_new_tokens = opt_u64(body, "max_new_tokens")?.unwrap_or(16) as usize;
    if max_new_tokens == 0 {
        return Err(WireFault::bad_request("`max_new_tokens` must be positive"));
    }
    let mut generation = GenerationConfig::new(max_new_tokens);
    if let Some(eos) = opt_u64(body, "eos_token")? {
        let eos = u32::try_from(eos)
            .map_err(|_| WireFault::bad_request("`eos_token` must be a u32 id"))?;
        generation = generation.with_eos(eos);
    }
    let top_k = opt_u64(body, "top_k")?.unwrap_or(0) as usize;
    if top_k > 0 {
        let temperature = opt_f64(body, "temperature")?.unwrap_or(1.0);
        if temperature.is_nan() || temperature <= 0.0 {
            return Err(WireFault::bad_request(
                "`temperature` must be positive for top-k sampling",
            ));
        }
        let seed = opt_u64(body, "seed")?.unwrap_or(0);
        generation = generation.with_top_k(top_k, temperature as f32, seed);
    } else if opt_f64(body, "temperature")?.is_some_and(|t| t > 0.0) {
        return Err(WireFault::bad_request(
            "a positive `temperature` requires `top_k` >= 1",
        ));
    }
    if let Some(penalty) = opt_f64(body, "repetition_penalty")? {
        if penalty < 0.0 {
            return Err(WireFault::bad_request(
                "`repetition_penalty` must be non-negative",
            ));
        }
        generation = generation.with_repetition_penalty(penalty as f32);
    }

    let policy = match opt_str(body, "policy")? {
        Some(name) => parse_policy(name)?,
        None => config.policy,
    };
    policy
        .build()
        .map_err(|e| WireFault::bad_request(format!("policy does not build: {e}")))?;

    let budget =
        if opt_bool(body, "unbudgeted")? {
            None
        } else {
            match opt_f64(body, "budget_fraction")? {
                Some(fraction) => Some(CacheBudgetSpec::with_fraction(fraction).map_err(|e| {
                    WireFault::bad_request(format!("invalid `budget_fraction`: {e}"))
                })?),
                None => config.budget,
            }
        };

    let dtype = match opt_str(body, "kv_dtype")? {
        None => config.kv_dtype,
        Some("f32") => KvDtype::F32,
        Some("u8") => KvDtype::U8,
        Some(other) => {
            return Err(WireFault::bad_request(format!(
                "unknown `kv_dtype` `{other}` (expected f32 or u8)"
            )))
        }
    };
    if dtype.bytes_per_value() > config.kv_dtype.bytes_per_value() {
        return Err(WireFault::bad_request(format!(
            "`kv_dtype` {} is wider than the engine pool's {}; per-request overrides may \
             only narrow",
            dtype.label(),
            config.kv_dtype.label()
        )));
    }

    let priority = opt_u64(body, "priority")?.unwrap_or(0);
    let priority =
        u8::try_from(priority).map_err(|_| WireFault::bad_request("`priority` must fit a u8"))?;
    let mut options = SubmitOptions::new().with_priority(priority);
    if let Some(deadline) = opt_u64(body, "deadline_steps")? {
        options = options.with_deadline_steps(deadline as usize);
    }

    Ok(GenerateSpec {
        key: ResultKey {
            prompt,
            policy,
            budget,
            dtype,
            config: generation,
        },
        options,
        stream: opt_bool(body, "stream")?,
        no_cache: opt_bool(body, "no_cache")?,
    })
}

/// How an accepted generate call will be answered.
pub enum Admission {
    /// Served straight from the result cache: the job was born `Done`.
    CacheHit {
        /// The new job's id.
        job: u64,
        /// The cached token stream.
        tokens: Vec<u32>,
    },
    /// Attached to an in-flight twin; tokens arrive via the primary.
    Coalesced {
        /// The new job's id.
        job: u64,
        /// The primary's id (reported on the wire for observability).
        primary: u64,
    },
    /// A fresh engine run was enqueued.
    Fresh {
        /// The new job's id.
        job: u64,
    },
}

impl Admission {
    /// The id of the job this admission created.
    pub fn job(&self) -> u64 {
        match self {
            Admission::CacheHit { job, .. }
            | Admission::Coalesced { job, .. }
            | Admission::Fresh { job } => *job,
        }
    }
}

/// Admits a validated generate call: consults the cache and the in-flight
/// table under one dedup lock (so two racing duplicates cannot both become
/// primaries), creates the job, and enqueues a pump command for fresh runs.
pub fn admit(spec: GenerateSpec, node: &NodeShared) -> Admission {
    let jobs = &node.pump.jobs;
    let prompt_len = spec.key.prompt.len();
    let dedup_eligible = !spec.no_cache && spec.key.is_deterministic();
    let mut dedup = node.pump.dedup();
    if dedup.enabled && dedup_eligible {
        let now = node.pump.now_ms();
        if let Some(result) = dedup.cache.get(&spec.key, now) {
            drop(dedup);
            let job = jobs.create(prompt_len, None, JobState::Done);
            jobs.update(job, |r, c| {
                r.tokens = result.tokens.clone();
                r.deduplicated = true;
                c.cache_hits += 1;
            });
            return Admission::CacheHit {
                job,
                tokens: result.tokens,
            };
        }
        let job = jobs.create(prompt_len, Some(spec.key.clone()), JobState::Queued);
        if let Some(primary) = dedup.attach_follower(&spec.key, job, spec.options) {
            drop(dedup);
            jobs.update(job, |r, c| {
                r.coalesced_into = Some(primary);
                r.deduplicated = true;
                c.coalesced += 1;
            });
            return Admission::Coalesced { job, primary };
        }
        dedup.register_inflight(spec.key.clone(), job);
        drop(dedup);
        let _ = node.cmd.send(Command::Submit {
            job,
            key: spec.key,
            options: spec.options,
        });
        return Admission::Fresh { job };
    }
    drop(dedup);
    let job = jobs.create(prompt_len, Some(spec.key.clone()), JobState::Queued);
    let _ = node.cmd.send(Command::Submit {
        job,
        key: spec.key,
        options: spec.options,
    });
    Admission::Fresh { job }
}

/// The JSON body answering a non-streaming generate call.
pub fn admission_body(admission: &Admission, state: JobState) -> String {
    let mut entries = vec![
        ("job_id", Value::UInt(admission.job())),
        ("state", Value::Str(state.label().to_string())),
        (
            "deduplicated",
            Value::Bool(!matches!(admission, Admission::Fresh { .. })),
        ),
    ];
    match admission {
        Admission::CacheHit { tokens, .. } => {
            entries.push((
                "tokens",
                Value::Seq(tokens.iter().map(|&t| Value::UInt(u64::from(t))).collect()),
            ));
        }
        Admission::Coalesced { primary, .. } => {
            entries.push(("coalesced_into", Value::UInt(*primary)));
        }
        Admission::Fresh { .. } => {}
    }
    json_obj(entries)
}

/// The JSON body answering `GET /v1/jobs/{id}`; `None` for unknown ids.
pub fn job_body(node: &NodeShared, job: u64) -> Option<String> {
    node.pump.jobs.with_job(job, |r| {
        let mut entries = vec![
            ("job_id", Value::UInt(r.id)),
            ("state", Value::Str(r.state.label().to_string())),
            ("prompt_len", Value::UInt(r.prompt_len as u64)),
            (
                "tokens",
                Value::Seq(
                    r.tokens
                        .iter()
                        .map(|&t| Value::UInt(u64::from(t)))
                        .collect(),
                ),
            ),
            ("deduplicated", Value::Bool(r.deduplicated)),
        ];
        if let Some(primary) = r.coalesced_into {
            entries.push(("coalesced_into", Value::UInt(primary)));
        }
        if let Some(error) = &r.error {
            entries.push(("error", Value::Str(error.wire.code.to_string())));
            entries.push(("message", Value::Str(error.message.clone())));
        }
        json_obj(entries)
    })
}

/// The JSON body answering `GET /v1/stats`.
pub fn stats_body(node: &NodeShared) -> String {
    let counters = node.pump.jobs.counters();
    let snapshot = *node
        .pump
        .snapshot
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (cache_stats, cache_len, inflight, dedup_enabled) = {
        let dedup = node.pump.dedup();
        (
            dedup.cache.stats(),
            dedup.cache.len(),
            dedup.inflight_groups(),
            dedup.enabled,
        )
    };
    json_obj(vec![
        ("jobs", counters.to_value()),
        ("live_jobs", Value::UInt(node.pump.jobs.live() as u64)),
        ("engine", snapshot.to_value()),
        ("dedup_enabled", Value::Bool(dedup_enabled)),
        ("cache", cache_stats.to_value()),
        ("cache_entries", Value::UInt(cache_len as u64)),
        ("inflight_groups", Value::UInt(inflight as u64)),
    ])
}

/// Cancels `job`: answers its current state and, for live jobs, enqueues a
/// pump cancellation. `None` for unknown ids.
pub fn cancel_job(node: &NodeShared, job: u64) -> Option<(u16, String)> {
    let state = node.pump.jobs.with_job(job, |r| r.state)?;
    if !state.is_terminal() {
        let _ = node.cmd.send(Command::Cancel { job });
    }
    Some((
        202,
        json_obj(vec![
            ("job_id", Value::UInt(job)),
            ("state", Value::Str(state.label().to_string())),
            ("cancelling", Value::Bool(!state.is_terminal())),
        ]),
    ))
}

/// One NDJSON stream event (also the chunk payload of HTTP streaming).
pub fn stream_event(snapshot: &StreamSnapshot, cursor: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for (i, &token) in snapshot.new_tokens.iter().enumerate() {
        lines.push(json_obj(vec![
            ("event", Value::Str("token".to_string())),
            ("index", Value::UInt((cursor + i) as u64)),
            ("token", Value::UInt(u64::from(token))),
        ]));
    }
    match snapshot.state {
        JobState::Done => lines.push(json_obj(vec![
            ("event", Value::Str("done".to_string())),
            ("deduplicated", Value::Bool(snapshot.deduplicated)),
        ])),
        JobState::Failed => {
            let (code, message) = snapshot
                .error
                .as_ref()
                .map(|e| (e.wire.code, e.message.clone()))
                .unwrap_or(("internal", "unknown failure".to_string()));
            lines.push(json_obj(vec![
                ("event", Value::Str("error".to_string())),
                ("error", Value::Str(code.to_string())),
                ("message", Value::Str(message)),
            ]));
        }
        JobState::Cancelled => lines.push(json_obj(vec![(
            "event",
            Value::Str("cancelled".to_string()),
        )])),
        JobState::Queued | JobState::Running => {}
    }
    lines
}

/// Drives a streaming drain for `job`: waits on the table, emits each new
/// token through `write` (one JSON line per call), and returns once the job
/// is terminal or `write` fails (client gone — the job is then cancelled so
/// its blocks free up).
pub fn drive_stream(
    node: &NodeShared,
    job: u64,
    mut write: impl FnMut(&str) -> std::io::Result<()>,
) {
    let mut cursor = 0;
    loop {
        let Some(snapshot) = node
            .pump
            .jobs
            .wait_stream(job, cursor, Duration::from_millis(100))
        else {
            return;
        };
        let lines = stream_event(&snapshot, cursor);
        cursor += snapshot.new_tokens.len();
        for line in lines {
            if write(&line).is_err() {
                // The client hung up mid-stream: stop paying for its tokens.
                let _ = node.cmd.send(Command::Cancel { job });
                return;
            }
        }
        if snapshot.state.is_terminal() {
            return;
        }
    }
}

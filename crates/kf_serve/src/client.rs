//! A blocking reference client for the `kf_serve` wire protocol, used by the
//! loopback integration tests and the harness's network experiment. It speaks
//! both wire formats: one-shot HTTP/1.1 exchanges (with chunked-stream
//! decoding for `stream=true` generates) and the line-delimited-JSON fallback
//! session.

use serde::Value;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Reads `key` from a JSON map as a `u64`, if present.
pub fn u64_field(value: &Value, key: &str) -> Option<u64> {
    match value.field(key).ok()? {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

/// Reads `key` from a JSON map as a string slice, if present.
pub fn str_field<'v>(value: &'v Value, key: &str) -> Option<&'v str> {
    match value.field(key).ok()? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Reads `key` from a JSON map as a token vector, if present.
pub fn tokens_field(value: &Value, key: &str) -> Option<Vec<u32>> {
    let Value::Seq(items) = value.field(key).ok()? else {
        return None;
    };
    items
        .iter()
        .map(|v| match v {
            Value::UInt(n) if *n <= u64::from(u32::MAX) => Some(*n as u32),
            _ => None,
        })
        .collect()
}

/// The outcome of one streamed generate call.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// The job id announced by the `accepted` preamble event.
    pub job_id: Option<u64>,
    /// Every streamed token, in order.
    pub tokens: Vec<u32>,
    /// The terminal event name: `done`, `error`, `cancelled`, or `eof` when
    /// the stream ended without one.
    pub terminal: String,
    /// Whether the result came from the cache or a coalesced twin.
    pub deduplicated: bool,
    /// Error code and message, for `error` terminals.
    pub error: Option<(String, String)>,
    /// Wall-clock time from request write to the first token event.
    pub ttft: Option<Duration>,
}

/// A blocking client bound to one server address; every call opens a fresh
/// connection (the server is `Connection: close`).
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr }
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(stream)
    }

    fn send_request(
        stream: &mut TcpStream,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<()> {
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: kf-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len(),
        )?;
        stream.flush()
    }

    /// Reads a response head, returning the status code and the announced
    /// content length (`None` for chunked bodies).
    fn read_head(reader: &mut impl BufRead) -> io::Result<(u16, Option<usize>, bool)> {
        let status_line = crate::http::read_line(reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "no status line"))?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparsable status line: {status_line:?}"),
                )
            })?;
        let mut content_length = None;
        let mut chunked = false;
        loop {
            let line = crate::http::read_line(reader)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "inside headers"))?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim().to_ascii_lowercase();
                if name == "content-length" {
                    content_length = value.trim().parse::<usize>().ok();
                } else if name == "transfer-encoding" && value.trim() == "chunked" {
                    chunked = true;
                }
            }
        }
        Ok((status, content_length, chunked))
    }

    /// One unary HTTP exchange; returns the status and the parsed JSON body.
    fn exchange(&self, method: &str, path: &str, body: Option<&str>) -> io::Result<(u16, Value)> {
        let mut stream = self.connect()?;
        Self::send_request(&mut stream, method, path, body)?;
        let mut reader = BufReader::new(stream);
        let (status, content_length, _) = Self::read_head(&mut reader)?;
        let raw = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                buf
            }
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        let text = String::from_utf8(raw)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let value = if text.is_empty() {
            Value::Null
        } else {
            serde_json::from_str::<Value>(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
        };
        Ok((status, value))
    }

    /// `POST /v1/generate` without streaming.
    pub fn generate(&self, body: &str) -> io::Result<(u16, Value)> {
        self.exchange("POST", "/v1/generate", Some(body))
    }

    /// `GET /v1/jobs/{id}`.
    pub fn job(&self, id: u64) -> io::Result<(u16, Value)> {
        self.exchange("GET", &format!("/v1/jobs/{id}"), None)
    }

    /// `DELETE /v1/jobs/{id}`.
    pub fn cancel(&self, id: u64) -> io::Result<(u16, Value)> {
        self.exchange("DELETE", &format!("/v1/jobs/{id}"), None)
    }

    /// `GET /v1/stats`.
    pub fn stats(&self) -> io::Result<(u16, Value)> {
        self.exchange("GET", "/v1/stats", None)
    }

    /// `POST /v1/generate` with `"stream": true` in `body`: decodes the
    /// chunked NDJSON event stream and accumulates tokens, timing the first.
    pub fn generate_stream(&self, body: &str) -> io::Result<StreamOutcome> {
        let mut stream = self.connect()?;
        let sent_at = Instant::now();
        Self::send_request(&mut stream, "POST", "/v1/generate", Some(body))?;
        let mut reader = BufReader::new(stream);
        let (status, _, chunked) = Self::read_head(&mut reader)?;
        if !chunked {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a chunked stream, got status {status} without one"),
            ));
        }
        let mut outcome = StreamOutcome {
            job_id: None,
            tokens: Vec::new(),
            terminal: "eof".to_string(),
            deduplicated: false,
            error: None,
            ttft: None,
        };
        let mut pending = String::new();
        loop {
            let size_line = crate::http::read_line(&mut reader)?
                .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "inside chunks"))?;
            let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unparsable chunk size: {size_line:?}"),
                )
            })?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size];
            reader.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            reader.read_exact(&mut crlf)?;
            pending.push_str(
                std::str::from_utf8(&chunk)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
            while let Some(at) = pending.find('\n') {
                let line: String = pending.drain(..=at).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let event = serde_json::from_str::<Value>(line)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                apply_event(&mut outcome, &event, sent_at);
            }
        }
        Ok(outcome)
    }

    /// One line-delimited-JSON fallback session: writes every request line,
    /// half-closes, and returns each response line parsed. Streaming ops
    /// yield several lines, so responses are not one-to-one with requests.
    pub fn ndjson_session(&self, requests: &[String]) -> io::Result<Vec<Value>> {
        let stream = self.connect()?;
        let mut writer = stream.try_clone()?;
        for line in requests {
            writeln!(writer, "{line}")?;
        }
        writer.flush()?;
        writer.shutdown(std::net::Shutdown::Write)?;
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        while let Some(line) = crate::http::read_line(&mut reader)? {
            if line.trim().is_empty() {
                continue;
            }
            responses.push(
                serde_json::from_str::<Value>(line.trim())
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            );
        }
        Ok(responses)
    }
}

fn apply_event(outcome: &mut StreamOutcome, event: &Value, sent_at: Instant) {
    match str_field(event, "event") {
        Some("accepted") => {
            outcome.job_id = u64_field(event, "job_id");
            if let Ok(Value::Bool(d)) = event.field("deduplicated") {
                outcome.deduplicated = *d;
            }
        }
        Some("token") => {
            if outcome.ttft.is_none() {
                outcome.ttft = Some(sent_at.elapsed());
            }
            if let Some(token) = u64_field(event, "token") {
                outcome.tokens.push(token as u32);
            }
        }
        Some("done") => {
            outcome.terminal = "done".to_string();
            if let Ok(Value::Bool(d)) = event.field("deduplicated") {
                outcome.deduplicated = *d;
            }
        }
        Some("error") => {
            outcome.terminal = "error".to_string();
            outcome.error = Some((
                str_field(event, "error").unwrap_or("internal").to_string(),
                str_field(event, "message").unwrap_or("").to_string(),
            ));
        }
        Some("cancelled") => outcome.terminal = "cancelled".to_string(),
        _ => {}
    }
}

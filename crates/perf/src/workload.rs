//! Workload descriptions: prompt/generation lengths, batching and cache policy cost.

use serde::{Deserialize, Serialize};

/// The per-step cost model of a KV-cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CachePolicyCost {
    /// Human-readable policy name.
    pub name: &'static str,
    /// Fraction of the full KV cache retained (1.0 = full attention).
    pub cache_fraction: f64,
    /// Fractional per-step scoring overhead relative to the attention scaled-dot-
    /// product time (Keyformer's Gumbel softmax and top-k selection; ~0 for H2O and
    /// window attention).
    pub scoring_overhead: f64,
}

impl CachePolicyCost {
    /// Full attention: the whole cache, no scoring overhead.
    pub fn full_attention() -> Self {
        CachePolicyCost {
            name: "Full Attention",
            cache_fraction: 1.0,
            scoring_overhead: 0.0,
        }
    }

    /// H2O with the given cache fraction (accumulated-attention scoring is folded
    /// into the attention kernel; negligible extra traffic).
    pub fn h2o(cache_fraction: f64) -> Self {
        CachePolicyCost {
            name: "H2O",
            cache_fraction,
            scoring_overhead: 0.02,
        }
    }

    /// Keyformer with the given cache fraction. The Gumbel-softmax score function
    /// and per-step top-k add a few percent on top of the scaled dot product
    /// (Figure 10's "Gumbel softmax overhead").
    pub fn keyformer(cache_fraction: f64) -> Self {
        CachePolicyCost {
            name: "Keyformer",
            cache_fraction,
            scoring_overhead: 0.08,
        }
    }

    /// Window attention with the given cache fraction.
    pub fn window(cache_fraction: f64) -> Self {
        CachePolicyCost {
            name: "Window Attention",
            cache_fraction,
            scoring_overhead: 0.0,
        }
    }
}

/// A generation workload: how many tokens go in and come out, and how it is batched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Number of generated tokens.
    pub generation_len: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Beam size (the paper uses beam 4 for accuracy runs, beam 1 for throughput).
    pub beam_size: usize,
}

impl Workload {
    /// A `prompt + generation` workload with batch 1, beam 1 (the Table 1 setting).
    pub fn symmetric(len: usize) -> Self {
        Workload {
            prompt_len: len,
            generation_len: len,
            batch_size: 1,
            beam_size: 1,
        }
    }

    /// The Figure 1 setting: 50% context + 50% generation, batch 1, beam 4.
    pub fn figure1(total_seq: usize) -> Self {
        Workload {
            prompt_len: total_seq / 2,
            generation_len: total_seq - total_seq / 2,
            batch_size: 1,
            beam_size: 4,
        }
    }

    /// Total sequence length.
    pub fn total_len(&self) -> usize {
        self.prompt_len + self.generation_len
    }

    /// Replaces the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Replaces the beam size.
    pub fn with_beam_size(mut self, beam_size: usize) -> Self {
        self.beam_size = beam_size;
        self
    }

    /// Number of concurrent sequences (batch × beam).
    pub fn concurrent_sequences(&self) -> usize {
        self.batch_size * self.beam_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_cost_presets() {
        assert_eq!(CachePolicyCost::full_attention().cache_fraction, 1.0);
        assert!(
            CachePolicyCost::keyformer(0.5).scoring_overhead
                > CachePolicyCost::h2o(0.5).scoring_overhead
        );
        assert_eq!(CachePolicyCost::window(0.5).scoring_overhead, 0.0);
        assert_eq!(CachePolicyCost::keyformer(0.5).cache_fraction, 0.5);
    }

    #[test]
    fn workload_builders() {
        let w = Workload::symmetric(1024);
        assert_eq!(w.total_len(), 2048);
        assert_eq!(w.concurrent_sequences(), 1);
        let w2 = w.with_batch_size(2).with_beam_size(4);
        assert_eq!(w2.concurrent_sequences(), 8);
        let f1 = Workload::figure1(8192);
        assert_eq!(f1.prompt_len, 4096);
        assert_eq!(f1.beam_size, 4);
        assert_eq!(f1.total_len(), 8192);
    }
}

//! # keyformer-perf
//!
//! An analytic accelerator performance model standing in for the paper's NVIDIA A100
//! measurements (Figures 1, 9, 10 and Table 1). Generative decoding of large models
//! is memory-bandwidth bound: every generated token must stream the model weights and
//! the live KV cache from HBM. The model here is a straightforward roofline:
//!
//! * **bytes moved** = model weights + KV cache (per decode step) + activations,
//! * **compute time** = FLOPs / peak throughput (matters for the prompt phase),
//! * **step latency** = max(memory time, compute time) + fixed kernel overhead,
//! * **capacity** = weights + KV cache + workspace must fit in HBM, which bounds the
//!   batch size (the paper's "OOM" row in Table 1).
//!
//! Reducing the KV cache to a fraction `f` of the full cache cuts the cache term of
//! every decode step by `1 - f` and frees capacity for larger batches — exactly the
//! two effects the paper measures. Keyformer's Gumbel-softmax scoring adds a small
//! per-step overhead which the model accounts for explicitly (Figure 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod latency;
pub mod model_shape;
pub mod workload;

pub use accelerator::Accelerator;
pub use latency::{InferenceEstimate, PerfModel, PhaseBreakdown};
pub use model_shape::ModelShape;
pub use workload::{CachePolicyCost, Workload};

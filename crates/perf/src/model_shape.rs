//! Full-size model shapes used by the performance model.
//!
//! Unlike the laptop-scale substrate in `keyformer-model`, the perf model reasons
//! about the *real* checkpoint dimensions (MPT-7B, GPT-J-6B, Cerebras-GPT-6.7B), so
//! Figures 1, 9, 10 and Table 1 are computed for the same model sizes the paper used.

use serde::Serialize;

/// The architectural dimensions that determine memory traffic and FLOPs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModelShape {
    /// Human-readable name.
    pub name: &'static str,
    /// Hidden width.
    pub d_model: usize,
    /// Number of decoder layers.
    pub num_layers: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Bytes per parameter / activation element (2 for fp16).
    pub bytes_per_element: usize,
}

impl ModelShape {
    /// MPT-7B: 32 layers, d_model 4096, 32 heads (the paper's main perf model).
    pub fn mpt_7b() -> Self {
        ModelShape {
            name: "MPT-7B",
            d_model: 4096,
            num_layers: 32,
            num_heads: 32,
            d_ff: 16384,
            vocab_size: 50432,
            bytes_per_element: 2,
        }
    }

    /// GPT-J-6B: 28 layers, d_model 4096.
    pub fn gpt_j_6b() -> Self {
        ModelShape {
            name: "GPT-J-6B",
            d_model: 4096,
            num_layers: 28,
            num_heads: 16,
            d_ff: 16384,
            vocab_size: 50400,
            bytes_per_element: 2,
        }
    }

    /// Cerebras-GPT-6.7B: 32 layers, d_model 4096.
    pub fn cerebras_gpt_6_7b() -> Self {
        ModelShape {
            name: "Cerebras-GPT-6.7B",
            d_model: 4096,
            num_layers: 32,
            num_heads: 32,
            d_ff: 16384,
            vocab_size: 50257,
            bytes_per_element: 2,
        }
    }

    /// Per-head width.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.num_heads
    }

    /// Total parameter count (decoder weights + embeddings).
    pub fn parameter_count(&self) -> u64 {
        let per_layer = 4 * self.d_model * self.d_model + 2 * self.d_model * self.d_ff;
        (self.num_layers * per_layer + self.vocab_size * self.d_model) as u64
    }

    /// Model weight footprint in bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.parameter_count() * self.bytes_per_element as u64
    }

    /// KV-cache bytes per token per sequence (keys + values across all layers).
    pub fn kv_bytes_per_token(&self) -> u64 {
        (2 * self.num_layers * self.d_model * self.bytes_per_element) as u64
    }

    /// KV-cache bytes for a batch of sequences of the given live length.
    pub fn kv_cache_bytes(&self, live_tokens: usize, batch_size: usize, beam_size: usize) -> u64 {
        self.kv_bytes_per_token() * live_tokens as u64 * batch_size as u64 * beam_size as u64
    }

    /// FLOPs to process one token through the decoder stack (matrix multiplies only),
    /// given `context` live KV slots for the attention term.
    pub fn flops_per_token(&self, context: usize) -> f64 {
        let proj = 2.0 * (4 * self.d_model * self.d_model) as f64;
        let ffn = 2.0 * (2 * self.d_model * self.d_ff) as f64;
        let attn = 2.0 * (2 * self.d_model * context) as f64;
        (self.num_layers as f64) * (proj + ffn + attn)
            + 2.0 * (self.vocab_size * self.d_model) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpt_7b_is_about_seven_billion_parameters() {
        let m = ModelShape::mpt_7b();
        let params = m.parameter_count();
        assert!(
            (6.5e9..8.0e9).contains(&(params as f64)),
            "MPT-7B params {params}"
        );
        // ~13-14 GB of fp16 weights.
        let gb = m.weight_bytes() as f64 / 1e9;
        assert!((12.0..16.0).contains(&gb), "weight GB {gb}");
    }

    #[test]
    fn kv_cache_grows_linearly_and_exceeds_weights_at_long_context() {
        // Figure 1(b): at 8k context with batch 1 beam 4, the MPT-7B KV cache
        // exceeds the model size.
        let m = ModelShape::mpt_7b();
        let kv_8k = m.kv_cache_bytes(8192 * 2, 1, 4);
        assert!(
            kv_8k > m.weight_bytes(),
            "kv {kv_8k} weights {}",
            m.weight_bytes()
        );
        let kv_512 = m.kv_cache_bytes(512, 1, 4);
        assert!(kv_512 < m.weight_bytes() / 10);
        // Linear growth in tokens and batch.
        assert_eq!(m.kv_cache_bytes(100, 2, 1), 2 * m.kv_cache_bytes(100, 1, 1));
        assert_eq!(m.kv_cache_bytes(200, 1, 1), 2 * m.kv_cache_bytes(100, 1, 1));
    }

    #[test]
    fn per_token_kv_bytes_known_value() {
        let m = ModelShape::mpt_7b();
        // 2 (K+V) * 32 layers * 4096 * 2 bytes = 512 KiB per token.
        assert_eq!(m.kv_bytes_per_token(), 524_288);
    }

    #[test]
    fn flops_increase_with_context() {
        let m = ModelShape::gpt_j_6b();
        assert!(m.flops_per_token(8192) > m.flops_per_token(512));
        assert!(m.flops_per_token(512) > 1e9);
        assert_eq!(m.head_dim(), 256);
    }

    #[test]
    fn shapes_are_distinct() {
        assert_ne!(ModelShape::mpt_7b(), ModelShape::gpt_j_6b());
        assert_ne!(ModelShape::gpt_j_6b(), ModelShape::cerebras_gpt_6_7b());
    }
}

//! Accelerator descriptions (HBM bandwidth/capacity, compute throughput).

use serde::Serialize;

/// An accelerator's headline specifications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Accelerator {
    /// Human-readable name.
    pub name: &'static str,
    /// HBM capacity in bytes.
    pub hbm_capacity_bytes: u64,
    /// Sustained HBM bandwidth in bytes per second.
    pub hbm_bandwidth_bytes_per_s: f64,
    /// Sustained dense compute throughput in FLOP/s (fp16 tensor-core class).
    pub compute_flops_per_s: f64,
    /// Fixed per-decoder-step kernel launch / synchronisation overhead in seconds.
    pub step_overhead_s: f64,
}

impl Accelerator {
    /// An NVIDIA A100 (80 GB)-class accelerator, the paper's evaluation platform.
    /// Bandwidth and compute are derated to sustained (not peak datasheet) values.
    pub fn a100_80gb() -> Self {
        Accelerator {
            name: "A100-80GB",
            hbm_capacity_bytes: 80 * 1024 * 1024 * 1024,
            hbm_bandwidth_bytes_per_s: 1.6e12,
            compute_flops_per_s: 200e12,
            step_overhead_s: 4.0e-4,
        }
    }

    /// A smaller accelerator (A100 40 GB class) used in capacity-sensitivity studies.
    pub fn a100_40gb() -> Self {
        Accelerator {
            name: "A100-40GB",
            hbm_capacity_bytes: 40 * 1024 * 1024 * 1024,
            ..Self::a100_80gb()
        }
    }

    /// Time to stream `bytes` from HBM, in seconds.
    pub fn memory_time(&self, bytes: f64) -> f64 {
        bytes / self.hbm_bandwidth_bytes_per_s
    }

    /// Time to execute `flops` floating-point operations, in seconds.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / self.compute_flops_per_s
    }

    /// Returns `true` if a resident set of `bytes` fits in HBM.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.hbm_capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_capacity_and_rates() {
        let a = Accelerator::a100_80gb();
        assert_eq!(a.hbm_capacity_bytes, 80 * 1024 * 1024 * 1024);
        assert!(a.memory_time(1.6e12) > 0.99 && a.memory_time(1.6e12) < 1.01);
        assert!(a.compute_time(200e12) > 0.99 && a.compute_time(200e12) < 1.01);
        assert!(a.fits(79 * 1024 * 1024 * 1024));
        assert!(!a.fits(81 * 1024 * 1024 * 1024));
    }

    #[test]
    fn smaller_card_has_less_capacity_same_bandwidth() {
        let big = Accelerator::a100_80gb();
        let small = Accelerator::a100_40gb();
        assert!(small.hbm_capacity_bytes < big.hbm_capacity_bytes);
        assert_eq!(
            small.hbm_bandwidth_bytes_per_s,
            big.hbm_bandwidth_bytes_per_s
        );
    }

    #[test]
    fn memory_time_scales_linearly() {
        let a = Accelerator::a100_80gb();
        let t1 = a.memory_time(1e9);
        let t2 = a.memory_time(2e9);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
